"""Bisimulation: incremental view caching has no effect on ``L(LOCK)``.

The LOCK machine keeps, per transaction, a cached view state-set that is
advanced by one ``spec.step`` per appended operation instead of replaying
the whole view on every response check (``view_caching=True``, the
default).  The caches are pure bookkeeping: these tests certify that by
driving a cached machine and a naive replay machine
(``view_caching=False``) of the *same* class through identical randomized
workloads — skewed commit timestamps, aborts, and horizon compaction
included — and asserting, after every event, identical results, refusals,
observable state, view state-sets, and (at the end) identical accepted
histories.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adts import ACCOUNT_CONFLICT, AccountSpec, get_adt
from repro.core import (
    CompactingLockMachine,
    Invocation,
    LockConflict,
    LockMachine,
    WouldBlock,
)
from repro.core.timestamps import SkewedTimestampGenerator

TRANSACTIONS = ["P", "Q", "R", "S"]

INVOCATIONS = {
    "FIFOQueue": [
        Invocation("Enq", (1,)),
        Invocation("Enq", (2,)),
        Invocation("Deq"),
    ],
    "Account": [
        Invocation("Credit", (2,)),
        Invocation("Post", (50,)),
        Invocation("Debit", (2,)),
        Invocation("Debit", (3,)),
    ],
    "Set": [
        Invocation("Insert", (1,)),
        Invocation("Remove", (1,)),
        Invocation("Member", (1,)),
    ],
}

command = st.tuples(
    st.sampled_from(["invoke", "commit", "abort"]),
    st.sampled_from(TRANSACTIONS),
    st.integers(min_value=0, max_value=3),
)


def assert_bisimilar(cached, naive):
    """Every observable of the two machines agrees right now."""
    assert cached.committed_transactions == naive.committed_transactions
    assert cached.aborted_transactions == naive.aborted_transactions
    assert cached.active_transactions() == naive.active_transactions()
    for transaction in cached.active_transactions():
        assert cached.intentions(transaction) == naive.intentions(transaction)
        assert cached.view_states(transaction) == naive.view_states(transaction)
    if isinstance(cached, CompactingLockMachine):
        assert cached.clock == naive.clock
        assert cached.horizon() == naive.horizon()
        assert cached.version_states == naive.version_states
        assert cached.version_timestamp == naive.version_timestamp
        assert cached.retained_intentions() == naive.retained_intentions()
        assert cached.forgotten_transactions == naive.forgotten_transactions


def drive_both(cached, naive, adt_name, commands, seed):
    """Apply one command stream to both machines in lockstep.

    Commit timestamps come from a single :class:`SkewedTimestampGenerator`
    so both machines see the *same* deliberately out-of-commit-order
    stamps; the generator's Section 3.3 bound is fed from the largest
    timestamp issued so far, mirroring what a manager's logical clock
    would have observed.
    """
    generator = SkewedTimestampGenerator(seed=seed, gap=7)
    invocations = INVOCATIONS[adt_name]
    completed = set()
    issued = 0
    for kind, transaction, index in commands:
        if transaction in completed:
            continue
        if kind == "invoke":
            invocation = invocations[index % len(invocations)]
            outcomes = []
            for machine in (cached, naive):
                try:
                    outcomes.append(("ok", machine.execute(transaction, invocation)))
                except (LockConflict, WouldBlock) as refusal:
                    outcomes.append(("refused", type(refusal).__name__))
            assert outcomes[0] == outcomes[1]
            if outcomes[0][0] == "ok" and issued:
                generator.observe(transaction, issued)
        elif kind == "commit":
            timestamp = generator.commit_timestamp(transaction)
            generator.forget(transaction)
            issued = max(issued, timestamp)
            cached.commit(transaction, timestamp)
            naive.commit(transaction, timestamp)
            completed.add(transaction)
        else:
            cached.abort(transaction)
            naive.abort(transaction)
            generator.forget(transaction)
            completed.add(transaction)
        assert_bisimilar(cached, naive)
    assert cached.history() == naive.history()


@pytest.mark.parametrize("machine_class", [LockMachine, CompactingLockMachine])
@settings(max_examples=40, deadline=None)
@given(
    adt_name=st.sampled_from(sorted(INVOCATIONS)),
    commands=st.lists(command, max_size=16),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_cached_machine_bisimulates_naive_replay(
    machine_class, adt_name, commands, seed
):
    adt = get_adt(adt_name)
    cached = machine_class(adt.spec, adt.conflict)
    naive = machine_class(adt.spec, adt.conflict, view_caching=False)
    drive_both(cached, naive, adt_name, commands, seed)


class CountingAccountSpec(AccountSpec):
    """Account spec that counts ``step`` calls (``run_from`` included)."""

    def __init__(self):
        super().__init__(initial=0)
        self.steps = 0

    def step(self, states, operation):
        self.steps += 1
        return super().step(states, operation)


def test_cached_machine_does_linear_work_per_operation():
    """The point of the cache: one long transaction costs O(n) spec steps
    cached, O(n^2) under naive replay — same answers either way."""
    n = 60
    cached_spec, naive_spec = CountingAccountSpec(), CountingAccountSpec()
    cached = LockMachine(cached_spec, ACCOUNT_CONFLICT)
    naive = LockMachine(naive_spec, ACCOUNT_CONFLICT, view_caching=False)
    for machine in (cached, naive):
        for _ in range(n):
            assert machine.execute("T", Invocation("Credit", (1,))) == "Ok"
    assert cached.view_states("T") == naive.view_states("T")
    assert cached_spec.steps <= 4 * n
    assert naive_spec.steps >= n * (n - 1) // 2


class TestForgetUnderLiveCachedView:
    """Cache invalidation across ``forget()``: folding the committed
    prefix into the version while a transaction's cached view is live
    must not change anything that transaction (or anyone else) sees.

    Folding moves operations from the retained committed prefix into the
    version without changing the state-set the two jointly denote, so the
    machine deliberately does *not* drop view caches on a fold — this is
    the test that earns that choice.
    """

    def build(self, view_caching):
        return CompactingLockMachine(
            AccountSpec(initial=0), ACCOUNT_CONFLICT, view_caching=view_caching
        )

    def test_fold_mid_transaction_preserves_views(self):
        cached, naive = self.build(True), self.build(False)
        for machine in (cached, naive):
            # T goes first: bound -inf pins the horizon down.
            assert machine.execute("T", Invocation("Credit", (1,))) == "Ok"
            # U commits at 5, but cannot fold while T's bound is -inf.
            assert machine.execute("U", Invocation("Credit", (2,))) == "Ok"
            machine.commit("U", 5)
            assert machine.forgotten_transactions == ()
            # T's next response raises its bound to the clock (5), and the
            # cached path extends T's live view state-set in place.
            assert machine.execute("T", Invocation("Credit", (3,))) == "Ok"
            # V commits at 6: horizon = min(bound(T)=5, max committed=6)
            # = 5, so U folds *under T's live cached view*.
            assert machine.execute("V", Invocation("Credit", (4,))) == "Ok"
            machine.commit("V", 6)
            assert machine.forgotten_transactions == ("U",)
            assert machine.is_active("T")
        assert_bisimilar(cached, naive)
        # T keeps executing against the rebased view and commits cleanly.
        for machine in (cached, naive):
            assert machine.execute("T", Invocation("Debit", (2,))) == "Ok"
            machine.commit("T", 7)
        assert_bisimilar(cached, naive)
        assert cached.history() == naive.history()
        # Everyone is done: the whole run folds to balance 1+2+3+4-2 = 8.
        from fractions import Fraction

        assert cached.forgotten_transactions == naive.forgotten_transactions
        assert cached.version_states == frozenset({Fraction(8)})
