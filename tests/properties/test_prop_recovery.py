"""Property tests: checkpoint + WAL replay always reconstructs exactly
the committed prefix of a random workload — crashing teaches the log
nothing and loses nothing durable."""

import random

from hypothesis import given, settings, strategies as st

from repro.adts import make_account_adt, make_queue_adt, make_set_adt
from repro.core import LockConflict, WouldBlock
from repro.recovery import (
    MemoryCheckpointStore,
    MemoryWAL,
    committed_state_sets,
    recover_manager,
    verify_recovery,
)
from repro.runtime import TransactionManager

OPS = [
    ("Q", "Enq", lambda rng: (rng.randint(1, 4),)),
    ("Q", "Deq", lambda rng: ()),
    ("A", "Credit", lambda rng: (rng.randint(1, 5),)),
    ("A", "Debit", lambda rng: (rng.randint(1, 5),)),
    ("Z", "Insert", lambda rng: (rng.randint(1, 3),)),
    ("Z", "Member", lambda rng: (rng.randint(1, 3),)),
]


def run_random_workload(seed, steps, compacting=True, checkpoint_at=None):
    """Drive a random logged workload; returns (manager, store)."""
    rng = random.Random(f"recovery-prop/{seed}")
    manager = TransactionManager(wal=MemoryWAL(), compacting=compacting)
    manager.create_object("Q", make_queue_adt())
    manager.create_object("A", make_account_adt(initial=30))
    manager.create_object("Z", make_set_adt())
    store = MemoryCheckpointStore()
    active = []
    counter = 0
    for step in range(steps):
        if checkpoint_at is not None and step == checkpoint_at and compacting:
            manager.checkpoint(store)
        roll = rng.random()
        if roll < 0.15 and active:
            manager.abort(active.pop(rng.randrange(len(active))))
        elif roll < 0.40 and active:
            manager.commit(active.pop(rng.randrange(len(active))))
        else:
            if len(active) < 3:
                counter += 1
                active.append(manager.begin(f"T{counter}"))
            txn = active[rng.randrange(len(active))]
            obj, operation, make_args = OPS[rng.randrange(len(OPS))]
            try:
                manager.invoke(txn, obj, operation, *make_args(rng))
            except (WouldBlock, LockConflict):
                pass
    # The remaining `active` transactions simply never decided — exactly
    # the state a crash interrupts.  Recovery must presume them aborted.
    return manager, store


def machines_of(manager):
    return {name: m.machine for name, m in manager.objects.items()}


class TestRecoveryEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000), st.integers(10, 60))
    def test_compacting_recovery_matches_committed_prefix(self, seed, steps):
        manager, _ = run_random_workload(seed, steps)
        expected = committed_state_sets(machines_of(manager))
        recovered, report = recover_manager(manager.wal)
        verify_recovery(expected, machines_of(recovered))
        assert set(report.recovered_objects) == {"Q", "A", "Z"}

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000), st.integers(10, 60))
    def test_plain_machine_recovery_matches(self, seed, steps):
        manager, _ = run_random_workload(seed, steps, compacting=False)
        expected = committed_state_sets(machines_of(manager))
        recovered, _ = recover_manager(manager.wal)
        assert not recovered._compacting
        verify_recovery(expected, machines_of(recovered))

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000), st.integers(20, 60))
    def test_checkpoint_plus_truncated_log_matches(self, seed, steps):
        manager, store = run_random_workload(
            seed, steps, checkpoint_at=steps // 2
        )
        expected = committed_state_sets(machines_of(manager))
        recovered, report = recover_manager(manager.wal, store=store)
        verify_recovery(expected, machines_of(recovered))
        if store.load() is not None:
            assert report.from_checkpoint

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_recovered_manager_continues_equivalently(self, seed):
        manager, _ = run_random_workload(seed, steps=30)
        recovered, _ = recover_manager(manager.wal)
        txn = recovered.begin()
        recovered.invoke(txn, "A", "Credit", 2)
        recovered.commit(txn)
        twice, _ = recover_manager(recovered.wal)
        verify_recovery(
            committed_state_sets(machines_of(recovered)), machines_of(twice)
        )
