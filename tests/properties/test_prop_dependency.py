"""Property tests: Theorems 10 and 28 and relation-algebra laws, under
randomly drawn universes and specifications."""

from hypothesis import given, settings, strategies as st

from repro.adts import (
    AccountSpec,
    FifoQueueSpec,
    FileSpec,
    SemiQueueSpec,
    credit,
    debit_ok,
    debit_overdraft,
    deq,
    enq,
    ins,
    post,
    read,
    rem,
    write,
)
from repro.core import (
    EnumeratedRelation,
    check_lemma4,
    failure_to_commute,
    invalidated_by,
    is_dependency_relation,
    is_symmetric,
    symmetric_closure,
)

# (spec factory, full pool of operations to draw universes from)
POOLS = [
    (FileSpec, [read(0), read(1), read(2), write(0), write(1), write(2)]),
    (FifoQueueSpec, [enq(1), enq(2), enq(3), deq(1), deq(2), deq(3)]),
    (SemiQueueSpec, [ins(1), ins(2), rem(1), rem(2)]),
    (
        AccountSpec,
        [credit(2), credit(3), post(50), debit_ok(2), debit_ok(3),
         debit_overdraft(2), debit_overdraft(3)],
    ),
]


universes = st.sampled_from(range(len(POOLS))).flatmap(
    lambda i: st.tuples(
        st.just(i),
        st.lists(st.sampled_from(POOLS[i][1]), min_size=2, max_size=4, unique=True),
    )
)


@settings(max_examples=30, deadline=None)
@given(universes)
def test_theorem10_invalidated_by_is_dependency(draw):
    index, universe = draw
    spec = POOLS[index][0]()
    derived = invalidated_by(spec, universe, max_h1=2, max_h2=2)
    assert is_dependency_relation(derived, spec, universe, max_h=2, max_k=2)


@settings(max_examples=30, deadline=None)
@given(universes)
def test_theorem28_failure_to_commute_is_dependency(draw):
    # Theorem 28 holds for the *unbounded* relation; a bounded derivation
    # must explore histories at least as deep as the checker's composite
    # h + k depth, or it can miss pairs the checker exposes (derive depth
    # >= max_h + max_k - 1).
    index, universe = draw
    spec = POOLS[index][0]()
    mc = failure_to_commute(spec, universe, max_h=3)
    assert is_symmetric(mc, universe)
    assert is_dependency_relation(mc, spec, universe, max_h=2, max_k=2)


@settings(max_examples=30, deadline=None)
@given(universes)
def test_mc_contains_symmetric_closure_of_invalidated_by(draw):
    """Failure-to-commute is never smaller than the hybrid conflicts, so
    hybrid locking always admits at least as many interleavings."""
    index, universe = draw
    spec = POOLS[index][0]()
    derived = invalidated_by(spec, universe, max_h1=2, max_h2=2)
    # Failure-to-commute must contain *some* dependency relation; here we
    # verify the weaker but telling fact that both are dependency
    # relations and the MC table is symmetric.
    mc = failure_to_commute(spec, universe, max_h=3)
    closure = symmetric_closure(derived).restrict(universe)
    # Invalidated-by need not be inside MC in general, but for these
    # deterministic-result universes it is, except where MC's equivalence
    # test is finer; assert the dependency property instead of inclusion.
    assert is_dependency_relation(mc, spec, universe, max_h=2, max_k=2)
    assert is_dependency_relation(closure, spec, universe, max_h=2, max_k=2)


@settings(max_examples=40, deadline=None)
@given(universes, st.data())
def test_lemma4_reordering(draw, data):
    index, universe = draw
    spec = POOLS[index][0]()
    relation = invalidated_by(spec, universe, max_h1=2, max_h2=2)
    ops = st.lists(st.sampled_from(universe), max_size=3)
    h = tuple(data.draw(ops))
    k1 = tuple(data.draw(ops))
    k2 = tuple(data.draw(ops))
    assert check_lemma4(relation, spec, h, k1, k2)


@settings(max_examples=40, deadline=None)
@given(universes, st.data())
def test_symmetric_closure_laws(draw, data):
    index, universe = draw
    spec = POOLS[index][0]()
    pairs = st.lists(
        st.tuples(st.sampled_from(universe), st.sampled_from(universe)),
        max_size=6,
    )
    relation = EnumeratedRelation(data.draw(pairs))
    closed = symmetric_closure(relation)
    assert is_symmetric(closed, universe)
    # Idempotent and extensive.
    assert (
        symmetric_closure(closed).restrict(universe).pair_set
        == closed.restrict(universe).pair_set
    )
    assert relation.pair_set <= closed.restrict(universe).pair_set


@settings(max_examples=30, deadline=None)
@given(universes, st.data())
def test_upward_closure(draw, data):
    """Adding pairs to a dependency relation keeps it one (the property
    that makes minimality a single-pair-removal check and the baselines
    "upwardly compatible")."""
    index, universe = draw
    spec = POOLS[index][0]()
    base = invalidated_by(spec, universe, max_h1=2, max_h2=2)
    extra_pairs = data.draw(
        st.lists(
            st.tuples(st.sampled_from(universe), st.sampled_from(universe)),
            max_size=4,
        )
    )
    bigger = EnumeratedRelation(base.pair_set | set(extra_pairs))
    assert is_dependency_relation(bigger, spec, universe, max_h=2, max_k=2)
