"""Property tests: random runtime executions are always hybrid atomic,
under every protocol, both timestamp generators, and failure injection."""

import random

from hypothesis import given, settings, strategies as st

from repro.adts import (
    make_account_adt,
    make_queue_adt,
    make_semiqueue_adt,
    make_set_adt,
)
from repro.core import (
    LockConflict,
    SkewedTimestampGenerator,
    WouldBlock,
    is_hybrid_atomic,
    timestamps_respect_precedes,
)
from repro.protocols import ALL_PROTOCOLS
from repro.runtime import TransactionManager

OPS = [
    ("Q", "Enq", lambda rng: (rng.randint(1, 4),)),
    ("Q", "Deq", lambda rng: ()),
    ("S", "Ins", lambda rng: (rng.randint(1, 4),)),
    ("S", "Rem", lambda rng: ()),
    ("A", "Credit", lambda rng: (rng.randint(1, 5),)),
    ("A", "Debit", lambda rng: (rng.randint(1, 5),)),
    ("A", "Post", lambda rng: (50,)),
    ("Z", "Insert", lambda rng: (rng.randint(1, 3),)),
    ("Z", "Member", lambda rng: (rng.randint(1, 3),)),
]


def run_random_workload(protocol, skewed, seed, steps=70):
    rng = random.Random(seed)
    generator = SkewedTimestampGenerator(seed=seed) if skewed else None
    manager = TransactionManager(record_history=True, generator=generator)
    manager.create_object("Q", make_queue_adt(), protocol=protocol)
    manager.create_object("S", make_semiqueue_adt(), protocol=protocol)
    manager.create_object("A", make_account_adt(), protocol=protocol)
    manager.create_object("Z", make_set_adt(), protocol=protocol)
    active = []
    counter = 0
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.15 and active:
            txn = active.pop(rng.randrange(len(active)))
            manager.abort(txn)  # failure injection
        elif roll < 0.35 and active:
            txn = active.pop(rng.randrange(len(active)))
            manager.commit(txn)
        else:
            if len(active) < 4:
                counter += 1
                active.append(manager.begin(f"T{counter}"))
            txn = active[rng.randrange(len(active))]
            obj, operation, args = OPS[rng.randrange(len(OPS))]
            try:
                manager.invoke(txn, obj, operation, *args(rng))
            except (LockConflict, WouldBlock):
                pass
    for txn in active:
        if rng.random() < 0.5:
            manager.commit(txn)
        else:
            manager.abort(txn)
    return manager


@settings(max_examples=12, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(ALL_PROTOCOLS),
)
def test_random_runs_hybrid_atomic_monotone(seed, protocol):
    manager = run_random_workload(protocol, skewed=False, seed=seed)
    h = manager.history()
    assert timestamps_respect_precedes(h)
    assert is_hybrid_atomic(h, manager.specs())


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_random_runs_hybrid_atomic_skewed(seed):
    from repro.protocols import HYBRID

    manager = run_random_workload(HYBRID, skewed=True, seed=seed)
    h = manager.history()
    assert timestamps_respect_precedes(h)
    assert is_hybrid_atomic(h, manager.specs())


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_optimistic_random_runs_hybrid_atomic(seed):
    """Random executions on the optimistic engine (no locks, commit-time
    certification) also verify hybrid atomic."""
    from repro.runtime import OptimisticTransactionManager, ValidationFailed

    rng = random.Random(seed)
    manager = OptimisticTransactionManager(record_history=True)
    manager.create_object("Q", make_queue_adt())
    manager.create_object("A", make_account_adt())
    active = []
    counter = 0
    for _ in range(60):
        roll = rng.random()
        if roll < 0.3 and active:
            txn = active.pop(rng.randrange(len(active)))
            try:
                manager.commit(txn)
            except ValidationFailed:
                pass  # aborted internally
        else:
            if len(active) < 4:
                counter += 1
                active.append(manager.begin(f"T{counter}"))
            txn = active[rng.randrange(len(active))]
            obj, operation, args = OPS[rng.randrange(len(OPS))]
            if obj in ("S", "Z"):
                continue
            try:
                manager.invoke(txn, obj, operation, *args(rng))
            except WouldBlock:
                pass
    for txn in active:
        try:
            manager.commit(txn)
        except ValidationFailed:
            pass
    h = manager.history()
    assert timestamps_respect_precedes(h)
    assert is_hybrid_atomic(h, manager.specs())


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_compacting_and_plain_agree(seed):
    """The same client decisions produce the same committed snapshots on
    compacting and non-compacting managers."""
    from repro.protocols import HYBRID

    snapshots = []
    for compacting in (True, False):
        rng = random.Random(seed)
        manager = TransactionManager(compacting=compacting)
        manager.create_object("A", make_account_adt())
        for i in range(10):
            txn = manager.begin()
            try:
                manager.invoke(
                    txn, "A", rng.choice(["Credit", "Debit"]), rng.randint(1, 5)
                )
                manager.commit(txn)
            except (LockConflict, WouldBlock):
                manager.abort(txn)
        snapshots.append(manager.object("A").snapshot())
    assert snapshots[0] == snapshots[1]
