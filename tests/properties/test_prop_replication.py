"""Property tests: replicated objects under random failures stay correct."""

import random

from hypothesis import given, settings, strategies as st

from repro.adts import make_account_adt, make_queue_adt
from repro.core import (
    LockConflict,
    WouldBlock,
    is_hybrid_atomic,
    timestamps_respect_precedes,
)
from repro.replication import (
    QuorumAssignment,
    QuorumSpec,
    ReplicatedTransactionManager,
    Unavailable,
)
from repro.runtime import TransactionManager


def account_assignment():
    return QuorumAssignment(
        5,
        {
            "Credit": QuorumSpec(0, 2),
            "Post": QuorumSpec(0, 2),
            "Debit": QuorumSpec(4, 2),
        },
    )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_replicated_runs_hybrid_atomic_under_failures(seed):
    rng = random.Random(seed)
    manager = ReplicatedTransactionManager(record_history=True)
    manager.create_object("A", make_account_adt(), account_assignment())
    active = []
    for step in range(40):
        roll = rng.random()
        if roll < 0.12:
            obj = manager.object("A")
            if rng.random() < 0.5 and len(obj.live_replicas()) > 2:
                obj.fail_replicas(1)
            else:
                obj.recover_all()
        elif roll < 0.35 and active:
            txn = active.pop(rng.randrange(len(active)))
            try:
                manager.commit(txn)
            except Unavailable:
                manager.abort(txn)
        else:
            if len(active) < 3:
                active.append(manager.begin())
            txn = active[rng.randrange(len(active))]
            op = rng.choice(["Credit", "Debit", "Post"])
            amount = rng.randint(1, 9) if op != "Post" else 50
            try:
                manager.invoke(txn, "A", op, amount)
            except (LockConflict, WouldBlock, Unavailable):
                pass
    manager.object("A").recover_all()
    for txn in active:
        manager.commit(txn)
    h = manager.history()
    assert timestamps_respect_precedes(h)
    assert is_hybrid_atomic(h, manager.specs())


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_replicated_matches_single_copy(seed):
    """With no failures, the replicated account behaves bit-for-bit like
    the single-copy runtime on the same sequential script."""
    rng = random.Random(seed)
    script = [
        (rng.choice(["Credit", "Debit"]), rng.randint(1, 15))
        for _ in range(20)
    ]
    replicated = ReplicatedTransactionManager()
    replicated.create_object("A", make_account_adt(), account_assignment())
    reference = TransactionManager()
    reference.create_object("A", make_account_adt())
    for op, amount in script:
        a = replicated.run_transaction(lambda ctx: ctx.invoke("A", op, amount))
        b = reference.run_transaction(lambda ctx: ctx.invoke("A", op, amount))
        assert a == b
    assert (
        replicated.object("A").snapshot() == reference.object("A").snapshot()
    )


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=10_000),
)
def test_committed_effects_never_lost(failures, seed):
    """Any committed credit remains visible to a full-quorum debit after
    arbitrary fail/recover churn (stable logs + quorum intersection)."""
    rng = random.Random(seed)
    manager = ReplicatedTransactionManager()
    manager.create_object("A", make_account_adt(), account_assignment())
    obj = manager.object("A")
    committed_total = 0
    for _ in range(10):
        amount = rng.randint(1, 9)
        try:
            manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", amount))
            committed_total += amount
        except Unavailable:
            pass
        if rng.random() < 0.5:
            obj.fail_replicas(min(failures, len(obj.live_replicas()) - 2))
        else:
            obj.recover_all()
    obj.recover_all()
    assert (
        manager.run_transaction(
            lambda ctx: ctx.invoke("A", "Debit", committed_total)
        )
        == "Ok"
    )
    assert obj.snapshot() == 0
