"""Property tests: serial specification invariants."""

from hypothesis import given, settings, strategies as st

from repro.adts import (
    AccountSpec,
    FifoQueueSpec,
    SemiQueueSpec,
    SetSpec,
    credit,
    debit_ok,
    debit_overdraft,
    deq,
    enq,
    ins,
    insert,
    member,
    post,
    rem,
    remove,
)

queue_ops = st.lists(
    st.sampled_from([enq(1), enq(2), enq(3), deq(1), deq(2), deq(3)]),
    max_size=8,
)

semiqueue_ops = st.lists(
    st.sampled_from([ins(1), ins(2), rem(1), rem(2)]), max_size=8
)

account_ops = st.lists(
    st.sampled_from(
        [credit(1), credit(2), post(50), debit_ok(1), debit_ok(2),
         debit_overdraft(1), debit_overdraft(2)]
    ),
    max_size=8,
)

set_ops = st.lists(
    st.sampled_from(
        [insert(1), insert(2), remove(1), remove(2),
         member(1, True), member(1, False), member(2, True), member(2, False)]
    ),
    max_size=8,
)


@given(queue_ops)
def test_queue_legality_prefix_closed(ops):
    spec = FifoQueueSpec()
    if spec.is_legal(tuple(ops)):
        for i in range(len(ops)):
            assert spec.is_legal(tuple(ops[:i]))


@given(queue_ops)
def test_queue_fifo_invariant(ops):
    """In any legal sequence, items dequeue in enqueue order."""
    spec = FifoQueueSpec()
    if not spec.is_legal(tuple(ops)):
        return
    pending = []
    for operation in ops:
        if operation.name == "Enq":
            pending.append(operation.args[0])
        else:
            assert pending and pending[0] == operation.result
            pending.pop(0)


@given(semiqueue_ops)
def test_semiqueue_multiset_invariant(ops):
    """Legal iff every Rem removes a currently present item."""
    spec = SemiQueueSpec()
    contents = []
    legal = True
    for operation in ops:
        if operation.name == "Ins":
            contents.append(operation.args[0])
        else:
            if operation.result in contents:
                contents.remove(operation.result)
            else:
                legal = False
                break
    assert spec.is_legal(tuple(ops)) == legal


@given(account_ops)
def test_account_balance_never_negative(ops):
    spec = AccountSpec()
    states = spec.initial_states()
    for operation in ops:
        states = spec.step(states, operation)
        if not states:
            return
        assert all(balance >= 0 for balance in states)


@given(account_ops)
def test_account_determinism(ops):
    """The account spec is deterministic: at most one reachable state."""
    spec = AccountSpec()
    assert len(spec.run(tuple(ops))) <= 1


@given(set_ops)
def test_set_membership_consistent(ops):
    spec = SetSpec()
    contents = set()
    legal = True
    for operation in ops:
        if operation.name == "Insert":
            contents.add(operation.args[0])
        elif operation.name == "Remove":
            contents.discard(operation.args[0])
        else:
            if (operation.args[0] in contents) != operation.result:
                legal = False
                break
    assert spec.is_legal(tuple(ops)) == legal
