"""Property tests: distributed runs verify under random seeds/topologies."""

from hypothesis import given, settings, strategies as st

from repro.core import is_hybrid_atomic, timestamps_respect_precedes
from repro.distributed import run_distributed_experiment


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
)
def test_distributed_runs_hybrid_atomic(seed, site_count, max_spread):
    run = run_distributed_experiment(
        site_count=site_count,
        max_spread=min(max_spread, site_count),
        clients=3,
        duration=100,
        seed=seed,
        record=True,
    )
    h = run.history()
    assert timestamps_respect_precedes(h)
    assert is_hybrid_atomic(h, run.specs())
    stamps = h.timestamps()
    assert len(set(stamps.values())) == len(stamps)


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_distributed_crashes_never_split_commitment(seed):
    from repro.core.events import AbortEvent, CommitEvent

    run = run_distributed_experiment(
        site_count=3,
        max_spread=3,
        clients=4,
        duration=120,
        seed=seed,
        record=True,
        crash_every=17,
    )
    h = run.history()
    assert is_hybrid_atomic(h, run.specs())
    committed = {e.transaction for e in h if isinstance(e, CommitEvent)}
    aborted = {e.transaction for e in h if isinstance(e, AbortEvent)}
    assert not (committed & aborted)
