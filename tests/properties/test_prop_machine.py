"""Property tests: Theorem 16 — every accepted LOCK history is (online)
hybrid atomic — plus compaction transparency, via random command streams."""

import random

from hypothesis import given, settings, strategies as st

from repro.adts import get_adt
from repro.core import (
    CompactingLockMachine,
    Invocation,
    LockConflict,
    LockMachine,
    ProtocolError,
    WouldBlock,
    is_hybrid_atomic,
    is_online_hybrid_atomic,
)

TRANSACTIONS = ["P", "Q", "R"]

INVOCATIONS = {
    "FIFOQueue": [
        Invocation("Enq", (1,)),
        Invocation("Enq", (2,)),
        Invocation("Deq"),
    ],
    "SemiQueue": [
        Invocation("Ins", (1,)),
        Invocation("Ins", (2,)),
        Invocation("Rem"),
    ],
    "Account": [
        Invocation("Credit", (2,)),
        Invocation("Post", (50,)),
        Invocation("Debit", (2,)),
        Invocation("Debit", (3,)),
    ],
    "Set": [
        Invocation("Insert", (1,)),
        Invocation("Remove", (1,)),
        Invocation("Member", (1,)),
    ],
}

command = st.tuples(
    st.sampled_from(["invoke", "commit", "abort"]),
    st.sampled_from(TRANSACTIONS),
    st.integers(min_value=0, max_value=3),
)


def drive(machine, adt_name, commands):
    """Apply a random command stream, skipping ill-formed steps.

    Well-formedness is tracked by the driver, not read back from the
    machine: a compacting machine *forgets* committed transactions, so it
    cannot police transaction reuse (the paper assumes well-formed inputs).
    """
    stamps = iter(range(1, 1000))
    invocations = INVOCATIONS[adt_name]
    completed = set()
    for kind, transaction, index in commands:
        if transaction in completed:
            continue
        if kind == "invoke":
            invocation = invocations[index % len(invocations)]
            try:
                machine.execute(transaction, invocation)
            except (LockConflict, WouldBlock):
                pass
        elif kind == "commit":
            machine.commit(transaction, next(stamps))
            completed.add(transaction)
        else:
            machine.abort(transaction)
            completed.add(transaction)


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(sorted(INVOCATIONS)), st.lists(command, max_size=14))
def test_theorem16_hybrid_atomicity(adt_name, commands):
    adt = get_adt(adt_name)
    machine = LockMachine(adt.spec, adt.conflict)
    drive(machine, adt_name, commands)
    h = machine.history()
    assert is_hybrid_atomic(h, {"X": adt.spec})


@settings(max_examples=25, deadline=None)
@given(st.sampled_from(sorted(INVOCATIONS)), st.lists(command, max_size=9))
def test_theorem16_online_hybrid_atomicity(adt_name, commands):
    # The stronger (and much more expensive) check on shorter streams.
    adt = get_adt(adt_name)
    machine = LockMachine(adt.spec, adt.conflict)
    drive(machine, adt_name, commands)
    assert is_online_hybrid_atomic(machine.history(), {"X": adt.spec})


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(sorted(INVOCATIONS)), st.lists(command, max_size=14))
def test_compaction_is_transparent(adt_name, commands):
    """Plain and compacting machines accept identical histories."""
    adt = get_adt(adt_name)
    plain = LockMachine(adt.spec, adt.conflict)
    compacting = CompactingLockMachine(adt.spec, adt.conflict)
    drive(plain, adt_name, commands)
    drive(compacting, adt_name, commands)
    assert plain.history().events == compacting.history().events


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(sorted(INVOCATIONS)), st.lists(command, max_size=14))
def test_two_phase_invariant_and_graph_witness(adt_name, commands):
    """Accepted histories keep the conflict graph consistent with the
    timestamp order, and the polynomial graph witness serializes."""
    from repro.analysis import (
        conflict_serialization_order,
        timestamp_order_consistent,
    )
    from repro.core import is_serializable_in_order

    adt = get_adt(adt_name)
    machine = LockMachine(adt.spec, adt.conflict)
    drive(machine, adt_name, commands)
    h = machine.history()
    assert timestamp_order_consistent(h, adt.conflict)
    order = conflict_serialization_order(h, adt.conflict)
    assert order is not None
    assert is_serializable_in_order(h.permanent(), order, {"X": adt.spec})


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(sorted(INVOCATIONS)), st.lists(command, max_size=14))
def test_commutativity_conflicts_also_hybrid_atomic(adt_name, commands):
    """Upward compatibility: the baseline conflict tables run on the same
    machine and stay hybrid atomic (their relations contain a dependency
    relation)."""
    adt = get_adt(adt_name)
    machine = LockMachine(adt.spec, adt.commutativity_conflict)
    drive(machine, adt_name, commands)
    assert is_hybrid_atomic(machine.history(), {"X": adt.spec})
