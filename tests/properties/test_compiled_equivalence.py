"""Compiled bitset relations are observationally equal to their references.

``repro compile`` replaces each verified hand-written relation with a
:class:`~repro.core.conflict.CompiledRelation` (integer ids + row
bitmasks, falling back to the reference off-universe).  These tests
certify the swap two ways:

* exhaustively — over every compiled type's full declared universe, the
  bitset answer equals the reference predicate's answer for all |U|²
  pairs, and off-universe probes defer to the reference verbatim;
* behaviourally — a :class:`~repro.core.LockMachine` running on the
  compiled conflict relation bisimulates one running on the reference
  relation through randomized workloads (results, refusals, intentions,
  and final histories all agree), including invocations outside the
  compiled universe so the fallback path is part of the certified
  surface.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adts import get_adt, registry
from repro.core import (
    CompiledRelation,
    Invocation,
    LockConflict,
    LockMachine,
    Operation,
    WouldBlock,
)
from repro.core.compile import reference_relation

#: Types whose factories return compiled relations (every module with a
#: COMPILED_TABLES hook).  Kept explicit so a silently-uncompiled type is
#: a test failure here, not a skip.
COMPILED_ADTS = sorted(
    name
    for name in registry()
    if isinstance(get_adt(name).conflict, CompiledRelation)
)


def test_every_table_declaring_type_is_compiled():
    # The nine table modules of the paper's catalogue; Product types
    # compose relations structurally and stay predicate-based.
    assert len(COMPILED_ADTS) >= 9


def compiled_relations(adt):
    for attr in ("conflict", "commutativity_conflict"):
        relation = getattr(adt, attr)
        if isinstance(relation, CompiledRelation):
            yield attr, relation


@pytest.mark.parametrize("adt_name", COMPILED_ADTS)
def test_exhaustive_agreement_on_the_compiled_universe(adt_name):
    adt = get_adt(adt_name)
    checked = 0
    for attr, compiled in compiled_relations(adt):
        reference = reference_relation(compiled)
        assert reference is not compiled  # unwrapped to the hand table
        universe = compiled.universe
        assert universe, f"{adt_name}.{attr} compiled an empty universe"
        for q in universe:
            for p in universe:
                assert compiled.related(q, p) == reference.related(q, p), (
                    f"{adt_name}.{attr} disagrees on ({q}, {p})"
                )
                checked += 1
    assert checked  # at least one compiled relation per listed type


@pytest.mark.parametrize("adt_name", COMPILED_ADTS)
def test_off_universe_probes_defer_to_the_reference(adt_name):
    adt = get_adt(adt_name)
    for attr, compiled in compiled_relations(adt):
        reference = reference_relation(compiled)
        universe = compiled.universe
        # An operation the bounded derivation never saw: same name as a
        # universe operation, argument far outside the value domain.
        alien = next(
            (
                Operation(Invocation(op.name, (10**6,)), op.result)
                for op in universe
                if op.args
            ),
            None,
        )
        if alien is None:
            continue
        assert alien not in universe
        for p in list(universe[:3]) + [alien]:
            assert compiled.related(alien, p) == reference.related(alien, p)
            assert compiled.related(p, alien) == reference.related(p, alien)


@pytest.mark.parametrize("adt_name", COMPILED_ADTS)
def test_compiled_relation_keeps_the_reference_name(adt_name):
    # Trace events and table artifacts key on relation names; compiling
    # must not rename the relation out from under them.
    for _attr, compiled in compiled_relations(get_adt(adt_name)):
        assert compiled.name == reference_relation(compiled).name


# --- LockMachine bisimulation: compiled vs reference conflict ---------

TRANSACTIONS = ["P", "Q", "R", "S"]

#: Workloads mix in-universe invocations with off-universe ones (the
#: large arguments) so both the bitset path and the fallback path drive
#: real locking decisions.
INVOCATIONS = {
    "FIFOQueue": [
        Invocation("Enq", (1,)),
        Invocation("Enq", (77,)),
        Invocation("Deq"),
    ],
    "Account": [
        Invocation("Credit", (2,)),
        Invocation("Credit", (900,)),
        Invocation("Post", (50,)),
        Invocation("Debit", (2,)),
    ],
    "Set": [
        Invocation("Insert", (1,)),
        Invocation("Insert", (500,)),
        Invocation("Remove", (1,)),
        Invocation("Member", (500,)),
    ],
}

command = st.tuples(
    st.sampled_from(["invoke", "commit", "abort"]),
    st.sampled_from(TRANSACTIONS),
    st.integers(min_value=0, max_value=3),
)


def assert_bisimilar(compiled, reference):
    assert compiled.committed_transactions == reference.committed_transactions
    assert compiled.aborted_transactions == reference.aborted_transactions
    assert compiled.active_transactions() == reference.active_transactions()
    for transaction in compiled.active_transactions():
        assert compiled.intentions(transaction) == reference.intentions(
            transaction
        )
        assert compiled.view_states(transaction) == reference.view_states(
            transaction
        )


@settings(max_examples=40, deadline=None)
@given(
    adt_name=st.sampled_from(sorted(INVOCATIONS)),
    commands=st.lists(command, max_size=16),
)
def test_compiled_machine_bisimulates_reference_machine(adt_name, commands):
    adt = get_adt(adt_name)
    assert isinstance(adt.conflict, CompiledRelation)
    compiled = LockMachine(adt.spec, adt.conflict)
    reference = LockMachine(adt.spec, reference_relation(adt.conflict))
    invocations = INVOCATIONS[adt_name]
    completed = set()
    clock = 0
    for kind, transaction, index in commands:
        if transaction in completed:
            continue
        if kind == "invoke":
            invocation = invocations[index % len(invocations)]
            outcomes = []
            for machine in (compiled, reference):
                try:
                    outcomes.append(
                        ("ok", machine.execute(transaction, invocation))
                    )
                except (LockConflict, WouldBlock) as refusal:
                    outcomes.append(("refused", type(refusal).__name__))
            assert outcomes[0] == outcomes[1]
        elif kind == "commit":
            clock += 1
            compiled.commit(transaction, clock)
            reference.commit(transaction, clock)
            completed.add(transaction)
        else:
            compiled.abort(transaction)
            reference.abort(transaction)
            completed.add(transaction)
        assert_bisimilar(compiled, reference)
    assert compiled.history() == reference.history()
