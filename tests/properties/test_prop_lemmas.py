"""Direct property tests for the paper's key lemmas.

Lemma 7: if ``g`` is an R-view of ``h`` for ``q`` (R a dependency
relation) and ``g * q`` is legal, then ``h * q`` is legal.

Lemma 23 / Theorem 24: the compacting machine's common prefix — here the
folded version plus its operation count — grows monotonically along any
accepted history.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.adts import (
    FifoQueueSpec,
    FileSpec,
    SemiQueueSpec,
    deq,
    enq,
    get_adt,
    ins,
    read,
    rem,
    write,
)
from repro.core import (
    CompactingLockMachine,
    Invocation,
    LockConflict,
    WouldBlock,
    invalidated_by,
    is_view,
)

POOLS = [
    (FileSpec, [read(0), read(1), write(0), write(1)]),
    (FifoQueueSpec, [enq(1), enq(2), deq(1), deq(2)]),
    (SemiQueueSpec, [ins(1), ins(2), rem(1), rem(2)]),
]


@settings(max_examples=150, deadline=None)
@given(
    st.integers(min_value=0, max_value=len(POOLS) - 1),
    st.data(),
)
def test_lemma7_view_legality_extends(index, data):
    spec_cls, universe = POOLS[index]
    spec = spec_cls()
    relation = invalidated_by(spec, universe, max_h1=2, max_h2=2)

    # Draw a random legal h by a filtered walk.
    h = []
    states = spec.initial_states()
    for _ in range(data.draw(st.integers(min_value=0, max_value=5))):
        choices = [p for p in universe if spec.step(states, p)]
        if not choices:
            break
        p = data.draw(st.sampled_from(choices))
        h.append(p)
        states = spec.step(states, p)
    h = tuple(h)

    q = data.draw(st.sampled_from(universe))
    # Draw a random subsequence g of h.
    mask = data.draw(
        st.lists(st.booleans(), min_size=len(h), max_size=len(h))
    )
    g = tuple(op for op, keep in zip(h, mask) if keep)

    if not is_view(g, h, q, relation):
        return  # premises not met
    if not spec.is_legal(g + (q,)):
        return
    assert spec.is_legal(h + (q,)), (h, g, q)


TRANSACTIONS = ["P", "Q", "R"]


@settings(max_examples=50, deadline=None)
@given(
    st.sampled_from(["FIFOQueue", "Account", "Set"]),
    st.lists(
        st.tuples(
            st.sampled_from(["invoke", "commit", "abort"]),
            st.sampled_from(TRANSACTIONS),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=16,
    ),
)
def test_theorem24_version_monotone(adt_name, commands):
    """The folded-version operation count never decreases (the common
    prefix grows monotonically)."""
    invocations = {
        "FIFOQueue": [Invocation("Enq", (1,)), Invocation("Enq", (2,)), Invocation("Deq")],
        "Account": [
            Invocation("Credit", (2,)),
            Invocation("Post", (50,)),
            Invocation("Debit", (2,)),
        ],
        "Set": [
            Invocation("Insert", (1,)),
            Invocation("Remove", (1,)),
            Invocation("Member", (1,)),
        ],
    }[adt_name]
    adt = get_adt(adt_name)
    machine = CompactingLockMachine(adt.spec, adt.conflict)
    stamps = iter(range(1, 100))
    completed = set()
    last_folded = 0
    for kind, transaction, opindex in commands:
        if transaction in completed:
            continue
        if kind == "invoke":
            try:
                machine.execute(
                    transaction, invocations[opindex % len(invocations)]
                )
            except (LockConflict, WouldBlock):
                pass
        elif kind == "commit":
            machine.commit(transaction, next(stamps))
            completed.add(transaction)
        else:
            machine.abort(transaction)
            completed.add(transaction)
        assert machine.forgotten_operations >= last_folded
        last_folded = machine.forgotten_operations
        # The horizon never exceeds the largest committed timestamp and
        # never retreats below a pinned active bound (spot invariants).
        assert machine.retained_intentions() >= 0
