"""Set extension: derived table, typed Thomas-write-rule behaviour."""

import pytest

from repro.adts import (
    SET_COMMUTATIVITY_CONFLICT,
    SET_CONFLICT,
    SET_DEPENDENCY,
    SetSpec,
    insert,
    member,
    remove,
)
from repro.core import (
    Invocation,
    LockConflict,
    LockMachine,
    failure_to_commute,
    invalidated_by,
    is_dependency_relation,
    is_symmetric,
)


class TestSpec:
    def test_idempotent_updates(self):
        spec = SetSpec()
        assert spec.is_legal((insert(1), insert(1), member(1, True)))
        assert spec.is_legal((remove(1), member(1, False)))

    def test_membership_results_forced(self):
        spec = SetSpec()
        assert not spec.is_legal((insert(1), member(1, False)))
        assert not spec.is_legal((member(1, True),))

    def test_initial_contents(self):
        spec = SetSpec(initial={3})
        assert spec.is_legal((member(3, True),))


class TestDerivedTable:
    def test_matches_predicate(self, set_adt, set_ops):
        derived = invalidated_by(set_adt.spec, set_ops, max_h1=2, max_h2=2)
        assert derived.pair_set == SET_DEPENDENCY.restrict(set_ops).pair_set

    def test_only_observers_depend(self):
        assert SET_DEPENDENCY.related(member(1, True), remove(1))
        assert SET_DEPENDENCY.related(member(1, False), insert(1))
        assert not SET_DEPENDENCY.related(member(1, True), insert(1))
        assert not SET_DEPENDENCY.related(insert(1), remove(1))
        assert not SET_DEPENDENCY.related(remove(1), insert(1))

    def test_keys_isolated(self):
        assert not SET_DEPENDENCY.related(member(1, True), remove(2))

    def test_is_dependency_relation(self, set_adt, set_ops):
        assert is_dependency_relation(
            SET_DEPENDENCY, set_adt.spec, set_ops, max_h=2, max_k=2
        )

    def test_mc_matches_predicate(self, set_adt, set_ops):
        derived = failure_to_commute(set_adt.spec, set_ops, max_h=2)
        assert derived.pair_set == SET_COMMUTATIVITY_CONFLICT.restrict(set_ops).pair_set

    def test_commutativity_adds_insert_remove_conflict(self):
        assert SET_COMMUTATIVITY_CONFLICT.related(insert(1), remove(1))
        assert not SET_CONFLICT.related(insert(1), remove(1))

    def test_symmetric(self, set_ops):
        assert is_symmetric(SET_CONFLICT, set_ops)


class TestProtocolBehaviour:
    def test_concurrent_insert_and_remove_same_item(self, set_adt):
        # Hybrid's typed Thomas write rule: the later timestamp wins.
        machine = LockMachine(set_adt.spec, SET_CONFLICT, obj="S")
        machine.execute("P", Invocation("Insert", (1,)))
        machine.execute("Q", Invocation("Remove", (1,)))
        machine.commit("P", 1)
        machine.commit("Q", 2)  # remove is later: 1 is absent
        assert machine.execute("R", Invocation("Member", (1,))) is False

    def test_opposite_timestamp_order(self, set_adt):
        machine = LockMachine(set_adt.spec, SET_CONFLICT, obj="S")
        machine.execute("P", Invocation("Insert", (1,)))
        machine.execute("Q", Invocation("Remove", (1,)))
        machine.commit("Q", 1)
        machine.commit("P", 2)  # insert is later: 1 is present
        assert machine.execute("R", Invocation("Member", (1,))) is True

    def test_member_conflicts_with_relevant_writer_only(self, set_adt):
        machine = LockMachine(set_adt.spec, SET_CONFLICT, obj="S")
        machine.execute("P", Invocation("Insert", (1,)))
        # Member(2) is untouched by P's lock ...
        assert machine.execute("Q", Invocation("Member", (2,))) is False
        # ... but Member(1) would return False and conflicts with Insert(1).
        with pytest.raises(LockConflict):
            machine.execute("R", Invocation("Member", (1,)))
