"""ADT registry and descriptor tests."""

import pytest

from repro.adts import ADT, get_adt, registry, rw_conflict_relation
from repro.adts import deq, enq, read, write


class TestRegistry:
    def test_all_types_registered(self):
        assert set(registry()) >= {
            "Account",
            "Counter",
            "Directory",
            "File",
            "FIFOQueue",
            "SemiQueue",
            "Set",
        }

    def test_get_adt(self):
        adt = get_adt("File")
        assert isinstance(adt, ADT)
        assert adt.name == "File"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_adt("Blob")

    def test_factories_return_fresh_instances(self):
        assert get_adt("FIFOQueue") is not get_adt("FIFOQueue")


class TestRwConflicts:
    def test_read_read_compatible(self):
        rel = rw_conflict_relation(lambda op: op.name == "Read")
        assert not rel.related(read(0), read(1))

    def test_everything_else_conflicts(self):
        rel = rw_conflict_relation(lambda op: op.name == "Read")
        assert rel.related(read(0), write(1))
        assert rel.related(write(0), write(1))

    def test_adt_rw_conflict(self):
        adt = get_adt("File")
        rel = adt.rw_conflict()
        assert not rel.related(read(0), read(0))
        assert rel.related(write(0), read(0))

    def test_queue_has_no_reads(self):
        adt = get_adt("FIFOQueue")
        rel = adt.rw_conflict()
        assert rel.related(enq(1), enq(2))
        assert rel.related(deq(1), enq(1))
