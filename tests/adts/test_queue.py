"""FIFO Queue: Figures 4-2 and 4-3, incomparability, protocol behaviour."""

import pytest

from repro.adts import (
    QUEUE_COMMUTATIVITY_CONFLICT,
    QUEUE_CONFLICT_FIG42,
    QUEUE_CONFLICT_FIG43,
    QUEUE_DEPENDENCY_FIG42,
    QUEUE_DEPENDENCY_FIG43,
    deq,
    enq,
    make_queue_adt,
)
from repro.analysis import Ordering, compare_relations
from repro.core import (
    invalidated_by,
    failure_to_commute,
    is_dependency_relation,
    is_minimal_dependency_relation,
    is_symmetric,
)
from repro.core.compile import reference_relation


class TestFigure42:
    def test_derived_equals_invalidated_by(self, queue_adt, queue_ops):
        derived = invalidated_by(queue_adt.spec, queue_ops)
        assert derived.pair_set == QUEUE_DEPENDENCY_FIG42.restrict(queue_ops).pair_set

    def test_entries(self):
        assert QUEUE_DEPENDENCY_FIG42.related(deq(1), enq(2))
        assert not QUEUE_DEPENDENCY_FIG42.related(deq(1), enq(1))
        assert QUEUE_DEPENDENCY_FIG42.related(deq(1), deq(1))
        assert not QUEUE_DEPENDENCY_FIG42.related(deq(1), deq(2))
        assert not QUEUE_DEPENDENCY_FIG42.related(enq(1), enq(2))
        assert not QUEUE_DEPENDENCY_FIG42.related(enq(1), deq(1))

    def test_minimal(self, queue_adt, queue_ops):
        enumerated = QUEUE_DEPENDENCY_FIG42.restrict(queue_ops)
        assert is_minimal_dependency_relation(enumerated, queue_adt.spec, queue_ops)


class TestFigure43:
    def test_entries(self):
        assert QUEUE_DEPENDENCY_FIG43.related(enq(1), enq(2))
        assert not QUEUE_DEPENDENCY_FIG43.related(enq(1), enq(1))
        assert QUEUE_DEPENDENCY_FIG43.related(deq(1), deq(1))
        assert not QUEUE_DEPENDENCY_FIG43.related(deq(1), enq(2))
        assert not QUEUE_DEPENDENCY_FIG43.related(enq(1), deq(1))

    def test_is_dependency_relation(self, queue_adt, queue_ops):
        assert is_dependency_relation(QUEUE_DEPENDENCY_FIG43, queue_adt.spec, queue_ops)

    def test_minimal(self, queue_adt, queue_ops):
        enumerated = QUEUE_DEPENDENCY_FIG43.restrict(queue_ops)
        assert is_minimal_dependency_relation(enumerated, queue_adt.spec, queue_ops)

    def test_closure_equals_commutativity_conflicts(self, queue_adt, queue_ops):
        # Section 7.1: for the queue, the Fig 4-3 conflicts coincide with
        # the commutativity-based ones.
        derived = failure_to_commute(queue_adt.spec, queue_ops)
        assert derived.pair_set == QUEUE_CONFLICT_FIG43.restrict(queue_ops).pair_set


class TestIncomparability:
    def test_two_distinct_minimal_relations(self, queue_ops):
        report = compare_relations(
            QUEUE_CONFLICT_FIG42, QUEUE_CONFLICT_FIG43, queue_ops
        )
        assert report.ordering is Ordering.INCOMPARABLE
        # Fig 4-2 allows concurrent enqueues that Fig 4-3 forbids ...
        assert not QUEUE_CONFLICT_FIG42.related(enq(1), enq(2))
        assert QUEUE_CONFLICT_FIG43.related(enq(1), enq(2))
        # ... while Fig 4-3 frees dequeues from enqueue locks.
        assert QUEUE_CONFLICT_FIG42.related(deq(1), enq(2))
        assert not QUEUE_CONFLICT_FIG43.related(deq(1), enq(2))


class TestBundles:
    def test_default_bundle_uses_fig42(self):
        adt = make_queue_adt()
        # The bundle may hand out a compiled bitset view; its reference
        # (out-of-universe fallback) must be the Figure 4-2 table.
        assert reference_relation(adt.conflict) is QUEUE_CONFLICT_FIG42

    def test_fig43_bundle(self):
        adt = make_queue_adt("fig43")
        assert reference_relation(adt.conflict) is QUEUE_CONFLICT_FIG43

    def test_unknown_choice_rejected(self):
        with pytest.raises(ValueError):
            make_queue_adt("fig44")

    def test_alternatives_exposed(self):
        adt = make_queue_adt()
        assert set(adt.alternative_dependencies) == {"fig42", "fig43"}

    def test_conflicts_symmetric(self, queue_ops):
        assert is_symmetric(QUEUE_CONFLICT_FIG42, queue_ops)
        assert is_symmetric(QUEUE_CONFLICT_FIG43, queue_ops)
        assert is_symmetric(QUEUE_COMMUTATIVITY_CONFLICT, queue_ops)
