"""Counter extension: derived table, concurrent increments."""

import pytest

from repro.adts import (
    COUNTER_COMMUTATIVITY_CONFLICT,
    COUNTER_CONFLICT,
    COUNTER_DEPENDENCY,
    CounterSpec,
    dec_floor,
    dec_ok,
    inc,
    read_counter,
)
from repro.core import (
    Invocation,
    LockConflict,
    LockMachine,
    failure_to_commute,
    invalidated_by,
    is_dependency_relation,
    is_symmetric,
)


class TestSpec:
    def test_inc_dec_read(self):
        spec = CounterSpec()
        assert spec.is_legal((inc(2), dec_ok(1), read_counter(1)))
        assert not spec.is_legal((inc(2), dec_ok(3)))

    def test_floor_refusal(self):
        spec = CounterSpec()
        assert spec.is_legal((dec_floor(1),))
        assert spec.is_legal((inc(1), dec_floor(2), read_counter(1)))

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            CounterSpec(initial=-1)


class TestDerivedTable:
    def test_matches_predicate(self, counter_adt, counter_ops):
        derived = invalidated_by(counter_adt.spec, counter_ops, max_h1=2, max_h2=2)
        assert derived.pair_set == COUNTER_DEPENDENCY.restrict(counter_ops).pair_set

    def test_is_dependency_relation(self, counter_adt, counter_ops):
        assert is_dependency_relation(
            COUNTER_DEPENDENCY, counter_adt.spec, counter_ops, max_h=2, max_k=2
        )

    def test_read_value_condition(self):
        # Read(v) depends on Dec(n),Ok only when v >= n.
        assert COUNTER_DEPENDENCY.related(read_counter(2), dec_ok(1))
        assert not COUNTER_DEPENDENCY.related(read_counter(0), dec_ok(1))

    def test_incs_never_depend(self):
        for p in [inc(1), dec_ok(1), dec_floor(1), read_counter(0)]:
            assert not COUNTER_DEPENDENCY.related(inc(2), p)

    def test_mc_matches_predicate(self, counter_adt, counter_ops):
        derived = failure_to_commute(counter_adt.spec, counter_ops, max_h=2)
        expected = COUNTER_COMMUTATIVITY_CONFLICT.restrict(counter_ops)
        assert derived.pair_set == expected.pair_set

    def test_symmetric(self, counter_ops):
        assert is_symmetric(COUNTER_CONFLICT, counter_ops)


class TestProtocolBehaviour:
    def test_concurrent_increments(self, counter_adt):
        machine = LockMachine(counter_adt.spec, COUNTER_CONFLICT, obj="C")
        machine.execute("P", Invocation("Inc", (1,)))
        machine.execute("Q", Invocation("Inc", (2,)))  # no conflict
        machine.commit("Q", 1)
        machine.commit("P", 2)
        assert machine.execute("R", Invocation("Read")) == 3

    def test_read_blocks_on_active_inc(self, counter_adt):
        machine = LockMachine(counter_adt.spec, COUNTER_CONFLICT, obj="C")
        machine.execute("P", Invocation("Inc", (1,)))
        with pytest.raises(LockConflict):
            machine.execute("Q", Invocation("Read"))
