"""BoundedQueue: partial Enq destroys concurrent enqueues; invalidated-by
is not the tightest dependency relation."""

import pytest

from repro.adts import QUEUE_DEPENDENCY_FIG42
from repro.adts.bounded_queue import (
    BOUNDED_QUEUE_COMMUTATIVITY_CONFLICT,
    BOUNDED_QUEUE_CONFLICT,
    BOUNDED_QUEUE_DEPENDENCY,
    BOUNDED_QUEUE_MC_DEPENDENCY,
    BoundedQueueSpec,
    bdeq,
    benq,
    bounded_queue_universe,
    make_bounded_queue_adt,
)
from repro.analysis import Ordering, compare_relations
from repro.core import (
    Invocation,
    LockConflict,
    LockMachine,
    WouldBlock,
    failure_to_commute,
    invalidated_by,
    is_dependency_relation,
    is_minimal_dependency_relation,
    symmetric_closure,
)


UNIVERSE = bounded_queue_universe((1, 2))


class TestSpec:
    def test_capacity_enforced(self):
        spec = BoundedQueueSpec(2)
        assert spec.is_legal((benq(1), benq(2)))
        assert not spec.is_legal((benq(1), benq(2), benq(3)))
        assert spec.is_legal((benq(1), benq(2), bdeq(1), benq(3)))

    def test_fifo_preserved(self):
        spec = BoundedQueueSpec(2)
        assert spec.is_legal((benq(1), benq(2), bdeq(1), bdeq(2)))
        assert not spec.is_legal((benq(1), benq(2), bdeq(2)))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedQueueSpec(0)


class TestDerivedTables:
    def test_invalidated_by_matches_predicate(self):
        spec = BoundedQueueSpec(2)
        derived = invalidated_by(spec, UNIVERSE, max_h1=3, max_h2=2)
        assert derived.pair_set == BOUNDED_QUEUE_DEPENDENCY.restrict(UNIVERSE).pair_set

    def test_enqueues_now_depend_on_enqueues(self):
        assert BOUNDED_QUEUE_DEPENDENCY.related(benq(1), benq(2))
        assert BOUNDED_QUEUE_DEPENDENCY.related(benq(1), benq(1))
        # Unbounded Fig 4-2 has no such pairs.
        assert not QUEUE_DEPENDENCY_FIG42.related(benq(1), benq(2))

    def test_mc_matches_predicate(self):
        spec = BoundedQueueSpec(2)
        derived = failure_to_commute(spec, UNIVERSE, max_h=3)
        expected = BOUNDED_QUEUE_COMMUTATIVITY_CONFLICT.restrict(UNIVERSE)
        assert derived.pair_set == expected.pair_set

    def test_both_relations_satisfy_definition3(self):
        spec = BoundedQueueSpec(2)
        assert is_dependency_relation(BOUNDED_QUEUE_DEPENDENCY, spec, UNIVERSE)
        assert is_dependency_relation(BOUNDED_QUEUE_MC_DEPENDENCY, spec, UNIVERSE)

    def test_invalidated_by_not_tightest(self):
        # The MC-shaped closure is a strict subset of invalidated-by's.
        report = compare_relations(
            BOUNDED_QUEUE_CONFLICT,
            symmetric_closure(BOUNDED_QUEUE_DEPENDENCY),
            UNIVERSE,
        )
        assert report.ordering is Ordering.SUBSET

    def test_mc_relation_minimal(self):
        spec = BoundedQueueSpec(2)
        enumerated = BOUNDED_QUEUE_MC_DEPENDENCY.restrict(UNIVERSE)
        assert is_minimal_dependency_relation(enumerated, spec, UNIVERSE)


class TestProtocolBehaviour:
    def test_enq_blocks_when_full_of_committed_items(self):
        adt = make_bounded_queue_adt(capacity=2)
        machine = LockMachine(adt.spec, adt.conflict)
        machine.execute("Init", Invocation("Enq", (1,)))
        machine.execute("Init", Invocation("Enq", (2,)))
        machine.commit("Init", 1)
        with pytest.raises(WouldBlock):
            machine.execute("P", Invocation("Enq", (3,)))

    def test_concurrent_enqueues_conflict(self):
        adt = make_bounded_queue_adt(capacity=4)
        machine = LockMachine(adt.spec, adt.conflict)
        machine.execute("P", Invocation("Enq", (1,)))
        with pytest.raises(LockConflict):
            machine.execute("Q", Invocation("Enq", (2,)))

    def test_deq_free_of_enq_locks_under_mc_table(self):
        adt = make_bounded_queue_adt(capacity=4)
        machine = LockMachine(adt.spec, adt.conflict)
        machine.execute("Init", Invocation("Enq", (1,)))
        machine.commit("Init", 1)
        machine.execute("P", Invocation("Enq", (2,)))
        assert machine.execute("Q", Invocation("Deq")) == 1
