"""SemiQueue: Figure 4-4 and the value of non-determinism."""

from repro.adts import (
    QUEUE_CONFLICT_FIG42,
    SEMIQUEUE_COMMUTATIVITY_CONFLICT,
    SEMIQUEUE_CONFLICT,
    SEMIQUEUE_DEPENDENCY,
    ins,
    rem,
)
from repro.analysis import concurrency_score
from repro.core import (
    Invocation,
    LockMachine,
    failure_to_commute,
    invalidated_by,
    is_dependency_relation,
    is_minimal_dependency_relation,
    is_symmetric,
)


class TestFigure44:
    def test_derived_equals_paper(self, semiqueue_adt, semiqueue_ops):
        derived = invalidated_by(semiqueue_adt.spec, semiqueue_ops)
        assert derived.pair_set == SEMIQUEUE_DEPENDENCY.restrict(semiqueue_ops).pair_set

    def test_entries(self):
        assert SEMIQUEUE_DEPENDENCY.related(rem(1), rem(1))
        assert not SEMIQUEUE_DEPENDENCY.related(rem(1), rem(2))
        assert not SEMIQUEUE_DEPENDENCY.related(rem(1), ins(1))
        assert not SEMIQUEUE_DEPENDENCY.related(ins(1), ins(2))
        assert not SEMIQUEUE_DEPENDENCY.related(ins(1), rem(1))

    def test_is_dependency_and_minimal(self, semiqueue_adt, semiqueue_ops):
        enumerated = SEMIQUEUE_DEPENDENCY.restrict(semiqueue_ops)
        assert is_dependency_relation(enumerated, semiqueue_adt.spec, semiqueue_ops)
        assert is_minimal_dependency_relation(
            enumerated, semiqueue_adt.spec, semiqueue_ops
        )

    def test_symmetric(self, semiqueue_ops):
        assert is_symmetric(SEMIQUEUE_CONFLICT, semiqueue_ops)


class TestNondeterminismBuysConcurrency:
    def test_semiqueue_beats_fifo_queue(self, semiqueue_ops, queue_ops):
        # The paper: "compare the dependency relations for Queue and
        # SemiQueue".  Fewer conflicting pairs = more concurrency.
        semi = concurrency_score(SEMIQUEUE_CONFLICT, semiqueue_ops)
        fifo = concurrency_score(QUEUE_CONFLICT_FIG42, queue_ops)
        assert semi > fifo

    def test_commutativity_ties_on_semiqueue(self, semiqueue_adt, semiqueue_ops):
        derived = failure_to_commute(semiqueue_adt.spec, semiqueue_ops)
        expected = SEMIQUEUE_CONFLICT.restrict(semiqueue_ops)
        assert derived.pair_set == expected.pair_set


class TestProtocolBehaviour:
    def test_concurrent_inserts_and_removes(self, semiqueue_adt):
        machine = LockMachine(semiqueue_adt.spec, SEMIQUEUE_CONFLICT, obj="S")
        machine.execute("A", Invocation("Ins", (1,)))
        machine.commit("A", 1)
        machine.execute("B", Invocation("Ins", (2,)))   # concurrent insert
        machine.execute("C", Invocation("Rem"))         # removes committed 1
        assert machine.intentions("C") == (rem(1),)

    def test_same_item_removes_conflict(self, semiqueue_adt):
        from repro.core import LockConflict
        import pytest

        machine = LockMachine(semiqueue_adt.spec, SEMIQUEUE_CONFLICT, obj="S")
        machine.execute("A", Invocation("Ins", (1,)))
        machine.commit("A", 1)
        machine.execute("B", Invocation("Rem"))
        # Only item 1 exists; C's Rem would also return 1 -> conflict.
        with pytest.raises(LockConflict):
            machine.execute("C", Invocation("Rem"))

    def test_different_item_removes_concurrent(self, semiqueue_adt):
        machine = LockMachine(semiqueue_adt.spec, SEMIQUEUE_CONFLICT, obj="S")
        machine.execute("A", Invocation("Ins", (1,)))
        machine.execute("A", Invocation("Ins", (2,)))
        machine.commit("A", 1)
        first = machine.execute("B", Invocation("Rem"))
        second = machine.execute("C", Invocation("Rem"))
        assert {first, second} == {1, 2}
