"""Directory extension: derived keyed table, per-key locking behaviour."""

import pytest

from repro.adts import (
    DIRECTORY_COMMUTATIVITY_CONFLICT,
    DIRECTORY_CONFLICT,
    DIRECTORY_DEPENDENCY,
    DirectorySpec,
    bind_duplicate,
    bind_ok,
    lookup_missing,
    lookup_ok,
    rebind_missing,
    rebind_ok,
    unbind_missing,
    unbind_ok,
)
from repro.core import (
    Invocation,
    LockConflict,
    LockMachine,
    failure_to_commute,
    invalidated_by,
    is_dependency_relation,
    is_symmetric,
)


class TestSpec:
    def test_bind_lookup_unbind(self):
        spec = DirectorySpec()
        assert spec.is_legal((bind_ok("a", 1), lookup_ok("a", 1), unbind_ok("a")))
        assert spec.is_legal((lookup_missing("a"),))
        assert not spec.is_legal((bind_ok("a", 1), lookup_missing("a")))

    def test_duplicate_and_missing(self):
        spec = DirectorySpec()
        assert spec.is_legal((bind_ok("a", 1), bind_duplicate("a", 2)))
        assert spec.is_legal((rebind_missing("a", 1), unbind_missing("a")))
        assert not spec.is_legal((bind_duplicate("a", 1),))

    def test_rebind_overwrites(self):
        spec = DirectorySpec()
        assert spec.is_legal((bind_ok("a", 1), rebind_ok("a", 2), lookup_ok("a", 2)))

    def test_initial_bindings(self):
        spec = DirectorySpec(initial={"a": 1})
        assert spec.is_legal((lookup_ok("a", 1),))


class TestDerivedTable:
    def test_matches_predicate(self, directory_adt, directory_ops):
        derived = invalidated_by(
            directory_adt.spec, directory_ops, max_h1=2, max_h2=2
        )
        assert (
            derived.pair_set
            == DIRECTORY_DEPENDENCY.restrict(directory_ops).pair_set
        )

    def test_requires_absent_rows_depend_on_bind(self):
        for q in [bind_ok("a", 1), rebind_missing("a", 1), unbind_missing("a"), lookup_missing("a")]:
            assert DIRECTORY_DEPENDENCY.related(q, bind_ok("a", 2))
            assert not DIRECTORY_DEPENDENCY.related(q, rebind_ok("a", 2))
            assert not DIRECTORY_DEPENDENCY.related(q, unbind_ok("a"))

    def test_requires_bound_rows_depend_on_unbind(self):
        for q in [bind_duplicate("a", 1), rebind_ok("a", 1), unbind_ok("a")]:
            assert DIRECTORY_DEPENDENCY.related(q, unbind_ok("a"))
            assert not DIRECTORY_DEPENDENCY.related(q, bind_ok("a", 2))

    def test_lookup_found_depends_on_value_changes(self):
        assert DIRECTORY_DEPENDENCY.related(lookup_ok("a", 1), unbind_ok("a"))
        assert DIRECTORY_DEPENDENCY.related(lookup_ok("a", 1), rebind_ok("a", 2))
        assert not DIRECTORY_DEPENDENCY.related(lookup_ok("a", 1), rebind_ok("a", 1))
        assert not DIRECTORY_DEPENDENCY.related(lookup_ok("a", 1), bind_ok("a", 2))

    def test_keys_isolated(self):
        assert not DIRECTORY_DEPENDENCY.related(bind_ok("a", 1), bind_ok("b", 1))

    def test_is_dependency_relation(self, directory_adt, directory_ops):
        assert is_dependency_relation(
            DIRECTORY_DEPENDENCY,
            directory_adt.spec,
            directory_ops,
            max_h=2,
            max_k=2,
        )

    def test_mc_matches_predicate(self, directory_adt, directory_ops):
        derived = failure_to_commute(directory_adt.spec, directory_ops, max_h=2)
        expected = DIRECTORY_COMMUTATIVITY_CONFLICT.restrict(directory_ops)
        assert derived.pair_set == expected.pair_set

    def test_commutativity_adds_rebind_pairs(self):
        assert DIRECTORY_COMMUTATIVITY_CONFLICT.related(
            rebind_ok("a", 1), rebind_ok("a", 2)
        )
        assert not DIRECTORY_CONFLICT.related(rebind_ok("a", 1), rebind_ok("a", 2))

    def test_symmetric(self, directory_ops):
        assert is_symmetric(DIRECTORY_CONFLICT, directory_ops)


class TestProtocolBehaviour:
    def test_per_key_concurrency(self, directory_adt):
        machine = LockMachine(directory_adt.spec, DIRECTORY_CONFLICT, obj="D")
        machine.execute("P", Invocation("Bind", ("a", 1)))
        machine.execute("Q", Invocation("Bind", ("b", 2)))  # different key

    def test_same_key_binds_conflict(self, directory_adt):
        machine = LockMachine(directory_adt.spec, DIRECTORY_CONFLICT, obj="D")
        machine.execute("P", Invocation("Bind", ("a", 1)))
        with pytest.raises(LockConflict):
            machine.execute("Q", Invocation("Bind", ("a", 2)))

    def test_concurrent_rebinds_merge_by_timestamp(self, directory_adt):
        machine = LockMachine(directory_adt.spec, DIRECTORY_CONFLICT, obj="D")
        machine.execute("Init", Invocation("Bind", ("a", 0)))
        machine.commit("Init", 1)
        machine.execute("P", Invocation("Rebind", ("a", 1)))
        machine.execute("Q", Invocation("Rebind", ("a", 2)))
        machine.commit("Q", 2)
        machine.commit("P", 3)  # P is later: value 1 wins
        assert machine.execute("R", Invocation("Lookup", ("a",))) == ("Found", 1)
