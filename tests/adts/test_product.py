"""Product types: componentwise specs, lifted relations, field locking."""

import pytest

from repro.adts import make_account_adt, make_counter_adt, make_file_adt
from repro.adts.product import (
    ProductSpec,
    lift_relation,
    make_product_adt,
    qualify,
)
from repro.adts import FileSpec
from repro.core import (
    Invocation,
    LockConflict,
    LockMachine,
    Operation,
    invalidated_by,
    is_dependency_relation,
    is_hybrid_atomic,
)


def two_files():
    return ProductSpec({"a": FileSpec(initial=0), "b": FileSpec(initial=0)})


def pop(field, name, *args, result="Ok"):
    return Operation(Invocation(f"{field}.{name}", args), result)


class TestProductSpec:
    def test_initial_state_is_tuple(self):
        assert two_files().initial_state() == (0, 0)

    def test_fields_independent(self):
        spec = two_files()
        assert spec.is_legal(
            (pop("a", "Write", 1), pop("b", "Read", result=0), pop("a", "Read", result=1))
        )

    def test_unknown_field_illegal(self):
        spec = two_files()
        assert not spec.is_legal((pop("c", "Write", 1),))
        assert not spec.is_legal((Operation(Invocation("Write", (1,)), "Ok"),))

    def test_field_name_validation(self):
        with pytest.raises(ValueError):
            ProductSpec({})
        with pytest.raises(ValueError):
            ProductSpec({"a.b": FileSpec()})

    def test_qualify(self):
        invocation = qualify("a", Invocation("Write", (1,)))
        assert invocation.name == "a.Write"
        assert invocation.args == (1,)


class TestLiftedRelations:
    def test_derived_equals_lift(self):
        # The headline theory: derive invalidated-by for the product from
        # scratch and compare with the componentwise lift.
        file_adt = make_file_adt()
        product = make_product_adt({"a": file_adt, "b": make_file_adt()})
        universe = [
            pop("a", "Write", 0),
            pop("a", "Write", 1),
            pop("a", "Read", result=0),
            pop("a", "Read", result=1),
            pop("b", "Write", 0),
            pop("b", "Read", result=0),
        ]
        derived = invalidated_by(product.spec, universe, max_h1=2, max_h2=2)
        expected = product.dependency.restrict(universe)
        assert derived.pair_set == expected.pair_set

    def test_cross_field_never_related(self):
        product = make_product_adt({"a": make_file_adt(), "b": make_file_adt()})
        assert not product.dependency.related(
            pop("a", "Read", result=0), pop("b", "Write", 1)
        )

    def test_lift_is_dependency_relation(self):
        product = make_product_adt(
            {"cash": make_account_adt(), "visits": make_counter_adt()}
        )
        universe = product.universe()
        assert is_dependency_relation(
            product.dependency, product.spec, universe, max_h=2, max_k=2
        )

    def test_is_read_lifts(self):
        product = make_product_adt(
            {"cash": make_account_adt(), "visits": make_counter_adt()}
        )
        assert product.is_read(pop("visits", "Read", result=0))
        assert not product.is_read(pop("visits", "Inc", 1))
        assert not product.is_read(pop("nope", "Read", result=0))


class TestFieldLevelLocking:
    def test_different_fields_concurrent(self):
        product = make_product_adt(
            {"cash": make_account_adt(), "visits": make_counter_adt()}
        )
        machine = LockMachine(product.spec, product.conflict)
        machine.execute("P", Invocation("cash.Debit", (1,)))  # Overdraft lock
        # Q freely works on the other field despite P's exclusive-ish lock.
        machine.execute("Q", Invocation("visits.Inc", (1,)))
        machine.commit("Q", 1)
        machine.abort("P")

    def test_same_field_conflicts_apply(self):
        product = make_product_adt(
            {"cash": make_account_adt(), "visits": make_counter_adt()}
        )
        machine = LockMachine(product.spec, product.conflict)
        machine.execute("P", Invocation("cash.Debit", (1,)))  # Overdraft
        with pytest.raises(LockConflict):
            machine.execute("Q", Invocation("cash.Credit", (1,)))

    def test_runtime_end_to_end(self):
        from repro.runtime import TransactionManager

        product = make_product_adt(
            {"cash": make_account_adt(), "visits": make_counter_adt()},
            name="CustomerRecord",
        )
        manager = TransactionManager(record_history=True)
        manager.create_object("cust", product)
        manager.run_transaction(
            lambda ctx: (
                ctx.invoke("cust", "cash.Credit", 100),
                ctx.invoke("cust", "visits.Inc", 1),
            )
        )
        manager.run_transaction(lambda ctx: ctx.invoke("cust", "cash.Debit", 60))
        assert manager.object("cust").snapshot() == (40, 1)
        assert is_hybrid_atomic(manager.history(), manager.specs())
