"""File type: Figure 4-1 reproduction and behaviour."""

from repro.adts import (
    FILE_COMMUTATIVITY_CONFLICT,
    FILE_CONFLICT,
    FILE_DEPENDENCY,
    FileSpec,
    make_file_adt,
    read,
    write,
)
from repro.core import (
    LockMachine,
    Invocation,
    invalidated_by,
    failure_to_commute,
    is_dependency_relation,
    is_minimal_dependency_relation,
    is_symmetric,
)


class TestFigure41:
    def test_derived_equals_paper(self, file_adt, file_ops):
        derived = invalidated_by(file_adt.spec, file_ops)
        assert derived.pair_set == FILE_DEPENDENCY.restrict(file_ops).pair_set

    def test_read_depends_on_different_write(self):
        assert FILE_DEPENDENCY.related(read(0), write(1))
        assert not FILE_DEPENDENCY.related(read(1), write(1))

    def test_writes_independent(self):
        assert not FILE_DEPENDENCY.related(write(0), write(1))
        assert not FILE_DEPENDENCY.related(write(1), write(1))

    def test_is_dependency_relation(self, file_adt, file_ops):
        assert is_dependency_relation(FILE_DEPENDENCY, file_adt.spec, file_ops)

    def test_is_minimal(self, file_adt, file_ops):
        enumerated = FILE_DEPENDENCY.restrict(file_ops)
        assert is_minimal_dependency_relation(enumerated, file_adt.spec, file_ops)

    def test_conflict_symmetric(self, file_ops):
        assert is_symmetric(FILE_CONFLICT, file_ops)


class TestCommutativityBaseline:
    def test_derived_matches_predicate(self, file_adt, file_ops):
        derived = failure_to_commute(file_adt.spec, file_ops)
        expected = FILE_COMMUTATIVITY_CONFLICT.restrict(file_ops)
        assert derived.pair_set == expected.pair_set

    def test_write_write_conflict_only_under_commutativity(self, file_ops):
        # The concurrency gap: hybrid allows concurrent blind writes.
        assert FILE_COMMUTATIVITY_CONFLICT.related(write(0), write(1))
        assert not FILE_CONFLICT.related(write(0), write(1))


class TestThomasWriteRule:
    def test_concurrent_writes_merge_by_timestamp(self):
        spec = FileSpec(initial=0)
        machine = LockMachine(spec, FILE_CONFLICT, obj="F")
        machine.execute("P", Invocation("Write", (1,)))
        machine.execute("Q", Invocation("Write", (2,)))
        # P commits later in real time but with the higher timestamp.
        machine.commit("Q", 1)
        machine.commit("P", 2)
        # Later readers see the write with the later *timestamp* (P's).
        assert machine.execute("R", Invocation("Read")) == 1
        # ... which is P's value 1: timestamp 2 > 1, so P's write is last.

    def test_rw_classification(self, file_adt):
        assert file_adt.is_read(read(0))
        assert not file_adt.is_read(write(0))
