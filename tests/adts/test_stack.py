"""Stack extension: derived table, concurrent pushes, LIFO semantics."""

import pytest

from repro.adts import (
    STACK_COMMUTATIVITY_CONFLICT,
    STACK_CONFLICT,
    STACK_DEPENDENCY,
    StackSpec,
    make_stack_adt,
    pop,
    push,
    stack_universe,
)
from repro.core import (
    Invocation,
    LockConflict,
    LockMachine,
    WouldBlock,
    failure_to_commute,
    invalidated_by,
    is_dependency_relation,
    is_minimal_dependency_relation,
    is_symmetric,
)


@pytest.fixture
def stack_adt():
    return make_stack_adt()


@pytest.fixture
def stack_ops():
    return stack_universe((1, 2))


class TestSpec:
    def test_lifo_order(self):
        spec = StackSpec()
        assert spec.is_legal((push(1), push(2), pop(2), pop(1)))
        assert not spec.is_legal((push(1), push(2), pop(1)))

    def test_pop_empty_is_partial(self):
        spec = StackSpec()
        assert not spec.is_legal((pop(1),))
        assert spec.results_for(spec.initial_states(), Invocation("Pop")) == []

    def test_pop_result_forced(self):
        spec = StackSpec()
        states = spec.run((push(3), push(7)))
        assert spec.results_for(states, Invocation("Pop")) == [7]


class TestDerivedTable:
    def test_matches_predicate(self, stack_adt, stack_ops):
        derived = invalidated_by(stack_adt.spec, stack_ops, max_h1=3, max_h2=2)
        assert derived.pair_set == STACK_DEPENDENCY.restrict(stack_ops).pair_set

    def test_mirrors_queue_fig42_shape(self):
        assert STACK_DEPENDENCY.related(pop(1), push(2))
        assert not STACK_DEPENDENCY.related(pop(1), push(1))
        assert STACK_DEPENDENCY.related(pop(1), pop(1))
        assert not STACK_DEPENDENCY.related(pop(1), pop(2))
        assert not STACK_DEPENDENCY.related(push(1), push(2))

    def test_is_dependency_and_minimal(self, stack_adt, stack_ops):
        enumerated = STACK_DEPENDENCY.restrict(stack_ops)
        assert is_dependency_relation(enumerated, stack_adt.spec, stack_ops)
        assert is_minimal_dependency_relation(enumerated, stack_adt.spec, stack_ops)

    def test_mc_matches_predicate(self, stack_adt, stack_ops):
        derived = failure_to_commute(stack_adt.spec, stack_ops, max_h=3)
        expected = STACK_COMMUTATIVITY_CONFLICT.restrict(stack_ops)
        assert derived.pair_set == expected.pair_set

    def test_commutativity_adds_push_push(self):
        assert STACK_COMMUTATIVITY_CONFLICT.related(push(1), push(2))
        assert not STACK_CONFLICT.related(push(1), push(2))

    def test_symmetric(self, stack_ops):
        assert is_symmetric(STACK_CONFLICT, stack_ops)


class TestProtocolBehaviour:
    def test_concurrent_pushes_ordered_by_timestamp(self, stack_adt):
        machine = LockMachine(stack_adt.spec, STACK_CONFLICT, obj="S")
        machine.execute("P", Invocation("Push", (1,)))
        machine.execute("Q", Invocation("Push", (2,)))  # concurrent push
        machine.commit("P", 2)
        machine.commit("Q", 1)
        # Serialization Q then P: stack is (2, 1) bottom-to-top.
        assert machine.execute("R", Invocation("Pop")) == 1
        assert machine.execute("R", Invocation("Pop")) == 2

    def test_pop_conflicts_with_active_push(self, stack_adt):
        machine = LockMachine(stack_adt.spec, STACK_CONFLICT, obj="S")
        machine.execute("Init", Invocation("Push", (1,)))
        machine.commit("Init", 1)
        machine.execute("P", Invocation("Push", (2,)))
        with pytest.raises(LockConflict):
            machine.execute("Q", Invocation("Pop"))

    def test_pop_empty_blocks(self, stack_adt):
        machine = LockMachine(stack_adt.spec, STACK_CONFLICT, obj="S")
        with pytest.raises(WouldBlock):
            machine.execute("P", Invocation("Pop"))
