"""Account: Figures 4-5 and 7-1, the appendix lock table, result-aware locks."""

import pytest

from repro.adts import (
    ACCOUNT_COMMUTATIVITY_CONFLICT,
    ACCOUNT_CONFLICT,
    ACCOUNT_DEPENDENCY,
    AccountSpec,
    credit,
    debit_ok,
    debit_overdraft,
    post,
)
from repro.analysis import Ordering, compare_relations
from repro.core import (
    Invocation,
    LockConflict,
    LockMachine,
    failure_to_commute,
    invalidated_by,
    is_dependency_relation,
    is_minimal_dependency_relation,
    is_symmetric,
)


class TestFigure45:
    def test_derived_equals_paper(self, account_adt, account_ops):
        derived = invalidated_by(account_adt.spec, account_ops)
        assert derived.pair_set == ACCOUNT_DEPENDENCY.restrict(account_ops).pair_set

    def test_entries(self):
        # Successful debits depend on successful debits.
        assert ACCOUNT_DEPENDENCY.related(debit_ok(2), debit_ok(3))
        # Overdrafts depend on credits and posts.
        assert ACCOUNT_DEPENDENCY.related(debit_overdraft(2), credit(3))
        assert ACCOUNT_DEPENDENCY.related(debit_overdraft(2), post(50))
        # Credits and posts depend on nothing.
        assert not any(
            ACCOUNT_DEPENDENCY.related(credit(2), p)
            for p in [credit(3), post(50), debit_ok(3), debit_overdraft(3)]
        )
        assert not any(
            ACCOUNT_DEPENDENCY.related(post(50), p)
            for p in [credit(3), post(50), debit_ok(3), debit_overdraft(3)]
        )
        # Result-awareness: successful debits do NOT depend on credits.
        assert not ACCOUNT_DEPENDENCY.related(debit_ok(2), credit(3))
        # Overdrafts do not depend on successful debits.
        assert not ACCOUNT_DEPENDENCY.related(debit_overdraft(2), debit_ok(3))

    def test_is_dependency_and_minimal(self, account_adt, account_ops):
        enumerated = ACCOUNT_DEPENDENCY.restrict(account_ops)
        assert is_dependency_relation(enumerated, account_adt.spec, account_ops)
        assert is_minimal_dependency_relation(
            enumerated, account_adt.spec, account_ops
        )

    def test_closure_matches_appendix_lock_table(self):
        # locks.define(CREDIT_LOCK, OVERDRAFT_LOCK)
        assert ACCOUNT_CONFLICT.related(credit(2), debit_overdraft(3))
        # locks.define(POST_LOCK, OVERDRAFT_LOCK)
        assert ACCOUNT_CONFLICT.related(post(50), debit_overdraft(3))
        # locks.define(DEBIT_LOCK, DEBIT_LOCK)
        assert ACCOUNT_CONFLICT.related(debit_ok(2), debit_ok(3))
        # ... and nothing else conflicts.
        assert not ACCOUNT_CONFLICT.related(credit(2), post(50))
        assert not ACCOUNT_CONFLICT.related(credit(2), debit_ok(3))
        assert not ACCOUNT_CONFLICT.related(post(50), debit_ok(3))
        assert not ACCOUNT_CONFLICT.related(credit(2), credit(3))
        assert not ACCOUNT_CONFLICT.related(
            debit_overdraft(2), debit_overdraft(3)
        )


class TestFigure71:
    def test_derived_equals_paper(self, account_adt, account_ops):
        derived = failure_to_commute(account_adt.spec, account_ops, max_h=3)
        expected = ACCOUNT_COMMUTATIVITY_CONFLICT.restrict(account_ops)
        assert derived.pair_set == expected.pair_set

    def test_post_conflicts_with_credit_and_debit(self):
        assert ACCOUNT_COMMUTATIVITY_CONFLICT.related(post(50), credit(2))
        assert ACCOUNT_COMMUTATIVITY_CONFLICT.related(post(50), debit_ok(2))
        assert ACCOUNT_COMMUTATIVITY_CONFLICT.related(post(50), debit_overdraft(2))
        assert not ACCOUNT_COMMUTATIVITY_CONFLICT.related(post(50), post(25))

    def test_strictly_more_restrictive_than_hybrid(self, account_ops):
        report = compare_relations(
            ACCOUNT_CONFLICT, ACCOUNT_COMMUTATIVITY_CONFLICT, account_ops
        )
        assert report.ordering is Ordering.SUBSET

    def test_symmetric(self, account_ops):
        assert is_symmetric(ACCOUNT_COMMUTATIVITY_CONFLICT, account_ops)


class TestResultAwareLocking:
    """Credit need not wait for successful debits — only for overdrafts."""

    def test_credit_concurrent_with_successful_debit(self, account_adt):
        machine = LockMachine(account_adt.spec, ACCOUNT_CONFLICT, obj="A")
        machine.execute("Init", Invocation("Credit", (100,)))
        machine.commit("Init", 1)
        assert machine.execute("P", Invocation("Debit", (30,))) == "Ok"
        machine.execute("Q", Invocation("Credit", (5,)))  # no conflict

    def test_credit_blocks_on_overdraft(self, account_adt):
        machine = LockMachine(account_adt.spec, ACCOUNT_CONFLICT, obj="A")
        assert machine.execute("P", Invocation("Debit", (30,))) == "Overdraft"
        with pytest.raises(LockConflict):
            machine.execute("Q", Invocation("Credit", (5,)))

    def test_post_concurrent_with_credit_under_hybrid_only(self, account_adt):
        hybrid = LockMachine(account_adt.spec, ACCOUNT_CONFLICT, obj="A")
        hybrid.execute("P", Invocation("Credit", (10,)))
        hybrid.execute("Q", Invocation("Post", (50,)))  # allowed

        baseline = LockMachine(
            account_adt.spec, ACCOUNT_COMMUTATIVITY_CONFLICT, obj="A"
        )
        baseline.execute("P", Invocation("Credit", (10,)))
        with pytest.raises(LockConflict):
            baseline.execute("Q", Invocation("Post", (50,)))

    def test_concurrent_debits_conflict(self, account_adt):
        machine = LockMachine(account_adt.spec, ACCOUNT_CONFLICT, obj="A")
        machine.execute("Init", Invocation("Credit", (100,)))
        machine.commit("Init", 1)
        machine.execute("P", Invocation("Debit", (10,)))
        with pytest.raises(LockConflict):
            machine.execute("Q", Invocation("Debit", (10,)))
