"""Protocol descriptors: conflict orderings and correctness preconditions."""

import pytest

from repro.adts import get_adt
from repro.analysis import Ordering, compare_relations, concurrency_score
from repro.core import is_dependency_relation, is_symmetric
from repro.protocols import (
    ALL_PROTOCOLS,
    COMMUTATIVITY,
    HYBRID,
    SERIAL,
    TWO_PHASE_RW,
    get_protocol,
)


UNIVERSES = {
    "File": ((0, 1),),
    "FIFOQueue": ((1, 2),),
    "SemiQueue": ((1, 2),),
    "Account": ((2, 3), (50,)),
    "Counter": ((1, 2), (0, 1, 2)),
    "Set": ((1, 2),),
    "Directory": (("a",), (1, 2)),
}


def universe_for(adt):
    return adt.universe(*UNIVERSES[adt.name])


class TestLookup:
    def test_get_protocol(self):
        assert get_protocol("hybrid") is HYBRID
        assert get_protocol("rw-2pl") is TWO_PHASE_RW

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_protocol("mvcc")

    def test_all_protocols_ordering(self):
        assert [p.name for p in ALL_PROTOCOLS] == [
            "hybrid",
            "commutativity",
            "rw-2pl",
            "serial",
        ]


@pytest.mark.parametrize("name", sorted(UNIVERSES))
class TestCorrectnessPreconditions:
    """Every protocol's conflict relation must be a symmetric dependency
    relation for every type (the Theorem 11 precondition)."""

    def test_symmetric(self, name):
        adt = get_adt(name)
        ops = universe_for(adt)
        for protocol in ALL_PROTOCOLS:
            assert is_symmetric(protocol.conflict_for(adt), ops), protocol.name

    def test_dependency(self, name):
        adt = get_adt(name)
        ops = universe_for(adt)
        for protocol in ALL_PROTOCOLS:
            assert is_dependency_relation(
                protocol.conflict_for(adt), adt.spec, ops, max_h=2, max_k=2
            ), protocol.name


@pytest.mark.parametrize("name", sorted(UNIVERSES))
def test_hybrid_weaker_or_incomparable_to_commutativity(name):
    # Section 7.1: "lock conflict relations induced by dependency may be
    # weaker than or incomparable to those induced by the
    # commutativity-based protocols" — the FIFO queue's Figure 4-2 choice
    # is the incomparable case; everything else here is equal or weaker.
    adt = get_adt(name)
    ops = universe_for(adt)
    report = compare_relations(
        HYBRID.conflict_for(adt), COMMUTATIVITY.conflict_for(adt), ops
    )
    if name == "FIFOQueue":
        assert report.ordering is Ordering.INCOMPARABLE
    else:
        assert report.ordering in (Ordering.EQUAL, Ordering.SUBSET)


@pytest.mark.parametrize("name", sorted(UNIVERSES))
def test_concurrency_scores_monotone(name):
    adt = get_adt(name)
    ops = universe_for(adt)
    scores = [
        concurrency_score(protocol.conflict_for(adt), ops)
        for protocol in ALL_PROTOCOLS
    ]
    # commutativity >= rw-2pl >= serial, and hybrid >= serial, on raw pair
    # counts.  (Hybrid/Fig 4-2 trades some pair-count slack for concurrent
    # enqueues, so it is not pointwise above commutativity on the queue.)
    assert scores[1] >= scores[2] >= scores[3]
    assert scores[0] >= scores[3]
    if name != "FIFOQueue":
        assert scores[0] >= scores[1]


def test_hybrid_strictly_beats_commutativity_on_account():
    adt = get_adt("Account")
    ops = universe_for(adt)
    report = compare_relations(
        HYBRID.conflict_for(adt), COMMUTATIVITY.conflict_for(adt), ops
    )
    assert report.ordering is Ordering.SUBSET


def test_serial_is_total():
    adt = get_adt("File")
    ops = universe_for(adt)
    assert concurrency_score(SERIAL.conflict_for(adt), ops) == 0.0
