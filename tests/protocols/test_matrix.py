"""The full ADT × protocol matrix: every pairing runs and verifies.

For each registered type and each locking protocol, a canned random
workload is pushed through the LOCK machine and the accepted history is
checked hybrid atomic; the optimistic engine gets the same treatment via
its manager.  This is breadth insurance: any new type or protocol that
breaks a pairing fails here by name.
"""

import random

import pytest

from repro.adts import get_adt, registry
from repro.core import (
    Invocation,
    LockConflict,
    LockMachine,
    WouldBlock,
    is_hybrid_atomic,
)
from repro.protocols import ALL_PROTOCOLS
from repro.runtime import OptimisticTransactionManager, ValidationFailed

INVOCATION_POOLS = {
    "File": [Invocation("Write", (1,)), Invocation("Write", (2,)), Invocation("Read")],
    "FIFOQueue": [Invocation("Enq", (1,)), Invocation("Enq", (2,)), Invocation("Deq")],
    "BoundedQueue": [Invocation("Enq", (1,)), Invocation("Enq", (2,)), Invocation("Deq")],
    "Stack": [Invocation("Push", (1,)), Invocation("Push", (2,)), Invocation("Pop")],
    "SemiQueue": [Invocation("Ins", (1,)), Invocation("Ins", (2,)), Invocation("Rem")],
    "Account": [
        Invocation("Credit", (3,)),
        Invocation("Post", (50,)),
        Invocation("Debit", (2,)),
    ],
    "Counter": [
        Invocation("Inc", (1,)),
        Invocation("Dec", (1,)),
        Invocation("Read"),
    ],
    "Set": [
        Invocation("Insert", (1,)),
        Invocation("Remove", (1,)),
        Invocation("Member", (1,)),
    ],
    "Directory": [
        Invocation("Bind", ("k", 1)),
        Invocation("Rebind", ("k", 2)),
        Invocation("Unbind", ("k",)),
        Invocation("Lookup", ("k",)),
    ],
}


def drive_machine(machine, pool, seed):
    rng = random.Random(seed)
    stamps = iter(range(1, 100))
    active = []
    counter = 0
    for _ in range(40):
        roll = rng.random()
        if roll < 0.2 and active:
            machine.abort(active.pop(rng.randrange(len(active))))
        elif roll < 0.45 and active:
            machine.commit(active.pop(rng.randrange(len(active))), next(stamps))
        else:
            if len(active) < 3:
                counter += 1
                active.append(f"T{counter}")
            transaction = active[rng.randrange(len(active))]
            try:
                machine.execute(transaction, rng.choice(pool))
            except (LockConflict, WouldBlock):
                pass
    for transaction in active:
        machine.commit(transaction, next(stamps))


@pytest.mark.parametrize("adt_name", sorted(INVOCATION_POOLS))
@pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: p.name)
def test_every_type_under_every_locking_protocol(adt_name, protocol):
    adt = get_adt(adt_name)
    machine = LockMachine(adt.spec, protocol.conflict_for(adt))
    drive_machine(machine, INVOCATION_POOLS[adt_name], seed=13)
    history = machine.history()
    assert is_hybrid_atomic(history, {"X": adt.spec})


@pytest.mark.parametrize("adt_name", sorted(INVOCATION_POOLS))
def test_every_type_under_optimistic_engine(adt_name):
    adt = get_adt(adt_name)
    manager = OptimisticTransactionManager(record_history=True)
    manager.create_object("X", adt)
    rng = random.Random(17)
    pool = INVOCATION_POOLS[adt_name]
    active = []
    for _ in range(40):
        roll = rng.random()
        if roll < 0.4 and active:
            txn = active.pop(rng.randrange(len(active)))
            try:
                manager.commit(txn)
            except ValidationFailed:
                pass
        else:
            if len(active) < 3:
                active.append(manager.begin())
            txn = active[rng.randrange(len(active))]
            invocation = rng.choice(pool)
            try:
                manager.invoke(txn, "X", invocation.name, *invocation.args)
            except WouldBlock:
                pass
    for txn in active:
        try:
            manager.commit(txn)
        except ValidationFailed:
            pass
    assert is_hybrid_atomic(manager.history(), manager.specs())


def test_matrix_covers_registry():
    assert set(INVOCATION_POOLS) == set(registry())
