"""Live-server telemetry end to end: wire traces, introspection, flight.

Each test boots a real :class:`~repro.server.server.ReproServer` on an
ephemeral localhost port (the same no-pytest-asyncio idiom as
``test_server.py``) and asserts the PR's three telemetry surfaces
against real sockets:

* every request a client sends is stamped with a trace context and the
  resulting span carries the client's trace id plus the full
  client / queue / execute / respond phase split;
* the in-band ``stats`` / ``health`` ops answer inline with the
  registry snapshot (codec round trip included) and render through
  both the Prometheus text format and ``repro top``'s frame renderer;
* the flight recorder dumps on drain and the dump replays through
  ``repro analyze``.
"""

import asyncio

import pytest

from repro.obs import (
    WIRE_LATENCY_BUCKETS,
    FlightRecorder,
    MetricsRegistry,
    RegistrySink,
    SpanBuilder,
    TraceBus,
    analyze_trace,
    read_jsonl,
    render_prometheus,
)
from repro.server import AsyncClient, ReproServer, render_top
from repro.server.protocol import parse_request, request_frame


def run(coroutine):
    return asyncio.run(coroutine)


async def start_server(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("drain_grace", 1.0)
    server = ReproServer(**kwargs)
    await server.start()
    return server


def telemetry_stack(tmp_path):
    """Bus + registry + flight recorder wired the way ``repro serve`` does."""
    bus = TraceBus()
    registry = MetricsRegistry()
    bus.subscribe(RegistrySink(registry, latency_buckets=WIRE_LATENCY_BUCKETS))
    flight = bus.subscribe(
        FlightRecorder(str(tmp_path / "flight"), emit_to=bus)
    )
    return bus, registry, flight


class TestWireTracePropagation:
    def test_committed_span_carries_trace_id_and_phase_split(self, tmp_path):
        bus, registry, flight = telemetry_stack(tmp_path)
        spans = bus.subscribe(SpanBuilder())

        async def scenario():
            server = await start_server(
                tracer=bus, registry=registry, flight=flight
            )
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            await client.invoke(handle, "A", "Credit", 5)
            await client.commit(handle)
            await client.aclose()
            await server.drain()

        run(scenario())
        (span,) = spans.committed()
        assert span.trace is not None and "-" in span.trace
        # Every wire phase is present and the split is sane.
        assert set(span.phases) == {"client", "queue", "execute", "respond"}
        assert all(value >= 0.0 for value in span.phases.values())
        assert span.wire_latency == pytest.approx(sum(span.phases.values()))
        assert span.well_formed

    def test_all_transactions_on_a_connection_share_the_client_prefix(
        self, tmp_path
    ):
        bus, registry, flight = telemetry_stack(tmp_path)
        spans = bus.subscribe(SpanBuilder())

        async def scenario():
            server = await start_server(
                tracer=bus, registry=registry, flight=flight
            )
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            for _ in range(3):
                handle = await client.begin()
                await client.invoke(handle, "A", "Credit", 1)
                await client.commit(handle)
            await client.aclose()
            await server.drain()

        run(scenario())
        committed = spans.committed()
        assert len(committed) == 3
        prefixes = {span.trace.split("-")[0] for span in committed}
        assert len(prefixes) == 1, "one connection, one trace-id prefix"
        assert len({span.trace for span in committed}) == 3

    def test_trace_context_rides_the_frame_unchanged(self):
        import json

        frame = request_frame(
            7, "begin", trace={"id": "c9-3", "sent": 12.5}
        )
        request = parse_request(json.loads(frame[4:]))
        assert request.trace_id == "c9-3"
        assert request.sent == 12.5


class TestIntrospectionOps:
    def test_stats_and_health_answer_inline(self, tmp_path):
        bus, registry, flight = telemetry_stack(tmp_path)
        results = {}

        async def scenario():
            server = await start_server(
                tracer=bus, registry=registry, flight=flight, workers=2
            )
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            await client.invoke(handle, "A", "Credit", 5)
            await client.commit(handle)
            results["health"] = await client.health()
            results["stats"] = await client.stats()
            await client.aclose()
            await server.drain()

        run(scenario())
        health = results["health"]
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["uptime"] >= 0.0
        stats = results["stats"]
        assert stats["server"]["transactions_committed"] == 1
        assert stats["queue_limit"] > 0
        assert len(stats["queues"]) == 2
        # The registry snapshot survived the codec round trip.
        metrics = stats["metrics"]
        assert metrics["counters"]["server.decoded"] >= 3
        assert metrics["histograms"]["server.client_wire"]["total"] >= 3
        assert stats["flight"]["dumps"] == 0

    def test_snapshot_renders_prometheus_and_top(self, tmp_path):
        bus, registry, flight = telemetry_stack(tmp_path)
        results = {}

        async def scenario():
            server = await start_server(
                tracer=bus, registry=registry, flight=flight
            )
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            await client.invoke(handle, "A", "Credit", 5)
            await client.commit(handle)
            results["stats"] = await client.stats()
            await client.aclose()
            await server.drain()

        run(scenario())
        snapshot = results["stats"]
        rebuilt = MetricsRegistry.from_snapshot(snapshot["metrics"])
        text = render_prometheus(rebuilt)
        assert "# TYPE repro_txn_committed_total counter" in text
        assert "repro_server_client_wire_bucket" in text
        assert 'le="+Inf"' in text
        frame = render_top(snapshot)
        assert "repro top — ok" in frame
        assert "latency client->server:" in frame
        second = render_top(snapshot, previous=snapshot, elapsed=1.0)
        assert "commits 0.0/s" in second


class TestFlightIntegration:
    def test_drain_leaves_a_dump_that_analyze_reads(self, tmp_path):
        bus, registry, flight = telemetry_stack(tmp_path)

        async def scenario():
            server = await start_server(
                tracer=bus, registry=registry, flight=flight
            )
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            await client.invoke(handle, "A", "Credit", 5)
            await client.commit(handle)
            await client.aclose()
            await server.drain()

        run(scenario())
        assert flight.last_reason == "drain"
        assert len(flight.dumps) == 1
        report = analyze_trace(read_jsonl(flight.dumps[0]))
        assert report["transactions"]["committed"] == 1
        assert report["flight_dumps"], "dump header must announce itself"
        assert report["slowest"][0]["trace"] is not None
