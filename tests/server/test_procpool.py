"""Shared-nothing shard processes: routing, 2PC, supervision, cleanup.

Covers the multi-process serving tier end to end — real child processes,
real pipes, real WALs in a tmp directory — plus the two session-hygiene
regressions: a CROSS_SHARD refusal (in-loop mode) and a worker death
(pool mode) must leak no session state and strand no queued request.
"""

import asyncio
import pathlib

import pytest

from repro.obs import AtomicityChecker, JSONLSink, TraceBus, read_jsonl
from repro.server import (
    AsyncClient,
    ReproServer,
    Session,
    ShardDown,
    ShardProcessPool,
    WireError,
)


def run(coroutine):
    return asyncio.run(coroutine)


def two_shard_names(pool):
    """Object names landing on shard 0 and shard 1 respectively."""
    names = {}
    index = 0
    while len(names) < 2:
        candidate = f"Q{index}"
        names.setdefault(pool.shard_of(candidate), candidate)
        index += 1
    return names[0], names[1]


@pytest.fixture()
def pool(tmp_path):
    built = ShardProcessPool(2, tmp_path / "data", trace_dir=tmp_path / "traces")
    built.start()
    yield built
    built.stop()


class TestPoolDirect:
    def test_single_shard_txn_fast_path(self, pool):
        a, _ = two_shard_names(pool)
        pool.create_object(a, "FIFOQueue")
        reply = pool.shards[0].single(
            {"op": "txn", "name": "T1", "steps": [(a, "Enq", (1,)), (a, "Enq", (2,))]}
        )
        assert reply["results"] == ["Ok", "Ok"]
        # Shard 0 mints on its own stride.
        assert reply["ok"] % pool.workers == 0
        snapshot = pool.shards[0].single({"op": "snapshot", "obj": a})
        assert snapshot["ok"] == (1, 2)

    def test_cross_shard_2pc_commits_everywhere(self, pool):
        a, b = two_shard_names(pool)
        pool.create_object(a, "FIFOQueue")
        pool.create_object(b, "FIFOQueue")
        pool.shards[0].single({"op": "begin", "name": "X"})
        pool.shards[1].single({"op": "begin", "name": "X", "quiet": True})
        pool.shards[0].single(
            {"op": "invoke", "txn": "X", "obj": a, "operation": "Enq", "args": (7,)}
        )
        pool.shards[1].single(
            {"op": "invoke", "txn": "X", "obj": b, "operation": "Enq", "args": (8,)}
        )
        reply = pool.commit_cross_shard("X", [0, 1], primary=0)
        assert "ok" in reply
        # The decision lands on the primary's stride and both shards
        # applied it.
        assert reply["ok"] % pool.workers == 0
        assert pool.shards[0].single({"op": "snapshot", "obj": a})["ok"] == (7,)
        assert pool.shards[1].single({"op": "snapshot", "obj": b})["ok"] == (8,)

    def test_killed_shard_recovers_committed_state_from_wal(self, pool):
        a, _ = two_shard_names(pool)
        pool.create_object(a, "FIFOQueue")
        pool.shards[0].single(
            {"op": "txn", "name": "T1", "steps": [(a, "Enq", (5,))]}
        )
        pool.shards[0].kill()
        with pytest.raises(ShardDown):
            pool.shards[0].single({"op": "stats"})
        pool.respawn(0)
        assert pool.shards[0].single({"op": "snapshot", "obj": a})["ok"] == (5,)
        stats = pool.shards[0].single({"op": "stats"})["ok"]
        assert stats["incarnation"] == 2

    def test_group_commit_amortises_fsyncs_across_a_batch(self, pool):
        a, _ = two_shard_names(pool)
        pool.create_object(a, "FIFOQueue")
        before = pool.shards[0].single({"op": "stats"})["ok"]
        ops = [
            {"op": "txn", "name": f"B{i}", "steps": [(a, "Enq", (i,))]}
            for i in range(8)
        ]
        replies = pool.shards[0].call(ops)
        assert all("ok" in reply for reply in replies)
        after = pool.shards[0].single({"op": "stats"})["ok"]
        # 8 transactions × 3 records (begin-less: 2 per op + commit) in
        # ONE durable batch: exactly one more fsync, many more appends.
        assert after["wal_syncs"] == before["wal_syncs"] + 1
        assert after["wal_appends"] > before["wal_appends"] + 8

    def test_prepared_transaction_survives_crash_and_resolves_commit(self, pool):
        a, b = two_shard_names(pool)
        pool.create_object(a, "FIFOQueue")
        pool.create_object(b, "FIFOQueue")
        pool.shards[0].single({"op": "begin", "name": "X"})
        pool.shards[1].single({"op": "begin", "name": "X", "quiet": True})
        pool.shards[0].single(
            {"op": "invoke", "txn": "X", "obj": a, "operation": "Enq", "args": (1,)}
        )
        pool.shards[1].single(
            {"op": "invoke", "txn": "X", "obj": b, "operation": "Enq", "args": (2,)}
        )
        v0 = pool.shards[0].single({"op": "prepare", "txn": "X"})["ok"]
        v1 = pool.shards[1].single({"op": "prepare", "txn": "X"})["ok"]
        # Primary decides and commits locally; participant crashes before
        # the decision reaches it.
        decided = pool.shards[0].single(
            {"op": "decide", "txn": "X", "votes": [v0, v1]}
        )["ok"]
        pool.shards[1].kill()
        resolved = pool.respawn(1)
        assert resolved == ["X"]
        verdict = pool.shards[1].single({"op": "decision", "txn": "X"})["ok"]
        assert verdict == {"outcome": "commit", "ts": decided}
        assert pool.shards[1].single({"op": "snapshot", "obj": b})["ok"] == (2,)

    def test_prepared_transaction_presumed_abort_without_decision(self, pool):
        a, b = two_shard_names(pool)
        pool.create_object(a, "FIFOQueue")
        pool.create_object(b, "FIFOQueue")
        pool.shards[0].single({"op": "begin", "name": "X"})
        pool.shards[1].single({"op": "begin", "name": "X", "quiet": True})
        pool.shards[1].single(
            {"op": "invoke", "txn": "X", "obj": b, "operation": "Enq", "args": (2,)}
        )
        pool.shards[1].single({"op": "prepare", "txn": "X"})
        # No shard ever logged a commit: crash + respawn resolves the
        # prepared transaction by presumed abort, releasing its locks.
        pool.shards[1].kill()
        assert pool.respawn(1) == ["X"]
        verdict = pool.shards[1].single({"op": "decision", "txn": "X"})["ok"]
        assert verdict == {"outcome": "unknown"}
        assert pool.shards[1].single({"op": "snapshot", "obj": b})["ok"] == ()
        assert pool.shards[1].single({"op": "prepared"})["ok"] == []

    def test_coordinator_crash_between_prepare_and_decide(self, pool):
        """Fault injection: both shards prepared, the coordinator dies
        before deciding anywhere — no commit record exists, so recovery
        resolves the transaction by presumed abort on every shard."""
        a, b = two_shard_names(pool)
        pool.create_object(a, "FIFOQueue")
        pool.create_object(b, "FIFOQueue")
        pool.shards[0].single({"op": "begin", "name": "X"})
        pool.shards[1].single({"op": "begin", "name": "X", "quiet": True})
        for home, name in ((0, a), (1, b)):
            pool.shards[home].single(
                {
                    "op": "invoke",
                    "txn": "X",
                    "obj": name,
                    "operation": "Enq",
                    "args": (7,),
                }
            )
            pool.shards[home].single({"op": "prepare", "txn": "X"})
        # The coordinator (parent) "crashes": kill both participants
        # before any decide lands, then bring them back.
        pool.shards[0].kill()
        pool.shards[1].kill()
        assert pool.respawn(0) == ["X"]
        assert pool.respawn(1) == ["X"]
        for home, name in ((0, a), (1, b)):
            assert pool.shards[home].single(
                {"op": "decision", "txn": "X"}
            )["ok"] == {"outcome": "unknown"}
            assert pool.shards[home].single(
                {"op": "snapshot", "obj": name}
            )["ok"] == ()
            assert pool.shards[home].single({"op": "prepared"})["ok"] == []
        # Both shards are consistent and unlocked: the same pair commits.
        pool.shards[0].single({"op": "begin", "name": "Y"})
        pool.shards[1].single({"op": "begin", "name": "Y", "quiet": True})
        for home, name in ((0, a), (1, b)):
            pool.shards[home].single(
                {
                    "op": "invoke",
                    "txn": "Y",
                    "obj": name,
                    "operation": "Enq",
                    "args": (8,),
                }
            )
        assert "ok" in pool.commit_cross_shard("Y", [0, 1], primary=1)

    def test_crash_op_loses_only_the_unflushed_batch(self, pool):
        """Fault injection: a hard crash mid-batch (before the group
        flush) loses exactly the unacknowledged batch — earlier acked
        batches survive via the WAL."""
        a, _ = two_shard_names(pool)
        pool.create_object(a, "FIFOQueue")
        acked = pool.shards[0].call(
            [
                {"op": "txn", "name": "A1", "steps": [(a, "Enq", (1,))]},
                {"op": "txn", "name": "A2", "steps": [(a, "Enq", (2,))]},
            ]
        )
        assert all("ok" in reply for reply in acked)
        # The crash op dies via os._exit before the batch's WAL flush:
        # the whole batch — including the txns ahead of it — was never
        # acknowledged, and must be lost.
        with pytest.raises(ShardDown):
            pool.shards[0].call(
                [
                    {"op": "txn", "name": "B1", "steps": [(a, "Enq", (3,))]},
                    {"op": "crash"},
                ]
            )
        pool.respawn(0)
        assert pool.shards[0].single({"op": "snapshot", "obj": a})["ok"] == (1, 2)

    def test_stride_mismatch_is_refused_on_respawn(self, tmp_path):
        pool = ShardProcessPool(2, tmp_path / "data")
        pool.start()
        a, _ = two_shard_names(pool)
        pool.create_object(a, "FIFOQueue")
        pool.shards[0].single({"op": "txn", "name": "T1", "steps": [(a, "Enq", (1,))]})
        pool.stop()
        # Reopening shard 0's log as shard 0 *of 3* must be refused: a
        # resized pool would mint colliding timestamps.
        resized = ShardProcessPool(3, tmp_path / "data")
        try:
            resized.start()
            with pytest.raises(ShardDown, match="stride"):
                resized.shards[0].single({"op": "stats"})
        finally:
            resized.stop()


class TestPoolServer:
    """The asyncio front end over the process pool, on real sockets."""

    async def _started(self, tmp_path, **kwargs):
        pool = ShardProcessPool(2, tmp_path / "data", trace_dir=tmp_path / "traces")
        server = ReproServer(pool=pool, drain_grace=0.5, **kwargs)
        await server.start()
        client = await AsyncClient.connect(server.host, server.port)
        return pool, server, client

    def test_cross_shard_transaction_commits_over_the_wire(self, tmp_path):
        async def scenario():
            pool, server, client = await self._started(tmp_path)
            a, b = two_shard_names(pool)
            await client.create(a, "FIFOQueue")
            await client.create(b, "FIFOQueue")
            txn = await client.begin()
            await client.invoke(txn, a, "Enq", 1)
            await client.invoke(txn, b, "Enq", 2)
            timestamp, _ = await client.commit(txn)
            assert isinstance(timestamp, int)
            await client.aclose()
            await server.drain()

        run(scenario())

    def test_worker_death_answers_shard_down_and_leaks_nothing(self, tmp_path):
        """Satellite regression: worker death strands and leaks nothing.

        The in-flight request gets a typed SHARD_DOWN, the handle that
        touched the dead shard is closed (later use answers UNKNOWN_TXN,
        not a hang), locks on the surviving participant are released,
        and the shard comes back recovered.
        """

        async def scenario():
            pool, server, client = await self._started(tmp_path)
            a, b = two_shard_names(pool)
            await client.create(a, "FIFOQueue")
            await client.create(b, "FIFOQueue")
            # A cross-shard transaction holding locks on both shards.
            txn = await client.begin()
            await client.invoke(txn, a, "Enq", 1)
            await client.invoke(txn, b, "Enq", 2)
            pool.shards[1].kill()
            with pytest.raises(WireError) as caught:
                await asyncio.wait_for(client.invoke(txn, b, "Enq", 3), 30)
            assert caught.value.code == "SHARD_DOWN"
            # The handle was cleaned everywhere, not leaked.
            with pytest.raises(WireError) as caught:
                await client.invoke(txn, a, "Enq", 4)
            assert caught.value.code == "UNKNOWN_TXN"
            for connection in server._connections:
                assert connection.session.active == 0
            # Shard 0's locks were released: a new transaction can lock a.
            txn2 = await client.begin()
            await client.invoke(txn2, a, "Enq", 5)
            # And the dead shard is back, recovered, serving.
            await client.invoke(txn2, b, "Enq", 6)
            timestamp, _ = await client.commit(txn2)
            assert isinstance(timestamp, int)
            stats = await client.stats()
            assert stats["pool"]["alive"] == [True, True]
            assert stats["pool"]["incarnations"][1] == 2
            await client.aclose()
            await server.drain()

        run(scenario())

    def test_merged_trace_certifies_clean_through_worker_death(self, tmp_path):
        parent_trace = tmp_path / "parent.jsonl"

        async def scenario():
            bus = TraceBus()
            sink = bus.subscribe(JSONLSink(str(parent_trace)))
            pool = ShardProcessPool(
                2, tmp_path / "data", trace_dir=tmp_path / "traces"
            )
            server = ReproServer(
                pool=pool, tracer=bus, drain_grace=0.5, flush_on_drain=[sink]
            )
            await server.start()
            client = await AsyncClient.connect(server.host, server.port)
            a, b = two_shard_names(pool)
            await client.create(a, "FIFOQueue")
            await client.create(b, "FIFOQueue")
            for value in range(3):
                txn = await client.begin()
                await client.invoke(txn, a, "Enq", value)
                await client.invoke(txn, b, "Enq", value)
                await client.commit(txn)
            pool.shards[1].kill()
            txn = await client.begin()
            with pytest.raises(WireError):
                await client.invoke(txn, b, "Enq", 99)
            txn = await client.begin()
            await client.invoke(txn, b, "Enq", 100)
            await client.commit(txn)
            await client.aclose()
            await server.drain()
            return pool

        pool = run(scenario())
        events = read_jsonl(str(parent_trace))
        for shard in pool.shards:
            for path in shard.trace_paths:
                events.extend(read_jsonl(str(path)))
        events.sort(key=lambda event: event.ts)
        report = AtomicityChecker().replay(events).report()
        assert report["verdict"] == "clean", report["violations"]

    def test_drain_flushes_and_joins_the_pool(self, tmp_path):
        async def scenario():
            pool, server, client = await self._started(tmp_path)
            a, _ = two_shard_names(pool)
            await client.create(a, "FIFOQueue")
            txn = await client.begin()
            await client.invoke(txn, a, "Enq", 1)
            # Leave the transaction open: drain force-aborts it.
            await client.aclose()
            report = await server.drain()
            assert report["aborted"] >= 0
            assert all(not shard.alive for shard in pool.shards)
            # The WAL directories survive for the next incarnation.
            assert (tmp_path / "data" / "shard0" / "wal.jsonl").exists()

        run(scenario())


class TestCrossShardRefusalHygiene:
    """Satellite regression: the in-loop CROSS_SHARD refusal leaks nothing."""

    def test_refusal_leaves_no_half_bound_state(self, tmp_path):
        async def scenario():
            server = ReproServer(workers=2, drain_grace=0.5)
            await server.start()
            client = await AsyncClient.connect(server.host, server.port)
            # Objects on distinct in-loop shards.
            names = {}
            index = 0
            while len(names) < 2:
                candidate = f"Q{index}"
                from repro.server import shard_for

                names.setdefault(shard_for(candidate, 2), candidate)
                index += 1
            a, b = names[0], names[1]
            await client.create(a, "FIFOQueue")
            await client.create(b, "FIFOQueue")
            txn = await client.begin()
            await client.invoke(txn, a, "Enq", 1)
            with pytest.raises(WireError) as caught:
                await client.invoke(txn, b, "Enq", 2)
            assert caught.value.code == "CROSS_SHARD"
            # The refusal must not corrupt the binding: the transaction
            # is still usable on its own shard and completes cleanly.
            await client.invoke(txn, a, "Enq", 3)
            record = server._connections[0].session.lookup(txn)
            assert record.participants == [shard_for(a, 2)]
            timestamp, _ = await client.commit(txn)
            assert isinstance(timestamp, int)
            # ...and the handle is gone afterwards: no session leak.
            assert server._connections[0].session.active == 0
            # The refused shard holds no locks: another transaction can
            # use b immediately without a conflict.
            other = await client.begin()
            await client.invoke(other, b, "Enq", 9)
            await client.commit(other)
            await client.aclose()
            await server.drain()

        run(scenario())


class TestSessionRecords:
    def test_touch_tracks_primary_and_participants(self):
        session = Session(1)
        handle = session.mint_handle()
        record = session.open_transaction(handle)
        assert not record.bound and not record.cross_shard
        assert record.touch(2) is True
        assert record.primary == 2
        assert record.touch(2) is False
        assert record.touch(0) is True
        assert record.cross_shard
        assert record.participants == [2, 0]
