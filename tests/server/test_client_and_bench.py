"""The sync client (real cross-thread sockets) and the bench harness."""

import asyncio
import json
import sys
import threading
from pathlib import Path

import pytest

from repro.server import ReproServer, SyncClient, WireError
from repro.server.bench import render_summary, run_serve_bench

BENCHMARKS = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture
def threaded_server():
    """A live server on its own event-loop thread (SyncClient's shape)."""
    box = {}
    ready = threading.Event()
    stop = None

    def runner():
        async def main():
            server = ReproServer(workers=2, drain_grace=1.0)
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_event_loop()
            ready.set()
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(timeout=5)
    try:
        yield box["server"]
    finally:
        asyncio.run_coroutine_threadsafe(
            box["server"].drain(), box["loop"]
        ).result(timeout=5)
        thread.join(timeout=5)


class TestSyncClient:
    def test_full_transaction_lifecycle(self, threaded_server):
        server = threaded_server
        with SyncClient(server.host, server.port) as client:
            assert client.ping()["workers"] == 2
            client.create("sync-acct", "Account")
            handle = client.begin()
            assert client.invoke(handle, "sync-acct", "Credit", 7) == "Ok"
            timestamp = client.commit(handle)
            assert isinstance(timestamp, int)

    def test_commit_retry_reuses_the_request_id(self, threaded_server):
        server = threaded_server
        with SyncClient(server.host, server.port) as client:
            client.create("retry-acct", "Account")
            handle = client.begin()
            client.invoke(handle, "retry-acct", "Credit", 1)
            request_id = client.next_id()
            first = client.commit(handle, request_id=request_id)
            # The "did my commit land?" retransmit: same id, same answer.
            second = client.commit(handle, request_id=request_id)
            assert first == second
            # A fresh id is a fresh request — and the handle is gone.
            with pytest.raises(WireError) as excinfo:
                client.commit(handle)
            assert excinfo.value.code == "UNKNOWN_TXN"

    def test_typed_errors_surface_as_wire_errors(self, threaded_server):
        server = threaded_server
        with SyncClient(server.host, server.port) as client:
            handle = client.begin()
            with pytest.raises(WireError) as excinfo:
                client.invoke(handle, "no-such-object", "Credit", 1)
            assert excinfo.value.code == "UNKNOWN_OBJECT"
            client.abort(handle)


class TestServeBench:
    def test_smoke_run_validates_and_certifies(self, tmp_path):
        result = run_serve_bench(
            smoke=True, duration=0.25, output_dir=tmp_path
        )
        artifact = tmp_path / "BENCH_serve.json"
        assert artifact.is_file()
        on_disk = json.loads(artifact.read_text())
        sys.path.insert(0, str(BENCHMARKS))
        try:
            from bench_schema import validate_artifact
        finally:
            sys.path.pop(0)
        validate_artifact("BENCH_serve.json", on_disk)
        # The acceptance floor: 64 concurrent connections did real work.
        assert result["max_concurrent_clients"] >= 64
        top = next(
            row
            for row in result["closed_loop"]
            if row["clients"] == result["max_concurrent_clients"]
        )
        assert top["committed"] > 0
        assert top["stats"]["txn_per_second"] > 0
        assert result["certification"]["ok"]
        assert result["certification"]["verdict"] == "clean"
        # The trace file is flushed and non-trivial.
        trace = tmp_path / "serve_trace.jsonl"
        assert trace.is_file() and trace.stat().st_size > 0
        # The renderer covers every section without raising.
        summary = render_summary(result)
        assert "closed loop" in summary and "certification" in summary
