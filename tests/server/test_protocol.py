"""Wire-protocol framing: edge cases and round-trip properties.

The decoder must survive everything a real socket produces — torn
headers, dribbling bodies, several frames per chunk — and refuse
everything a confused or hostile peer produces (oversized frames,
non-JSON bodies, wrong versions) with a *typed* error, never an
unhandled exception.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.protocol import (
    ACTIONS,
    HEADER,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    WireError,
    encode_frame,
    error_frame,
    parse_request,
    parse_response,
    request_frame,
    response_frame,
    split_frames,
)


class TestFraming:
    def test_single_frame_round_trip(self):
        frame = request_frame(7, "ping")
        messages, leftover = split_frames(frame)
        assert leftover == 0
        request = parse_request(messages[0])
        assert request.id == 7
        assert request.action == "ping"
        assert request.params == {}

    def test_partial_reads_byte_by_byte(self):
        frame = request_frame(1, "invoke", {"transaction": "t", "obj": "A"})
        decoder = FrameDecoder()
        collected = []
        for index in range(len(frame)):
            collected.extend(decoder.feed(frame[index : index + 1]))
        assert len(collected) == 1
        assert parse_request(collected[0]).action == "invoke"

    def test_torn_header_across_chunks(self):
        frame = request_frame(2, "begin")
        decoder = FrameDecoder()
        assert decoder.feed(frame[:2]) == []       # half the length prefix
        assert decoder.pending_bytes == 2
        messages = decoder.feed(frame[2:])
        assert len(messages) == 1

    def test_many_frames_in_one_chunk(self):
        blob = b"".join(request_frame(i, "ping") for i in range(5))
        messages, leftover = split_frames(blob)
        assert [m["id"] for m in messages] == [0, 1, 2, 3, 4]
        assert leftover == 0

    def test_frames_plus_torn_tail(self):
        tail = request_frame(9, "ping")
        blob = request_frame(8, "ping") + tail[: len(tail) - 3]
        messages, leftover = split_frames(blob)
        assert [m["id"] for m in messages] == [8]
        assert leftover == len(tail) - 3

    def test_oversized_frame_is_refused_before_buffering(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        huge_header = HEADER.pack(1 << 30)
        with pytest.raises(FrameError) as excinfo:
            decoder.feed(huge_header)
        assert excinfo.value.code == "FRAME_TOO_LARGE"

    def test_malformed_json_body_poisons_decoder(self):
        body = b"this is not json"
        frame = HEADER.pack(len(body)) + body
        decoder = FrameDecoder()
        with pytest.raises(FrameError) as excinfo:
            decoder.feed(frame)
        assert excinfo.value.code == "BAD_FRAME"
        # Poisoned: even a valid frame is now refused.
        with pytest.raises(FrameError):
            decoder.feed(request_frame(1, "ping"))

    def test_non_object_body_is_refused(self):
        body = b"[1, 2, 3]"
        frame = HEADER.pack(len(body)) + body
        with pytest.raises(FrameError) as excinfo:
            FrameDecoder().feed(frame)
        assert excinfo.value.code == "BAD_FRAME"

    def test_encode_frame_enforces_the_ceiling(self):
        with pytest.raises(FrameError) as excinfo:
            encode_frame({"v": 1, "pad": "x" * (MAX_FRAME_BYTES + 1)})
        assert excinfo.value.code == "FRAME_TOO_LARGE"


class TestParseRequest:
    def frame_body(self, **overrides):
        body = {"v": PROTOCOL_VERSION, "id": 1, "action": "ping", "params": {}}
        body.update(overrides)
        return body

    def test_unknown_protocol_version(self):
        with pytest.raises(WireError) as excinfo:
            parse_request(self.frame_body(v=99))
        assert excinfo.value.code == "BAD_VERSION"

    def test_missing_version(self):
        body = self.frame_body()
        del body["v"]
        with pytest.raises(WireError) as excinfo:
            parse_request(body)
        assert excinfo.value.code == "BAD_VERSION"

    def test_non_integer_request_id(self):
        for bad in ("7", None, 1.5, True):
            with pytest.raises(WireError) as excinfo:
                parse_request(self.frame_body(id=bad))
            assert excinfo.value.code == "BAD_REQUEST"

    def test_unknown_action(self):
        with pytest.raises(WireError) as excinfo:
            parse_request(self.frame_body(action="explode"))
        assert excinfo.value.code == "BAD_REQUEST"

    def test_non_object_params(self):
        with pytest.raises(WireError) as excinfo:
            parse_request(self.frame_body(params=[1, 2]))
        assert excinfo.value.code == "BAD_REQUEST"

    def test_malformed_tagged_payload(self):
        # __fr__ must carry a [numerator, denominator] pair.
        bad = self.frame_body(params={"amount": {"__fr__": "not-a-pair"}})
        with pytest.raises(WireError) as excinfo:
            parse_request(bad)
        assert excinfo.value.code == "BAD_REQUEST"

    def test_error_code_vocabulary_is_closed(self):
        with pytest.raises(ValueError):
            WireError("NOT_A_CODE", "nope")
        with pytest.raises(ValueError):
            error_frame(1, "NOT_A_CODE")


class TestParseResponse:
    def test_success_and_error_shapes(self):
        ok, _ = split_frames(response_frame(3, {"answer": (1, 2)}))
        response = parse_response(ok[0])
        assert response.ok and response.id == 3
        assert response.result["answer"] == (1, 2)

        err, _ = split_frames(error_frame(4, "BUSY", "back off"))
        response = parse_response(err[0])
        assert not response.ok
        assert response.error_code == "BUSY"
        with pytest.raises(WireError) as excinfo:
            response.raise_for_error()
        assert excinfo.value.code == "BUSY"

    def test_malformed_error_body(self):
        with pytest.raises(WireError):
            parse_response({"v": PROTOCOL_VERSION, "id": 1, "ok": False})


# -- hypothesis round-trip properties ---------------------------------

#: JSON-codec-representable payload values: scalars, fractions, tuples,
#: frozensets, and nested dicts — everything the tagged codec preserves.
codec_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(10**9), max_value=10**9),
        st.text(max_size=20),
        st.fractions(max_denominator=10**6),
    ),
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=3).map(tuple),
        st.frozensets(
            st.integers(min_value=0, max_value=100), max_size=4
        ),
        st.dictionaries(st.text(max_size=8), children, max_size=3),
    ),
    max_leaves=12,
)

params_strategy = st.dictionaries(st.text(min_size=1, max_size=12), codec_values, max_size=4)


@given(
    request_id=st.integers(min_value=0, max_value=2**31),
    action=st.sampled_from(sorted(ACTIONS)),
    params=params_strategy,
)
@settings(max_examples=60, deadline=None)
def test_request_frame_round_trip(request_id, action, params):
    messages, leftover = split_frames(request_frame(request_id, action, params))
    assert leftover == 0
    request = parse_request(messages[0])
    assert request.id == request_id
    assert request.action == action
    assert dict(request.params) == params


@given(request_id=st.integers(min_value=0, max_value=2**31), result=params_strategy)
@settings(max_examples=60, deadline=None)
def test_response_frame_round_trip(request_id, result):
    messages, leftover = split_frames(response_frame(request_id, result))
    assert leftover == 0
    response = parse_response(messages[0])
    assert response.ok
    assert response.id == request_id
    assert dict(response.result) == result


@given(
    frames=st.lists(
        st.tuples(st.integers(min_value=0, max_value=999), params_strategy),
        min_size=1,
        max_size=6,
    ),
    chunk=st.integers(min_value=1, max_value=7),
)
@settings(max_examples=40, deadline=None)
def test_decoder_is_chunking_invariant(frames, chunk):
    """Any chunking of a frame stream decodes to the same messages."""
    blob = b"".join(
        request_frame(request_id, "invoke", params)
        for request_id, params in frames
    )
    decoder = FrameDecoder()
    messages = []
    for start in range(0, len(blob), chunk):
        messages.extend(decoder.feed(blob[start : start + chunk]))
    assert decoder.pending_bytes == 0
    assert len(messages) == len(frames)
    for body, (request_id, params) in zip(messages, frames):
        request = parse_request(body)
        assert request.id == request_id
        assert dict(request.params) == params


def test_fraction_survives_the_wire_exactly():
    params = {"amount": Fraction(355, 113), "batch": (Fraction(1, 3), "x")}
    messages, _ = split_frames(request_frame(1, "invoke", params))
    decoded = parse_request(messages[0]).params
    assert decoded["amount"] == Fraction(355, 113)
    assert isinstance(decoded["amount"], Fraction)
    assert decoded["batch"] == (Fraction(1, 3), "x")
