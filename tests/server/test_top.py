"""``render_top``: pure frame rendering from stats snapshots.

No sockets, no clocks — :func:`~repro.server.top.render_top` is a pure
function of (snapshot, previous, elapsed), which is the whole point of
splitting it from the polling loop.  The live loop is exercised end to
end in ``test_telemetry.py``.
"""

from repro.server import render_top


def snapshot(**overrides):
    base = {
        "status": "ok",
        "draining": False,
        "workers": 2,
        "connections": 3,
        "objects": 5,
        "uptime": 12.5,
        "queue_limit": 64,
        "queues": [1, 7],
        "server": {
            "requests": 100,
            "transactions_committed": 40,
            "transactions_aborted": 2,
            "busy": 1,
            "errors": 0,
        },
        "metrics": {
            "counters": {
                "lock.conflict[Enq/Deq]": 9.0,
                "lock.conflict[Credit/Debit]": 4.0,
                "txn.committed": 40.0,
            },
            "gauges": {},
            "histograms": {
                "server.client_wire": {
                    "boundaries": [0.001, 0.01, 0.1],
                    "counts": [10, 5, 1],
                    "total": 16,
                    "sum": 0.05,
                    "mean": 0.05 / 16,
                },
            },
        },
        "flight": {
            "dumps": 1,
            "last_reason": "busy",
            "last_path": "flight/flight-001-busy.jsonl",
            "retained": 512,
            "seen": 4000,
            "dropped_events": 3488,
        },
    }
    base.update(overrides)
    return base


class TestRenderTop:
    def test_first_frame_renders_no_rates(self):
        # A rate needs two snapshots: tick one must render an em dash,
        # never the lifetime totals mislabeled as per-second figures.
        frame = render_top(snapshot())
        assert "repro top — ok" in frame
        assert "workers=2" in frame and "up 12.5s" in frame
        assert "shard0:1 shard1:7" in frame
        assert "requests —" in frame
        assert "commits —" in frame
        assert "total" not in frame
        assert "/s" not in frame

    def test_second_frame_shows_rates(self):
        previous = snapshot()
        current = snapshot(
            server={
                "requests": 150,
                "transactions_committed": 60,
                "transactions_aborted": 2,
                "busy": 1,
                "errors": 0,
            }
        )
        frame = render_top(current, previous=previous, elapsed=2.0)
        assert "requests 25.0/s" in frame
        assert "commits 10.0/s" in frame
        assert "aborts 0.0/s" in frame

    def test_latency_quantiles_come_from_histogram_buckets(self):
        frame = render_top(snapshot())
        assert "latency client->server:" in frame
        assert "n=16" in frame
        # 16 samples, 10 in the first bucket: p50 interpolates inside
        # (0, 0.001] so the row must render sub-millisecond.
        assert "p50 0." in frame

    def test_hottest_conflicts_are_sorted_and_trimmed(self):
        frame = render_top(snapshot())
        line = next(
            l for l in frame.splitlines() if l.startswith("hottest conflicts")
        )
        assert line.index("Enq/Deq=9") < line.index("Credit/Debit=4")

    def test_flight_status_line(self):
        frame = render_top(snapshot())
        assert "flight: 1 dump(s) (last: busy)" in frame
        assert "3488 beyond window" in frame

    def test_degrades_without_metrics_or_flight(self):
        bare = snapshot()
        del bare["metrics"], bare["flight"]
        frame = render_top(bare)
        assert "repro top — ok" in frame
        assert "latency" not in frame
        assert "flight:" not in frame

    def test_draining_status_is_visible(self):
        frame = render_top(snapshot(status="draining", draining=True))
        assert "repro top — draining" in frame

    def test_critical_path_names_the_dominant_phase(self):
        # Only one phase histogram is populated, so it must be the one
        # named as gating the tail.
        frame = render_top(snapshot())
        assert "critical path: client->server gates the tail" in frame

    def test_contention_deltas_need_two_snapshots(self):
        counters = {
            "lock.blocked_time": 0.25,
            "lock.blocked_time[Debit × Debit]": 0.2,
            "lock.blocked_time[Enq × Deq]": 0.05,
        }
        current = snapshot()
        current["metrics"]["counters"].update(counters)
        assert "contention" not in render_top(current)
        previous = snapshot()
        previous["metrics"]["counters"]["lock.blocked_time[Debit × Debit]"] = 0.1
        frame = render_top(current, previous=previous, elapsed=1.0)
        line = next(
            l for l in frame.splitlines() if l.startswith("contention")
        )
        # Delta for Debit × Debit is 100ms; Enq × Deq's 50ms is all new.
        assert "Debit × Debit=100.00ms" in line
        assert line.index("Debit × Debit") < line.index("Enq × Deq")
