"""The asyncio serving tier end-to-end: sessions, backpressure, drain.

Each test boots a real server on an ephemeral localhost port and talks
to it over real sockets.  No pytest-asyncio: tests drive their own
``asyncio.run``.
"""

import asyncio

import pytest

from repro.obs import AtomicityChecker, JSONLSink, TraceBus, read_jsonl
from repro.obs.registry import MetricsRegistry, RegistrySink
from repro.server import (
    AsyncClient,
    ReproServer,
    Session,
    SessionError,
    ShardedTimestampGenerator,
    WireError,
    shard_for,
)


def run(coroutine):
    return asyncio.run(coroutine)


async def start_server(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("drain_grace", 1.0)
    server = ReproServer(**kwargs)
    await server.start()
    return server


class TestSessionUnit:
    def test_handles_are_globally_unique_per_session(self):
        first, second = Session(1), Session(2)
        assert first.mint_handle() == "s1.t1"
        assert first.mint_handle() == "s1.t2"
        assert second.mint_handle() == "s2.t1"

    def test_lookup_of_unknown_handle_raises(self):
        session = Session(1)
        with pytest.raises(SessionError):
            session.lookup("s1.t99")

    def test_ack_cache_is_bounded_fifo(self):
        session = Session(1, ack_capacity=2)
        for request_id in (1, 2, 3):
            session.record_ack(request_id, {"n": request_id})
        assert session.cached_ack(1) is None          # retired FIFO
        assert session.cached_ack(2) == {"n": 2}
        assert session.cached_ack(3) == {"n": 3}


class TestShardedTimestamps:
    def test_residues_partition_the_integers(self):
        shards = [ShardedTimestampGenerator(i, 3) for i in range(3)]
        issued = [
            shard.commit_timestamp(f"t{n}")
            for n in range(5)
            for shard in shards
        ]
        assert len(set(issued)) == len(issued)        # globally unique
        for index, shard in enumerate(shards):
            assert all(
                ts % 3 == index
                for ts in issued[index::3]
            )

    def test_monotone_and_above_observed_bound(self):
        generator = ShardedTimestampGenerator(1, 4)
        first = generator.commit_timestamp("a")
        generator.observe("b", 1000)
        second = generator.commit_timestamp("b")
        assert second > 1000 and second % 4 == 1
        assert second > first
        generator.forget("b")
        assert generator.commit_timestamp("c") > second


class TestRoundTrip:
    def test_begin_invoke_commit_and_certified_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"

        async def scenario():
            bus = TraceBus()
            sink = bus.subscribe(JSONLSink(str(trace)))
            server = await start_server(tracer=bus, flush_on_drain=[sink])
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            assert await client.invoke(handle, "A", "Credit", 5) == "Ok"
            timestamp, _ = await client.commit(handle)
            assert timestamp == 1
            await client.aclose()
            await server.drain()

        run(scenario())
        checker = AtomicityChecker()
        checker.replay(read_jsonl(str(trace)))
        report = checker.report()
        assert report["ok"]
        assert report["transactions"]["committed"] == 1
        kinds = {event.kind for event in read_jsonl(str(trace))}
        assert {"server.connect", "server.disconnect", "server.request",
                "server.drain"} <= kinds

    def test_registry_grows_server_counters(self):
        async def scenario():
            bus = TraceBus()
            registry = MetricsRegistry()
            bus.subscribe(RegistrySink(registry))
            server = await start_server(tracer=bus)
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            await client.invoke(handle, "A", "Credit", 1)
            await client.commit(handle)
            await client.aclose()
            await server.drain()
            return registry

        registry = run(scenario())
        counters = registry.snapshot()["counters"]
        assert counters["server.connections_opened"] == 1
        assert counters["server.connections_closed"] == 1
        assert counters["server.requests"] >= 2       # invoke + commit
        assert counters["server.request[invoke]"] == 1
        assert counters["server.drains"] == 1


class TestTypedErrors:
    def test_unknown_object_and_unknown_txn(self):
        async def scenario():
            server = await start_server()
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            with pytest.raises(WireError) as excinfo:
                await client.invoke(handle, "nope", "Credit", 1)
            assert excinfo.value.code == "UNKNOWN_OBJECT"
            with pytest.raises(WireError) as excinfo:
                await client.invoke("s9.t9", "A", "Credit", 1)
            assert excinfo.value.code == "UNKNOWN_TXN"
            # The connection survived both errors.
            assert (await client.ping())["workers"] == 1
            await client.aclose()
            await server.drain()

        run(scenario())

    def test_malformed_tagged_payload_answers_bad_request(self):
        async def scenario():
            server = await start_server()
            client = await AsyncClient.connect(server.host, server.port)
            # Hand-build a frame whose params carry a broken __fr__ tag;
            # the client-side encoder would never produce this.
            from repro.server.protocol import encode_frame

            client._writer.write(
                encode_frame(
                    {
                        "v": 1,
                        "id": 41,
                        "action": "invoke",
                        "params": {"amount": {"__fr__": "broken"}},
                    }
                )
            )
            await client._writer.drain()
            response = await client.call("ping")      # loop still alive
            assert response.ok
            await client.aclose()
            await server.drain()

        run(scenario())

    def test_kernel_typeerror_answers_internal_and_worker_survives(self):
        # A malformed argument (a list where Account's Credit expects a
        # number) raises a plain TypeError inside the ADT spec.  The
        # worker must answer a typed INTERNAL error and keep serving —
        # before the catch-all in ``_execute`` this killed the shard's
        # worker task, stranding every queued request and hanging drain.
        async def scenario():
            server = await start_server()
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            with pytest.raises(WireError) as excinfo:
                await client.invoke(handle, "A", "Credit", [25])
            assert excinfo.value.code == "INTERNAL"
            assert "TypeError" in excinfo.value.message
            assert server.stats["errors"] == 1
            # The same worker still executes fresh work after the blast.
            fresh = await client.begin()
            assert await client.invoke(fresh, "A", "Credit", 5) == "Ok"
            await client.commit(fresh)
            await client.aclose()
            await server.drain()          # must not hang

        run(scenario())

    def test_oversized_frame_gets_typed_error_then_close(self):
        async def scenario():
            server = await start_server(max_frame_bytes=128)
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            from repro.server.protocol import HEADER, FrameDecoder

            writer.write(HEADER.pack(1 << 29))
            await writer.drain()
            data = await reader.read(65536)
            decoder = FrameDecoder()
            [body] = decoder.feed(data)
            assert body["ok"] is False
            assert body["error"]["code"] == "FRAME_TOO_LARGE"
            assert await reader.read(65536) == b""    # server closed
            writer.close()
            # The event loop survived: a fresh connection still works.
            client = await AsyncClient.connect(server.host, server.port)
            assert (await client.ping())["draining"] is False
            await client.aclose()
            await server.drain()

        run(scenario())

    def test_bad_version_is_refused(self):
        async def scenario():
            server = await start_server()
            client = await AsyncClient.connect(server.host, server.port)
            from repro.server.protocol import encode_frame

            client._writer.write(
                encode_frame({"v": 99, "id": 1, "action": "ping"})
            )
            await client._writer.drain()
            future = asyncio.get_event_loop().create_future()
            client._futures[1] = future
            response = await future
            assert response.error_code == "BAD_VERSION"
            await client.aclose()
            await server.drain()

        run(scenario())


class TestBackpressure:
    def test_queue_at_high_water_answers_busy(self):
        async def scenario():
            bus = TraceBus()
            registry = MetricsRegistry()
            bus.subscribe(RegistrySink(registry))
            # queue_limit=0: every routed request is beyond high water.
            server = await start_server(queue_limit=0, tracer=bus)
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()              # inline: unaffected
            with pytest.raises(WireError) as excinfo:
                await client.invoke(handle, "A", "Credit", 1)
            assert excinfo.value.code == "BUSY"
            assert server.stats["busy"] == 1
            assert registry.snapshot()["counters"]["server.busy"] == 1
            await client.aclose()
            await server.drain()

        run(scenario())


class TestIdempotentAcks:
    def test_commit_ack_replays_for_same_request_id(self):
        async def scenario():
            server = await start_server()
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            await client.invoke(handle, "A", "Credit", 1)
            timestamp, response = await client.commit(handle)
            # Retransmit with the SAME request id: the cached decision
            # replays byte-for-byte.
            replay = await client.call(
                "commit", {"transaction": handle}, response.id
            )
            assert replay.ok
            assert replay.result == dict(response.result)
            # A NEW request id is not a retry: the handle is gone.
            with pytest.raises(WireError) as excinfo:
                await client.commit(handle)
            assert excinfo.value.code == "UNKNOWN_TXN"
            # Exactly one commit reached the manager.
            assert server.stats["transactions_committed"] == 1
            await client.aclose()
            await server.drain()

        run(scenario())

    def test_abort_ack_is_idempotent_too(self):
        async def scenario():
            server = await start_server()
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            await client.invoke(handle, "A", "Credit", 1)
            request_id = client.next_id()
            await client.abort(handle, request_id)
            await client.abort(handle, request_id)     # replayed, no error
            assert server.stats["transactions_aborted"] == 1
            await client.aclose()
            await server.drain()

        run(scenario())


class TestSharding:
    @staticmethod
    def two_objects_on_different_shards(workers=2):
        names = iter(f"obj-{i}" for i in range(1000))
        first = next(names)
        for candidate in names:
            if shard_for(candidate, workers) != shard_for(first, workers):
                return first, candidate
        raise AssertionError("no shard split found")

    def test_cross_shard_touch_is_refused(self):
        first, second = self.two_objects_on_different_shards()

        async def scenario():
            server = await start_server(workers=2)
            server.create_object(first, "Account")
            server.create_object(second, "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            await client.invoke(handle, first, "Credit", 1)
            with pytest.raises(WireError) as excinfo:
                await client.invoke(handle, second, "Credit", 1)
            assert excinfo.value.code == "CROSS_SHARD"
            # The transaction is still alive on its own shard.
            await client.invoke(handle, first, "Credit", 1)
            timestamp, _ = await client.commit(handle)
            assert timestamp is not None
            await client.aclose()
            await server.drain()

        run(scenario())

    def test_commit_timestamps_stay_unique_across_shards(self):
        first, second = self.two_objects_on_different_shards()

        async def scenario():
            server = await start_server(workers=2)
            server.create_object(first, "Account")
            server.create_object(second, "Account")
            client = await AsyncClient.connect(server.host, server.port)
            timestamps = []
            for obj in (first, second, first, second):
                handle = await client.begin()
                await client.invoke(handle, obj, "Credit", 1)
                timestamp, _ = await client.commit(handle)
                timestamps.append(timestamp)
            assert len(set(timestamps)) == len(timestamps)
            await client.aclose()
            await server.drain()

        run(scenario())


class TestDisconnect:
    def test_vanishing_client_gets_its_transactions_aborted(self):
        async def scenario():
            bus = TraceBus()
            server = await start_server(tracer=bus)
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            await client.invoke(handle, "A", "Credit", 1)
            await client.aclose()                      # vanish mid-txn
            for _ in range(100):
                if server.stats["transactions_aborted"]:
                    break
                await asyncio.sleep(0.01)
            assert server.stats["transactions_aborted"] == 1
            # The abort released the lock: a new client can commit.
            fresh = await AsyncClient.connect(server.host, server.port)
            handle = await fresh.begin()
            await fresh.invoke(handle, "A", "Credit", 1)
            await fresh.commit(handle)
            await fresh.aclose()
            await server.drain()

        run(scenario())


class TestGracefulDrain:
    def test_in_flight_transaction_commits_during_grace(self, tmp_path):
        trace = tmp_path / "drain.jsonl"

        async def scenario():
            bus = TraceBus()
            sink = bus.subscribe(JSONLSink(str(trace)))
            server = await start_server(
                tracer=bus, drain_grace=2.0, flush_on_drain=[sink]
            )
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            await client.invoke(handle, "A", "Credit", 1)

            drain_task = asyncio.ensure_future(server.drain())
            await asyncio.sleep(0.05)
            assert server.draining
            # New transactions are refused while draining...
            with pytest.raises(WireError) as excinfo:
                await client.begin()
            assert excinfo.value.code == "SHUTTING_DOWN"
            # ...but the in-flight one finishes cleanly.
            timestamp, _ = await client.commit(handle)
            assert timestamp == 1
            report = await drain_task
            assert report["aborted"] == 0
            assert server.stats["transactions_committed"] == 1
            await client.aclose()

        run(scenario())
        events = read_jsonl(str(trace))
        kinds = [event.kind for event in events]
        assert "server.drain" in kinds                 # flushed to disk
        checker = AtomicityChecker()
        checker.replay(events)
        assert checker.report()["ok"]

    def test_stragglers_are_force_aborted_after_grace(self):
        async def scenario():
            server = await start_server(drain_grace=0.05)
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            await client.invoke(handle, "A", "Credit", 1)
            report = await server.drain()              # client never commits
            assert report["aborted"] == 1
            await client.aclose()

        run(scenario())

    def test_listener_closes_but_admitted_work_is_answered(self):
        async def scenario():
            server = await start_server(drain_grace=0.2)
            server.create_object("A", "Account")
            client = await AsyncClient.connect(server.host, server.port)
            handle = await client.begin()
            await client.invoke(handle, "A", "Credit", 1)
            drain_task = asyncio.ensure_future(server.drain())
            await asyncio.sleep(0.02)
            # No NEW connections once draining...
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.open_connection(server.host, server.port)
            # ...while the existing session still gets answers.
            await client.commit(handle)
            await drain_task
            await client.aclose()

        run(scenario())
