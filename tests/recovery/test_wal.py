"""Write-ahead log: encoding round-trips, checksums, torn writes, backends."""

import json
from fractions import Fraction

import pytest

from repro.core import Invocation, Operation
from repro.core.compaction import NEG_INFINITY
from repro.recovery import (
    FileWAL,
    MemoryWAL,
    WalCorruption,
    abort_record,
    commit_record,
    create_record,
    decode_operation,
    decode_states,
    decode_value,
    encode_operation,
    encode_states,
    encode_value,
    invoke_record,
    meta_record,
    prepare_record,
    respond_record,
)


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            42,
            -3,
            1.5,
            "hello",
            (1, "T1"),
            (1, (2, 3)),
            [1, 2, [3]],
            frozenset({1, 2}),
            frozenset({(1, 2), (3, 4)}),
            {1, 2},
            Fraction(7, 3),
            NEG_INFINITY,
            ((), (1,), frozenset()),
        ],
    )
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_tuple_vs_list_distinguished(self):
        assert decode_value(encode_value((1, 2))) == (1, 2)
        assert decode_value(encode_value([1, 2])) == [1, 2]
        assert decode_value(encode_value((1, 2))) != [1, 2]

    def test_neg_infinity_identity(self):
        assert decode_value(encode_value(NEG_INFINITY)) is NEG_INFINITY

    def test_unencodable_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(WalCorruption):
            decode_value({"__mystery__": 1})

    def test_operation_roundtrip(self):
        op = Operation(Invocation("Debit", (5,)), "Ok")
        assert decode_operation(encode_operation(op)) == op

    def test_states_roundtrip(self):
        states = frozenset({Fraction(10), Fraction(3, 2)})
        assert decode_states(encode_states(states)) == states

    def test_encoding_is_json_safe(self):
        record = commit_record(
            "T1",
            (3, "T1"),
            {"A": [Operation(Invocation("Credit", (5,)), "Ok")]},
        )
        assert json.loads(json.dumps(record)) == record


class TestRecords:
    def test_record_kinds(self):
        ops = {"A": [Operation(Invocation("Credit", (1,)), "Ok")]}
        assert meta_record("site", "S0")["kind"] == "meta"
        assert create_record("A", "Account", "hybrid", frozenset({0}))["kind"] == "create"
        assert invoke_record("T1", "A", Invocation("Credit", (1,)))["kind"] == "invoke"
        assert respond_record("T1", "A", "Ok")["kind"] == "respond"
        assert prepare_record("T1", 4, ops)["kind"] == "prepare"
        assert commit_record("T1", (5, "T1"), ops)["kind"] == "commit"
        assert abort_record("T1")["kind"] == "abort"


def fill(wal, n=5):
    for i in range(n):
        wal.append(invoke_record(f"T{i}", "A", Invocation("Credit", (i,))))


class TestMemoryWAL:
    def test_append_and_read_back(self):
        wal = MemoryWAL()
        fill(wal, 4)
        records = wal.records()
        assert len(records) == len(wal) == 4
        assert [r["txn"] for r in records] == ["T0", "T1", "T2", "T3"]

    def test_torn_final_line_dropped(self):
        wal = MemoryWAL()
        fill(wal, 3)
        wal._store[-1] = wal._store[-1][: len(wal._store[-1]) // 2]
        assert len(wal.records()) == 2

    def test_mid_log_corruption_raises(self):
        wal = MemoryWAL()
        fill(wal, 3)
        line = json.loads(wal._store[1])
        line["rec"]["txn"] = "tampered"
        wal._store[1] = json.dumps(line)
        with pytest.raises(WalCorruption):
            wal.records()

    def test_sequence_gap_raises(self):
        wal = MemoryWAL()
        fill(wal, 4)
        del wal._store[1]  # the gap is not at the tail: must raise
        with pytest.raises(WalCorruption):
            wal.records()

    def test_rewrite_renumbers(self):
        wal = MemoryWAL()
        fill(wal, 5)
        kept = wal.records()[::2]
        wal.rewrite(kept)
        assert wal.records() == kept


class TestFileWAL:
    def test_persists_across_instances(self, tmp_path):
        wal = FileWAL(tmp_path)
        fill(wal, 3)
        reopened = FileWAL(tmp_path)
        assert len(reopened) == 3
        assert reopened.records() == wal.records()

    def test_append_after_reopen_continues_sequence(self, tmp_path):
        fill(FileWAL(tmp_path), 2)
        reopened = FileWAL(tmp_path)
        fill(reopened, 1)
        assert len(FileWAL(tmp_path).records()) == 3

    def test_torn_tail_tolerated(self, tmp_path):
        wal = FileWAL(tmp_path)
        fill(wal, 3)
        text = wal.path.read_text()
        wal.path.write_text(text[: len(text) - 20])
        assert len(FileWAL(tmp_path).records()) == 2

    def test_rewrite_is_atomic_replacement(self, tmp_path):
        wal = FileWAL(tmp_path)
        fill(wal, 6)
        wal.rewrite(wal.records()[:2])
        assert len(FileWAL(tmp_path).records()) == 2
        assert not wal.path.with_suffix(".tmp").exists()
