"""Checkpoints: the version timestamp fence, stores, and WAL truncation."""

import pytest

from repro.adts import ACCOUNT_CONFLICT, AccountSpec, make_account_adt
from repro.core import CompactingLockMachine, Invocation, NEG_INFINITY
from repro.core.errors import ProtocolError
from repro.recovery import (
    Checkpoint,
    FileCheckpointStore,
    MemoryCheckpointStore,
    MemoryWAL,
    commit_record,
    invoke_record,
    meta_record,
    recover_machines,
    take_checkpoint,
    truncate_wal,
)


def account_machine():
    return CompactingLockMachine(AccountSpec(), ACCOUNT_CONFLICT, obj="A")


def commit_one(machine, txn, amount, ts):
    machine.execute(txn, Invocation("Credit", (amount,)))
    machine.commit(txn, ts)


class TestVersionTimestamp:
    def test_starts_at_neg_infinity(self):
        assert account_machine().version_timestamp is NEG_INFINITY

    def test_tracks_largest_folded_commit(self):
        machine = account_machine()
        commit_one(machine, "P", 5, 3)
        commit_one(machine, "Q", 7, 8)
        machine.forget()
        assert machine.version_timestamp == 8

    def test_fence_survives_horizon_regression(self):
        # After a full fold the *horizon* regresses to -inf (no committed,
        # no active transactions), but the fence must not: replaying an
        # already-folded commit would double-apply it.
        machine = account_machine()
        commit_one(machine, "P", 5, 3)
        machine.forget()
        assert machine.horizon() is NEG_INFINITY
        assert machine.version_timestamp == 3

    def test_export_restore_roundtrip(self):
        machine = account_machine()
        commit_one(machine, "P", 5, 3)
        machine.forget()
        fence, clock, version = machine.export_version()
        fresh = account_machine()
        fresh.restore_version(version, clock, fence)
        assert fresh.version_states == version
        assert fresh.version_timestamp == fence
        assert fresh.clock == clock

    def test_restore_rejects_used_machine(self):
        machine = account_machine()
        machine.execute("P", Invocation("Credit", (1,)))
        with pytest.raises(ProtocolError):
            machine.restore_version(frozenset({0}))

    def test_restore_rejects_empty_version(self):
        with pytest.raises(ValueError):
            account_machine().restore_version(frozenset())


class TestTakeCheckpoint:
    def test_folds_then_snapshots(self):
        machine = account_machine()
        commit_one(machine, "P", 5, 3)
        checkpoint = take_checkpoint({"A": machine}, site_clock=9, taken_at=1.5)
        assert checkpoint.fence("A") == 3
        assert checkpoint.site_clock == 9
        assert checkpoint.objects["A"].version == machine.version_states

    def test_fence_defaults_to_neg_infinity(self):
        checkpoint = take_checkpoint({})
        assert checkpoint.fence("missing") is NEG_INFINITY

    def test_active_transactions_stay_out_of_the_version(self):
        machine = account_machine()
        commit_one(machine, "P", 5, 3)
        machine.execute("Q", Invocation("Credit", (100,)))  # active
        checkpoint = take_checkpoint({"A": machine})
        states = checkpoint.objects["A"].version
        assert AccountSpec().run_from(states, ()) == states
        assert machine.intentions("Q")  # Q's intentions survive, unfolded


class TestStores:
    def make_checkpoint(self):
        machine = account_machine()
        commit_one(machine, "P", 5, 3)
        return take_checkpoint({"A": machine}, site_clock=4)

    def test_memory_roundtrip(self):
        store = MemoryCheckpointStore()
        assert store.load() is None
        checkpoint = self.make_checkpoint()
        store.save(checkpoint)
        loaded = store.load()
        assert loaded.fence("A") == checkpoint.fence("A")
        assert loaded.objects["A"].version == checkpoint.objects["A"].version
        assert loaded.site_clock == 4

    def test_file_roundtrip(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        assert store.load() is None
        checkpoint = self.make_checkpoint()
        store.save(checkpoint)
        loaded = FileCheckpointStore(tmp_path).load()
        assert loaded.fence("A") == 3
        assert loaded.objects["A"].version == checkpoint.objects["A"].version

    def test_latest_supersedes(self):
        store = MemoryCheckpointStore()
        store.save(self.make_checkpoint())
        store.save(Checkpoint(site_clock=99))
        assert store.load().site_clock == 99


class TestTruncation:
    def build_log(self):
        wal = MemoryWAL()
        wal.append(meta_record("manager", "manager"))
        adt = make_account_adt()
        from repro.recovery import create_record

        wal.append(create_record("A", "Account", "hybrid", adt.spec.initial_states()))
        machine = CompactingLockMachine(adt.spec, adt.conflict, obj="A")
        for i, txn in enumerate(["T1", "T2", "T3"], start=1):
            machine.execute(txn, Invocation("Credit", (i,)))
            wal.append(invoke_record(txn, "A", Invocation("Credit", (i,))))
            wal.append(
                commit_record(txn, i, {"A": machine.intentions(txn)})
            )
            machine.commit(txn, i)
        return wal, machine

    def test_folded_commits_are_dropped(self):
        wal, machine = self.build_log()
        before = len(wal)
        machine.forget()  # everything folds: no active, all committed <= max
        dropped = truncate_wal(wal, {"A": machine})
        assert dropped == before - 2  # meta + create stay
        kinds = [r["kind"] for r in wal.records()]
        assert kinds == ["meta", "create"]

    def test_live_transactions_are_kept(self):
        wal, machine = self.build_log()
        machine.execute("T4", Invocation("Credit", (50,)))  # active
        wal.append(invoke_record("T4", "A", Invocation("Credit", (50,))))
        machine.execute("T5", Invocation("Credit", (2,)))  # bound = 3
        wal.append(invoke_record("T5", "A", Invocation("Credit", (2,))))
        machine.commit("T4", 9)  # above T5's bound: stays retained
        wal.append(commit_record("T4", 9, {"A": machine.intentions("T4")}))
        machine.forget()
        truncate_wal(wal, {"A": machine})
        txns = {r.get("txn") for r in wal.records()}
        # T4 (committed at the horizon, retained) and T5 (active) stay;
        # the folded T1..T3 are dropped.
        assert "T4" in txns and "T5" in txns
        assert txns & {"T1", "T2", "T3"} == set()

    def test_extra_live_protects_prepared(self):
        wal, machine = self.build_log()
        machine.forget()
        truncate_wal(wal, {"A": machine}, extra_live={"T2"})
        txns = {r.get("txn") for r in wal.records()}
        assert "T2" in txns and "T1" not in txns

    def test_truncated_log_plus_checkpoint_still_recovers(self):
        wal, machine = self.build_log()
        checkpoint = take_checkpoint({"A": machine})
        truncate_wal(wal, {"A": machine})
        machines, _, _, report = recover_machines(
            wal.records(), checkpoint=checkpoint
        )
        spec = AccountSpec()
        recovered = machines["A"]
        assert spec.run_from(
            recovered.version_states, recovered.committed_state()
        ) == spec.run_from(machine.version_states, machine.committed_state())
        assert report.replayed_records == 0  # checkpoint held everything
