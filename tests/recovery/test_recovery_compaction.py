"""Recovery must hand back a *compacted* machine.

Replay reinstalls committed intentions one transaction at a time, so a
recovered :class:`~repro.core.compaction.CompactingLockMachine` would
retain every replayed intentions list if the driver never folded — a
recovered site would pay unbounded memory for exactly the history whose
cost Section 6's bookkeeping bounds.  ``recover_machines`` therefore runs
``forget()`` once per machine after the replay is complete (folding
mid-replay would be unsound: prepared transactions' bounds are not
installed until the end).  These tests pin that behaviour by comparing a
crash-recovered machine against a never-crashed peer that executed the
same workload.
"""

from repro.adts import make_account_adt, make_queue_adt
from repro.core import Invocation
from repro.distributed import Site
from repro.recovery import MemoryWAL, recover_manager
from repro.runtime import TransactionManager


def compacting_manager():
    manager = TransactionManager(wal=MemoryWAL(), compacting=True)
    manager.create_object("A", make_account_adt(initial=100))
    manager.create_object("Q", make_queue_adt())
    return manager


def assert_same_compaction(recovered, peer):
    assert recovered.retained_intentions() == peer.retained_intentions()
    assert recovered.version_states == peer.version_states
    assert recovered.version_timestamp == peer.version_timestamp
    assert recovered.committed_transactions == peer.committed_transactions
    assert recovered.forgotten_transactions == peer.forgotten_transactions


class TestManagerRecoveryCompaction:
    def run_workload(self, manager):
        for i in range(3):
            txn = manager.begin()
            manager.invoke(txn, "A", "Credit", 10 + i)
            manager.invoke(txn, "Q", "Enq", i)
            manager.commit(txn)
        # One transaction is still in flight at crash time.
        active = manager.begin()
        manager.invoke(active, "A", "Debit", 1)
        return active

    def test_recovered_machines_match_never_crashed_peer(self):
        manager, peer = compacting_manager(), compacting_manager()
        self.run_workload(manager)
        peer_active = self.run_workload(peer)
        recovered, report = recover_manager(manager.wal)
        # The crash presumes the in-flight transaction aborted; the peer
        # must agree before the comparison is fair.
        assert peer_active.name in report.discarded_transactions
        peer.abort(peer_active)
        for name, obj in recovered.objects.items():
            assert_same_compaction(obj.machine, peer.objects[name].machine)

    def test_recovered_machines_are_fully_folded(self):
        manager = compacting_manager()
        self.run_workload(manager)
        recovered, _ = recover_manager(manager.wal)
        for obj in recovered.objects.values():
            # Nothing active survives the crash, so the horizon reaches
            # the largest replayed commit timestamp and everything folds.
            assert obj.machine.retained_intentions() == 0
            assert obj.machine.forgotten_transactions != ()


class TestSiteRecoveryCompaction:
    """The prepared-survivor path: an in-doubt transaction's replayed
    intentions must be retained (its verdict is still owed) while the
    committed prefix below its bound still folds."""

    def build_and_run(self, site):
        site.handle_invoke("T1", "A", Invocation("Credit", (5,)))
        site.handle_prepare("T1")
        site.handle_commit("T1", (3, "T1"))
        # T2 executes after T1's commit, so its bound rides above it;
        # it prepares but never learns its verdict.
        site.handle_invoke("T2", "A", Invocation("Debit", (2,)))
        site.handle_prepare("T2")

    def test_prepared_survivor_retained_but_prefix_folds(self):
        site = Site("S0", wal=MemoryWAL())
        site.create_object("A", make_account_adt(initial=100))
        peer = Site("S1", wal=MemoryWAL())
        peer.create_object("A", make_account_adt(initial=100))
        self.build_and_run(site)
        self.build_and_run(peer)
        site.crash_hard()
        report = site.recover()
        assert report.prepared_transactions == ("T2",)
        recovered_machine = site._machines["A"]
        peer_machine = peer._machines["A"]
        assert_same_compaction(recovered_machine, peer_machine)
        # T1 folded into the version, T2's single operation retained.
        assert recovered_machine.forgotten_transactions == ("T1",)
        assert recovered_machine.retained_intentions() == len(
            recovered_machine.intentions("T2")
        ) == 1
        # The verdict can still land, and the machine folds it in turn.
        assert site.handle_commit("T2", (7, "T2")) is True
        assert recovered_machine.retained_intentions() == 0
