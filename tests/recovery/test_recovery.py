"""Recovery drivers: manager rebuild, in-place site rebuild, 2PC edges."""

import pytest

from repro.adts import make_account_adt, make_queue_adt
from repro.core import Invocation
from repro.distributed import Site
from repro.recovery import (
    FileCheckpointStore,
    FileWAL,
    MemoryCheckpointStore,
    MemoryWAL,
    RecoveryError,
    committed_state_sets,
    recover_manager,
    verify_recovery,
)
from repro.runtime import TransactionManager


def manager_with_wal(wal=None, compacting=True):
    manager = TransactionManager(wal=wal if wal is not None else MemoryWAL(), compacting=compacting)
    manager.create_object("A", make_account_adt(initial=100))
    manager.create_object("Q", make_queue_adt())
    return manager


def machines_of(manager):
    return {name: m.machine for name, m in manager.objects.items()}


class TestManagerRecovery:
    def run_some(self, manager, commits=3):
        for i in range(commits):
            txn = manager.begin()
            manager.invoke(txn, "A", "Credit", 10 + i)
            manager.invoke(txn, "Q", "Enq", i)
            manager.commit(txn)
        aborted = manager.begin()
        manager.invoke(aborted, "A", "Debit", 1)
        manager.abort(aborted)

    def test_recovered_state_matches(self):
        manager = manager_with_wal()
        self.run_some(manager)
        expected = committed_state_sets(machines_of(manager))
        recovered, report = recover_manager(manager.wal)
        verify_recovery(expected, machines_of(recovered))
        assert set(report.recovered_objects) == {"A", "Q"}
        assert report.replayed_records > 0

    def test_uncommitted_intentions_presumed_aborted(self):
        manager = manager_with_wal()
        txn = manager.begin()
        manager.invoke(txn, "A", "Credit", 500)  # never commits
        expected = committed_state_sets(machines_of(manager))
        recovered, report = recover_manager(manager.wal)
        assert txn.name in report.discarded_transactions
        verify_recovery(expected, machines_of(recovered))

    def test_recovered_manager_keeps_working(self):
        manager = manager_with_wal()
        self.run_some(manager)
        recovered, _ = recover_manager(manager.wal)
        txn = recovered.begin()
        # Fresh names must not collide with replayed ones.
        assert txn.name not in {r["txn"] for r in manager.wal.records() if "txn" in r}
        recovered.invoke(txn, "A", "Credit", 1)
        timestamp = recovered.commit(txn)
        replayed = [
            r for r in manager.wal.records() if r["kind"] == "commit"
        ]
        # New commits serialize after everything recovered (Section 3.3).
        import json

        from repro.recovery import decode_value

        old = max(decode_value(r["ts"]) for r in replayed[:-1])
        assert timestamp > old

    def test_checkpoint_shortens_replay(self):
        manager = manager_with_wal()
        self.run_some(manager, commits=4)
        store = MemoryCheckpointStore()
        manager.checkpoint(store)
        log_after_checkpoint = len(manager.wal)
        self.run_some(manager, commits=2)
        expected = committed_state_sets(machines_of(manager))
        recovered, report = recover_manager(manager.wal, store=store)
        verify_recovery(expected, machines_of(recovered))
        assert report.from_checkpoint
        assert report.scanned_records < 40  # prefix was truncated

    def test_plain_machines_recover_too(self):
        manager = manager_with_wal(compacting=False)
        self.run_some(manager)
        expected = committed_state_sets(machines_of(manager))
        recovered, _ = recover_manager(manager.wal)
        assert not recovered._compacting
        verify_recovery(expected, machines_of(recovered))

    def test_file_backed_end_to_end(self, tmp_path):
        wal = FileWAL(tmp_path)
        manager = manager_with_wal(wal=wal)
        self.run_some(manager)
        store = FileCheckpointStore(tmp_path)
        manager.checkpoint(store)
        self.run_some(manager, commits=1)
        expected = committed_state_sets(machines_of(manager))
        # Recover from a cold re-open of the same directory.
        recovered, report = recover_manager(
            FileWAL(tmp_path), store=FileCheckpointStore(tmp_path)
        )
        verify_recovery(expected, machines_of(recovered))
        assert report.from_checkpoint

    def test_verify_recovery_catches_divergence(self):
        manager = manager_with_wal()
        self.run_some(manager)
        expected = committed_state_sets(machines_of(manager))
        recovered, _ = recover_manager(manager.wal)
        txn = recovered.begin()
        recovered.invoke(txn, "A", "Credit", 7)
        recovered.commit(txn)
        with pytest.raises(RecoveryError):
            verify_recovery(expected, machines_of(recovered))


def durable_site():
    site = Site("S0", wal=MemoryWAL())
    site.create_object("A", make_account_adt(initial=100))
    return site


class TestSiteRecovery:
    def test_crash_hard_loses_volatile_state(self):
        site = durable_site()
        site.handle_invoke("T1", "A", Invocation("Credit", (5,)))
        site.crash_hard()
        assert not site.alive
        assert site.handle_invoke("T1", "A", Invocation("Credit", (1,))) == ("down",)
        assert site.handle_prepare("T1") == ("down",)
        assert site.handle_commit("T1", (1, "T1")) is False
        assert site.handle_abort("T1") is False

    def test_committed_state_survives(self):
        site = durable_site()
        site.handle_invoke("T1", "A", Invocation("Credit", (5,)))
        site.handle_prepare("T1")
        site.handle_commit("T1", (3, "T1"))
        expected = committed_state_sets(site._machines)
        site.crash_hard()
        report = site.recover()
        verify_recovery(expected, site._machines)
        assert site.snapshot("A") == 105
        assert site.clock.now >= 3
        assert report.name == "S0"

    def test_unprepared_transaction_lost_and_tombstoned(self):
        site = durable_site()
        site.handle_invoke("T1", "A", Invocation("Credit", (5,)))
        site.crash_hard()
        site.recover()
        # Its volatile intentions are gone: the vote must be no, and the
        # lock it held must be free for others.
        assert site.handle_prepare("T1") == ("no",)
        assert site.handle_invoke("T2", "A", Invocation("Debit", (5,)))[0] == "ok"

    def test_prepared_transaction_survives_and_commits(self):
        site = durable_site()
        # A failed debit (Overdraft) holds a lock that excludes credits.
        reply = site.handle_invoke("T1", "A", Invocation("Debit", (500,)))
        assert reply[:2] == ("ok", "Overdraft")
        assert site.handle_prepare("T1")[0] == "yes"
        site.crash_hard()
        report = site.recover()
        assert report.prepared_transactions == ("T1",)
        assert "T1" in site._prepared
        # The re-derived lock still excludes conflicting operations.
        assert site.handle_invoke("T2", "A", Invocation("Credit", (5,))) == (
            "conflict",
        )
        # A repeated PREPARE (coordinator retry) still answers yes.
        assert site.handle_prepare("T1")[0] == "yes"
        # The verdict can finally land.
        assert site.handle_commit("T1", (5, "T1")) is True
        assert site.snapshot("A") == 100

    def test_prepared_transaction_survives_and_aborts(self):
        site = durable_site()
        site.handle_invoke("T1", "A", Invocation("Credit", (7,)))
        site.handle_prepare("T1")
        site.crash_hard()
        site.recover()
        assert site.handle_abort("T1") is True
        assert site.snapshot("A") == 100
        assert site.handle_invoke("T2", "A", Invocation("Debit", (1,)))[0] == "ok"

    def test_double_crash_recover(self):
        site = durable_site()
        site.handle_invoke("T1", "A", Invocation("Credit", (5,)))
        site.handle_prepare("T1")
        site.handle_commit("T1", (2, "T1"))
        site.crash_hard()
        site.recover()
        site.handle_invoke("T2", "A", Invocation("Credit", (6,)))
        site.handle_prepare("T2")
        site.handle_commit("T2", (4, "T2"))
        expected = committed_state_sets(site._machines)
        site.crash_hard()
        site.recover()
        verify_recovery(expected, site._machines)
        assert site.snapshot("A") == 111

    def test_checkpoint_then_recover(self):
        site = durable_site()
        site.handle_invoke("T1", "A", Invocation("Credit", (5,)))
        site.handle_commit("T1", (2, "T1"))
        store = MemoryCheckpointStore()
        site.checkpoint(store)
        site.handle_invoke("T2", "A", Invocation("Credit", (6,)))
        site.handle_commit("T2", (4, "T2"))
        expected = committed_state_sets(site._machines)
        site.crash_hard()
        report = site.recover(store=store)
        verify_recovery(expected, site._machines)
        assert report.from_checkpoint
        assert site.snapshot("A") == 111

    def test_recover_without_wal_rejected(self):
        site = Site("S0")
        site.create_object("A", make_account_adt())
        with pytest.raises(RecoveryError):
            site.recover()
