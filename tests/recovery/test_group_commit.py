"""Group commit and the durable-write contract: one fsync per batch,
crash windows that lose only unacknowledged records, and the stride
metadata that makes a shard's log safe to reopen.
"""

import os

import pytest

from repro.adts import make_account_adt
from repro.obs import AtomicityChecker, TraceBus
from repro.recovery import (
    FileWAL,
    GroupCommitWAL,
    RecoveryError,
    commit_record,
    meta_record,
    recover_manager,
)
from repro.runtime import TransactionManager
from repro.server import ShardedTimestampGenerator


def file_manager(wal, shard=0, shards=1, tracer=None):
    manager = TransactionManager(
        wal=wal,
        generator=ShardedTimestampGenerator(shard, shards),
        tracer=tracer,
        site=f"shard{shard}",
    )
    manager.create_object("A", make_account_adt(initial=100))
    return manager


class TestFileWalDurableWrites:
    """Satellite regression: FileWAL pays one fsync per durable write."""

    def test_one_fsync_per_append(self, tmp_path):
        wal = FileWAL(tmp_path)
        for index in range(5):
            wal.append({"kind": "meta", "n": index})
        assert wal.appends == 5
        assert wal.syncs == 5, "exactly one fsync per append, not several"

    def test_one_fsync_per_batch(self, tmp_path):
        wal = FileWAL(tmp_path)
        sequences = wal.append_batch([{"kind": "meta", "n": n} for n in range(8)])
        assert sequences == list(range(8))
        assert wal.appends == 8
        assert wal.syncs == 1, "a batch shares a single fsync"
        assert [r["n"] for r in wal.records()] == list(range(8))

    def test_append_handle_survives_reads(self, tmp_path):
        # The historical bug was open/flush/fsync/close per record; the
        # persistent handle must keep appending correctly even when a
        # read (which walks the file separately) happens in between.
        wal = FileWAL(tmp_path)
        wal.append({"kind": "meta", "n": 0})
        assert len(wal.records()) == 1
        wal.append({"kind": "meta", "n": 1})
        assert [r["n"] for r in wal.records()] == [0, 1]
        assert wal.syncs == 2


class TestGroupCommitWindow:
    def test_staged_records_are_not_durable_until_flush(self, tmp_path):
        base = FileWAL(tmp_path)
        wal = GroupCommitWAL(base, max_batch=64)
        wal.append({"kind": "meta", "n": 0})
        wal.append({"kind": "meta", "n": 1})
        assert base.syncs == 0, "appends stage in memory"
        # A crash here loses both records: nothing reached the file.
        assert FileWAL(tmp_path)._lines() == []
        assert wal.flush() == 2
        assert base.syncs == 1
        assert len(FileWAL(tmp_path).records()) == 2

    def test_full_buffer_flushes_itself(self, tmp_path):
        base = FileWAL(tmp_path)
        wal = GroupCommitWAL(base, max_batch=3)
        for index in range(3):
            wal.append({"kind": "meta", "n": index})
        assert base.syncs == 1, "max_batch bounds the crash window"
        assert wal.flush() == 0

    def test_reads_force_durability(self, tmp_path):
        wal = GroupCommitWAL(FileWAL(tmp_path), max_batch=64)
        wal.append({"kind": "meta", "n": 0})
        assert len(wal.records()) == 1, "the log never lies about content"
        assert wal.base.syncs == 1

    def test_crash_window_loses_only_unacknowledged_commits(self, tmp_path):
        """The group-commit contract end to end: acknowledged commits
        (flushed) survive the crash; staged ones vanish — and presumed
        abort means that is correct, because they were never acked."""
        base = FileWAL(tmp_path)
        wal = GroupCommitWAL(base, max_batch=256)
        manager = file_manager(wal)
        for index in range(3):
            txn = manager.begin()
            manager.invoke(txn, "A", "Credit", 10)
            manager.commit(txn)
        wal.flush()  # the server acks these three here
        staged = manager.begin()
        manager.invoke(staged, "A", "Credit", 1000)
        manager.commit(staged)  # staged, never flushed, never acked
        # Crash: reopen the directory cold, bypassing the buffer.
        recovered, report = recover_manager(
            FileWAL(tmp_path), generator=ShardedTimestampGenerator(0, 1)
        )
        assert recovered.object("A").snapshot() == 130
        assert staged.name not in {
            record["txn"]
            for record in FileWAL(tmp_path).records()
            if "txn" in record
        }
        assert report.replayed_records > 0

    def test_torn_final_batch_line_recovers_to_prefix(self, tmp_path):
        """Fault injection: a torn write mid-way through the final
        group-commit line truncates to the acknowledged prefix."""
        base = FileWAL(tmp_path)
        wal = GroupCommitWAL(base, max_batch=256)
        manager = file_manager(wal)
        committed = []
        for index in range(3):
            txn = manager.begin()
            manager.invoke(txn, "A", "Credit", 10)
            committed.append(manager.commit(txn))
            wal.flush()
        base.close()
        # Tear the last line in half, as a mid-write power cut would.
        raw = (tmp_path / "wal.jsonl").read_bytes()
        torn = raw[: len(raw) - len(raw.splitlines(keepends=True)[-1]) // 2 - 1]
        (tmp_path / "wal.jsonl").write_bytes(torn)
        bus = TraceBus()
        checker = bus.subscribe(AtomicityChecker())
        recovered, _ = recover_manager(
            FileWAL(tmp_path),
            generator=ShardedTimestampGenerator(0, 1),
            tracer=bus,
        )
        # The torn commit is gone; the two acknowledged before it hold.
        assert recovered.object("A").snapshot() == 120
        txn = recovered.begin()
        recovered.invoke(txn, "A", "Credit", 1)
        timestamp = recovered.commit(txn)
        assert timestamp > committed[1]
        assert checker.report()["verdict"] == "clean"


class TestStridePersistence:
    """Satellite regression: the stride modulus is pinned in the log."""

    def make_history(self, tmp_path, shard=1, shards=4):
        wal = FileWAL(tmp_path)
        manager = file_manager(wal, shard=shard, shards=shards)
        for _ in range(3):
            txn = manager.begin()
            manager.invoke(txn, "A", "Credit", 5)
            manager.commit(txn)
        return wal

    def test_meta_record_carries_stride(self, tmp_path):
        wal = self.make_history(tmp_path)
        meta = wal.records()[0]
        assert meta["kind"] == "meta"
        assert (meta["shard"], meta["shards"]) == (1, 4)

    def test_same_stride_reopens_and_continues_on_residue(self, tmp_path):
        wal = self.make_history(tmp_path)
        recovered, _ = recover_manager(
            wal, generator=ShardedTimestampGenerator(1, 4)
        )
        txn = recovered.begin()
        recovered.invoke(txn, "A", "Credit", 1)
        timestamp = recovered.commit(txn)
        assert timestamp % 4 == 1, "new commits stay on the shard's stride"

    @pytest.mark.parametrize("bad", [(1, 3), (2, 4), (0, 1)])
    def test_different_stride_is_refused(self, tmp_path, bad):
        wal = self.make_history(tmp_path)
        with pytest.raises(RecoveryError, match="strid"):
            recover_manager(wal, generator=ShardedTimestampGenerator(*bad))

    def test_unsharded_log_refuses_sharded_generator(self, tmp_path):
        wal = FileWAL(tmp_path)
        manager = TransactionManager(wal=wal)
        manager.create_object("A", make_account_adt(initial=1))
        with pytest.raises(RecoveryError, match="strid"):
            recover_manager(wal, generator=ShardedTimestampGenerator(1, 4))


class TestPrepared2PC:
    """Manager-level 2PC: prepare force-writes, the verdict survives."""

    def test_prepare_is_durable_and_commit_prepared_applies(self, tmp_path):
        wal = GroupCommitWAL(FileWAL(tmp_path), max_batch=256)
        manager = file_manager(wal, shard=0, shards=2)
        txn = manager.begin("X")
        # Debit-Ok holds DEBIT_LOCK (Credit commutes and would block
        # nothing), so the resurrected locks are observable below.
        manager.invoke(txn, "A", "Debit", 30)
        vote = manager.prepare(txn)
        wal.flush()
        # Crash after prepare: the resurrection keeps the locks.
        recovered, _ = recover_manager(
            FileWAL(tmp_path), generator=ShardedTimestampGenerator(0, 2)
        )
        assert recovered.prepared_transactions() == ["X"]
        blocked = recovered.begin()
        from repro.core import LockConflict, WouldBlock

        with pytest.raises((LockConflict, WouldBlock)):
            recovered.invoke(blocked, "A", "Debit", 1)
        resurrected = recovered.transaction("X")
        decided = max(vote, 3) + 1  # a coordinator ts above every vote
        recovered.commit_prepared(resurrected, decided)
        assert recovered.object("A").snapshot() == 70
        assert recovered.prepared_transactions() == []

    def test_prepared_abort_releases_locks(self, tmp_path):
        wal = GroupCommitWAL(FileWAL(tmp_path), max_batch=256)
        manager = file_manager(wal, shard=0, shards=2)
        txn = manager.begin("X")
        manager.invoke(txn, "A", "Credit", 50)
        manager.prepare(txn)
        wal.flush()
        recovered, _ = recover_manager(
            FileWAL(tmp_path), generator=ShardedTimestampGenerator(0, 2)
        )
        recovered.abort(recovered.transaction("X"))
        assert recovered.object("A").snapshot() == 100
        txn2 = recovered.begin()
        recovered.invoke(txn2, "A", "Debit", 1)  # the locks are free again
        recovered.commit(txn2)

    def test_finish_clears_transaction_registry(self, tmp_path):
        """Session-hygiene regression at the manager layer: neither a
        commit nor an abort may leak the transaction handle."""
        manager = file_manager(FileWAL(tmp_path))
        txn = manager.begin("T")
        manager.invoke(txn, "A", "Credit", 1)
        manager.commit(txn)
        assert manager.transaction("T") is None
        txn2 = manager.begin("U")
        manager.invoke(txn2, "A", "Credit", 1)
        manager.abort(txn2)
        assert manager.transaction("U") is None
