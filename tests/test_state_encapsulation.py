"""Regression tests for the REP103/REP104 fixes.

``repro lint`` (the static analyzer added alongside these tests) found
introspection and recovery code reaching into machine- and site-owned
protocol state, and wall-clock calls leaking nondeterminism into
simulated recovery reports.  These tests pin the public accessors that
replaced the private reaches and the injected-clock behaviour, so the
fixes cannot quietly regress into aliasing again.
"""

import pytest

from repro.adts import make_account_adt
from repro.core import Invocation
from repro.core.compaction import CompactingLockMachine
from repro.distributed import Site
from repro.obs.snapshot import lock_table_snapshot, waits_for_edges
from repro.recovery import MemoryWAL, recover_manager
from repro.runtime import TransactionManager
from repro.sim.waiting import WaitRegistry


def account_machine():
    adt = make_account_adt()
    from repro.protocols import HYBRID

    return CompactingLockMachine(
        adt.spec, HYBRID.conflict_for(adt), obj="A"
    )


class TestActiveIntentions:
    """LockMachine.active_intentions() — the implicit lock table."""

    def test_excludes_completed_transactions(self):
        machine = account_machine()
        machine.execute("T1", Invocation("Credit", (5,)))
        machine.execute("T2", Invocation("Credit", (7,)))
        machine.commit("T1", (1, "T1"))
        table = machine.active_intentions()
        assert set(table) == {"T2"}
        assert [op.invocation.name for op in table["T2"]] == ["Credit"]

    def test_returns_a_fresh_map(self):
        machine = account_machine()
        machine.execute("T1", Invocation("Credit", (5,)))
        table = machine.active_intentions()
        table.clear()
        table["T9"] = ()
        # The machine's own view is unaffected by mutating the snapshot.
        assert set(machine.active_intentions()) == {"T1"}
        assert machine.intentions("T1") != ()

    def test_lock_table_snapshot_uses_it(self):
        machine = account_machine()
        machine.execute("T1", Invocation("Credit", (5,)))
        snapshot = lock_table_snapshot(machine)
        assert set(snapshot) == {"T1"}
        snapshot["T1"].append("bogus")
        assert lock_table_snapshot(machine)["T1"] != snapshot["T1"]


class TestHasPin:
    def test_pin_lifecycle(self):
        machine = account_machine()
        assert not machine.has_pin("R1")
        machine.pin("R1", (5, "R1"))
        assert machine.has_pin("R1")
        machine.unpin("R1")
        assert not machine.has_pin("R1")


class TestWaitsForEdges:
    def test_edges_snapshot_does_not_alias(self):
        registry = WaitRegistry()
        registry.wait("T2", "T1", wake=lambda: None)
        edges = waits_for_edges(registry)
        assert edges == {"T2": "T1"}
        edges["T3"] = "T1"
        assert registry.edges() == {"T2": "T1"}

    def test_none_registry(self):
        assert waits_for_edges(None) == {}


class TestSiteAccessors:
    def make_site(self):
        site = Site("S0", wal=MemoryWAL())
        site.create_object("A", make_account_adt())
        return site

    def test_machines_mapping_is_a_copy(self):
        site = self.make_site()
        machines = site.machines()
        assert set(machines) == {"A"}
        machines.clear()
        assert site.objects() == ["A"]

    def test_prepared_transactions_is_a_copy(self):
        site = self.make_site()
        site.handle_invoke("T1", "A", Invocation("Credit", (5,)))
        site.handle_prepare("T1")
        prepared = site.prepared_transactions()
        assert prepared == {"T1"}
        prepared.add("T9")
        assert site.prepared_transactions() == {"T1"}

    def test_install_recovered_state_copies_inputs(self):
        site = self.make_site()
        machines = site.machines()
        adts = {"A": site.adt("A")}
        prepared = {"T1"}
        tombstones = {"T0"}
        touched = {"A": {"T1"}}
        site.crash_hard()
        site.install_recovered_state(
            machines, adts, prepared=prepared, tombstones=tombstones,
            touched=touched,
        )
        site.alive = True
        # Mutating the caller's containers afterwards must not leak in.
        machines.clear()
        prepared.add("T9")
        touched["A"].add("T9")
        assert site.objects() == ["A"]
        assert site.prepared_transactions() == {"T1"}
        # Tombstoned transactions are still voted down.
        assert site.handle_prepare("T0") == ("no",)
        # The touched map fans the commit out to the prepared intentions.
        assert site.handle_prepare("T1")[0] == "yes"


class TestRecoveryClockInjection:
    def run_some(self, manager):
        txn = manager.begin()
        manager.invoke(txn, "A", "Credit", 10)
        manager.commit(txn)

    def manager_with_wal(self):
        manager = TransactionManager(wal=MemoryWAL())
        manager.create_object("A", make_account_adt(initial=100))
        return manager

    def test_no_clock_means_zero_elapsed(self):
        manager = self.manager_with_wal()
        self.run_some(manager)
        _, report = recover_manager(manager.wal)
        assert report.elapsed_seconds == 0.0

    def test_injected_clock_times_the_rebuild(self):
        manager = self.manager_with_wal()
        self.run_some(manager)
        ticks = iter([10.0, 12.5])
        _, report = recover_manager(manager.wal, clock=lambda: next(ticks))
        assert report.elapsed_seconds == pytest.approx(2.5)

    def test_site_recover_defaults_deterministic(self):
        site = Site("S0", wal=MemoryWAL())
        site.create_object("A", make_account_adt())
        site.handle_invoke("T1", "A", Invocation("Credit", (5,)))
        site.handle_prepare("T1")
        site.handle_commit("T1", (3, "T1"))
        site.crash_hard()
        report = site.recover()
        assert report.elapsed_seconds == 0.0
        assert site.snapshot("A") == 5

    def test_site_recover_with_clock(self):
        site = Site("S0", wal=MemoryWAL())
        site.create_object("A", make_account_adt())
        site.handle_invoke("T1", "A", Invocation("Credit", (5,)))
        site.handle_commit("T1", (3, "T1"))
        site.crash_hard()
        ticks = iter([1.0, 1.75])
        report = site.recover(clock=lambda: next(ticks))
        assert report.elapsed_seconds == pytest.approx(0.75)
