"""The write-back propagation rule: views travel with commits.

When a transaction commits, [8]'s scheme writes back not just its own
entry but the merged view it read — so dependency closure survives
transitively even when the original writers' final quorums and a later
reader's initial quorum barely intersect.
"""

import pytest

from repro.adts import make_account_adt
from repro.replication import (
    QuorumAssignment,
    QuorumSpec,
    ReplicatedTransactionManager,
)


def assignment():
    return QuorumAssignment(
        5,
        {
            "Credit": QuorumSpec(0, 2),
            "Post": QuorumSpec(0, 2),
            "Debit": QuorumSpec(4, 2),
        },
    )


class TestPropagation:
    def test_commit_carries_the_view(self):
        manager = ReplicatedTransactionManager()
        manager.create_object("A", make_account_adt(), assignment())
        obj = manager.object("A")

        # A credit lands on exactly its final quorum (2 replicas).
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 10))
        holders_before = [r.name for r in obj.replicas if r.entries()]
        assert len(holders_before) == 2

        # A debit reads 4 replicas (seeing the credit) and commits to 2 —
        # writing BOTH its entry and the credit's entry back.
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Debit", 4))
        replicas_with_credit = [
            r
            for r in obj.replicas
            if any(
                op.name == "Credit"
                for (_ts, _txn, ops) in r.entries().values()
                for op in ops
            )
        ]
        assert len(replicas_with_credit) >= 2  # propagated beyond origin

    def test_snapshot_complete_after_propagation_only(self):
        manager = ReplicatedTransactionManager()
        manager.create_object("A", make_account_adt(), assignment())
        obj = manager.object("A")
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 10))
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Debit", 4))
        # Kill the two replicas that first stored the credit; the debit's
        # write-back keeps the committed state reconstructible from the
        # survivors' logs alone.
        for replica in obj.replicas[:2]:
            replica.fail()
        assert obj.snapshot() == 6

    def test_aborted_transactions_leave_no_entries(self):
        manager = ReplicatedTransactionManager()
        manager.create_object("A", make_account_adt(), assignment())
        t = manager.begin()
        manager.invoke(t, "A", "Credit", 99)
        manager.abort(t)
        obj = manager.object("A")
        assert all(not r.entries() for r in obj.replicas)
        assert obj.snapshot() == 0
