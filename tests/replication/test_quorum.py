"""Quorum assignment validation and availability arithmetic."""

import pytest

from repro.adts import account_universe, make_account_adt, make_file_adt, file_universe
from repro.replication import QuorumAssignment, QuorumSpec


ACCOUNT_NAMES = ["Credit", "Post", "Debit"]


def credit_biased(replicas=5):
    """Type-specific assignment favouring Credit/Post availability."""
    return QuorumAssignment(
        replicas,
        {
            "Credit": QuorumSpec(0, 2),
            "Post": QuorumSpec(0, 2),
            "Debit": QuorumSpec(4, 2),
        },
    )


class TestQuorumSpec:
    def test_bounds(self):
        with pytest.raises(ValueError):
            QuorumSpec(-1, 1)
        with pytest.raises(ValueError):
            QuorumSpec(0, 0)

    def test_sizes_capped_by_replicas(self):
        with pytest.raises(ValueError):
            QuorumAssignment(3, {"Credit": QuorumSpec(4, 1)})

    def test_replica_count_positive(self):
        with pytest.raises(ValueError):
            QuorumAssignment(0, {})


class TestValidation:
    def test_credit_biased_assignment_valid(self):
        adt = make_account_adt()
        assignment = credit_biased()
        assert assignment.is_valid(adt.dependency, account_universe())

    def test_violation_detected_and_described(self):
        adt = make_account_adt()
        bad = QuorumAssignment(
            5,
            {
                "Credit": QuorumSpec(0, 1),  # fq too small for iq(Debit)=4
                "Post": QuorumSpec(0, 2),
                "Debit": QuorumSpec(4, 2),
            },
        )
        violations = bad.validate(adt.dependency, account_universe())
        assert violations
        assert any(
            v.dependent_schema == "Debit" and v.depended_schema == "Credit"
            for v in violations
        )
        assert "depends on" in str(violations[0])

    def test_missing_assignment_raises(self):
        adt = make_account_adt()
        partial = QuorumAssignment(5, {"Credit": QuorumSpec(1, 3)})
        with pytest.raises(KeyError):
            partial.validate(adt.dependency, account_universe())

    def test_majority_always_valid(self):
        adt = make_account_adt()
        majority = QuorumAssignment.majority(5, ACCOUNT_NAMES)
        assert majority.is_valid(adt.dependency, account_universe())

    def test_read_write_valid_for_file(self):
        adt = make_file_adt()
        rw = QuorumAssignment.read_write(
            5, lambda name: name == "Read", ["Read", "Write"]
        )
        assert rw.is_valid(adt.dependency, file_universe((0, 1)))


class TestAvailability:
    def test_available_operations_by_live_count(self):
        assignment = credit_biased()
        assert assignment.available_operations(5) == ["Credit", "Debit", "Post"]
        assert assignment.available_operations(2) == ["Credit", "Post"]
        assert assignment.available_operations(1) == []

    def test_tolerated_failures(self):
        assignment = credit_biased()
        assert assignment.tolerated_failures("Credit") == 3
        assert assignment.tolerated_failures("Debit") == 1

    def test_majority_tolerates_minority_failures(self):
        majority = QuorumAssignment.majority(5, ACCOUNT_NAMES)
        for name in ACCOUNT_NAMES:
            assert majority.tolerated_failures(name) == 2

    def test_credit_bias_beats_majority_for_credits(self):
        # The paper's availability point: type-specific quorums can push
        # chosen operations past what any uniform assignment allows.
        biased = credit_biased()
        majority = QuorumAssignment.majority(5, ACCOUNT_NAMES)
        assert (
            biased.tolerated_failures("Credit")
            > majority.tolerated_failures("Credit")
        )
