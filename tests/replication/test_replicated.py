"""Replicated objects: correctness, failures, availability, verification."""

import random

import pytest

from repro.adts import (
    account_universe,
    make_account_adt,
    make_queue_adt,
    queue_universe,
)
from repro.core import (
    LockConflict,
    TransactionAborted,
    WouldBlock,
    is_hybrid_atomic,
    timestamps_respect_precedes,
)
from repro.replication import (
    QuorumAssignment,
    QuorumSpec,
    ReplicatedTransactionManager,
    Unavailable,
)
from repro.runtime import Status, TransactionManager


def account_assignment(replicas=5):
    return QuorumAssignment(
        replicas,
        {
            "Credit": QuorumSpec(0, 2),
            "Post": QuorumSpec(0, 2),
            "Debit": QuorumSpec(4, 2),
        },
    )


def queue_assignment(replicas=3):
    # Enq depends on nothing (Fig 4-2): blind appends; Deq must see all.
    return QuorumAssignment(
        replicas,
        {"Enq": QuorumSpec(0, 2), "Deq": QuorumSpec(2, 2)},
    )


def bank(record=False):
    manager = ReplicatedTransactionManager(record_history=record)
    manager.create_object("A", make_account_adt(), account_assignment())
    return manager


class TestBasics:
    def test_invalid_assignment_rejected_at_creation(self):
        manager = ReplicatedTransactionManager()
        bad = QuorumAssignment(
            5,
            {
                "Credit": QuorumSpec(0, 1),
                "Post": QuorumSpec(0, 2),
                "Debit": QuorumSpec(4, 2),
            },
        )
        with pytest.raises(ValueError):
            manager.create_object("A", make_account_adt(), bad)

    def test_simple_transactions(self):
        manager = bank()
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 100))
        assert manager.run_transaction(lambda ctx: ctx.invoke("A", "Debit", 30)) == "Ok"
        assert manager.object("A").snapshot() == 70

    def test_matches_single_copy_reference(self):
        rng = random.Random(4)
        script = [
            ("Credit", rng.randint(1, 20)) if rng.random() < 0.6 else
            ("Debit", rng.randint(1, 20))
            for _ in range(30)
        ]
        replicated = bank()
        reference = TransactionManager()
        reference.create_object("A", make_account_adt())
        for op, amount in script:
            a = replicated.run_transaction(lambda ctx: ctx.invoke("A", op, amount))
            b = reference.run_transaction(lambda ctx: ctx.invoke("A", op, amount))
            assert a == b
        assert replicated.object("A").snapshot() == reference.object("A").snapshot()

    def test_locks_work_across_replication(self):
        manager = bank()
        t = manager.begin()
        assert manager.invoke(t, "A", "Debit", 5) == "Overdraft"
        u = manager.begin()
        with pytest.raises(LockConflict):
            manager.invoke(u, "A", "Credit", 1)
        manager.abort(t)
        assert manager.invoke(u, "A", "Credit", 1) == "Ok"
        manager.commit(u)

    def test_lifecycle_guards(self):
        manager = bank()
        t = manager.begin()
        manager.commit(t)
        with pytest.raises(TransactionAborted):
            manager.invoke(t, "A", "Credit", 1)


class TestFailures:
    def test_blind_credits_survive_heavy_failures(self):
        manager = bank()
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 10))
        manager.object("A").fail_replicas(3)  # 2 of 5 live
        assert manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 5)) == "Ok"

    def test_debits_unavailable_under_heavy_failures(self):
        manager = bank()
        manager.object("A").fail_replicas(3)
        t = manager.begin()
        with pytest.raises(Unavailable):
            manager.invoke(t, "A", "Debit", 1)
        manager.abort(t)

    def test_recovery_restores_service_and_state(self):
        manager = bank()
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 100))
        obj = manager.object("A")
        obj.fail_replicas(3)
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 1))
        obj.recover_all()
        # Stale replicas rejoin; quorum reads still see everything.
        assert manager.run_transaction(lambda ctx: ctx.invoke("A", "Debit", 101)) == "Ok"
        assert obj.snapshot() == 0

    def test_commit_unavailable_keeps_transaction_active(self):
        manager = bank()
        t = manager.begin()
        manager.invoke(t, "A", "Credit", 5)
        manager.object("A").fail_replicas(4)  # 1 live < fq(Credit)=2
        with pytest.raises(Unavailable):
            manager.commit(t)
        assert t.status is Status.ACTIVE
        manager.object("A").recover_all()
        manager.commit(t)
        assert manager.object("A").snapshot() == 5

    def test_nothing_lost_when_entry_written_to_minimum_quorum(self):
        manager = bank()
        obj = manager.object("A")
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 7))
        # The entry lives on (at least) fq(Credit)=2 replicas; fail the
        # *other* three and the state must still be readable via Debit's
        # initial quorum after recovery of any 4.
        holders = [r for r in obj.replicas if r.entries()]
        assert len(holders) >= 2
        for replica in obj.replicas:
            if replica not in holders:
                replica.fail()
        obj.replicas[4].recover() if not obj.replicas[4].alive else None
        obj.recover_all()
        assert manager.run_transaction(lambda ctx: ctx.invoke("A", "Debit", 7)) == "Ok"


class TestQueueReplication:
    def test_blind_enqueues_and_ordered_dequeues(self):
        manager = ReplicatedTransactionManager()
        manager.create_object(
            "Q", make_queue_adt(), queue_assignment(), universe=queue_universe()
        )
        manager.run_transaction(lambda ctx: ctx.invoke("Q", "Enq", "a"))
        manager.run_transaction(lambda ctx: ctx.invoke("Q", "Enq", "b"))
        assert manager.run_transaction(lambda ctx: ctx.invoke("Q", "Deq")) == "a"
        assert manager.run_transaction(lambda ctx: ctx.invoke("Q", "Deq")) == "b"

    def test_enq_survives_one_failure(self):
        manager = ReplicatedTransactionManager()
        manager.create_object("Q", make_queue_adt(), queue_assignment())
        manager.object("Q").fail_replicas(1)
        manager.run_transaction(lambda ctx: ctx.invoke("Q", "Enq", 1))
        assert manager.run_transaction(lambda ctx: ctx.invoke("Q", "Deq")) == 1

    def test_deq_empty_blocks(self):
        manager = ReplicatedTransactionManager()
        manager.create_object("Q", make_queue_adt(), queue_assignment())
        t = manager.begin()
        with pytest.raises(WouldBlock):
            manager.invoke(t, "Q", "Deq")


class TestVerification:
    def test_random_replicated_run_hybrid_atomic(self):
        rng = random.Random(11)
        manager = bank(record=True)
        manager.create_object(
            "Q", make_queue_adt(), queue_assignment(), universe=queue_universe()
        )
        active = []
        for step in range(60):
            roll = rng.random()
            if roll < 0.1:
                # Random failure/recovery churn.
                obj = manager.object(rng.choice(["A", "Q"]))
                if rng.random() < 0.5:
                    obj.fail_replicas(1)
                else:
                    obj.recover_all()
            elif roll < 0.35 and active:
                txn = active.pop(rng.randrange(len(active)))
                try:
                    manager.commit(txn)
                except Unavailable:
                    manager.abort(txn)
            else:
                if len(active) < 3:
                    active.append(manager.begin())
                txn = active[rng.randrange(len(active))]
                obj, op, args = rng.choice(
                    [
                        ("A", "Credit", (rng.randint(1, 9),)),
                        ("A", "Debit", (rng.randint(1, 9),)),
                        ("Q", "Enq", (step,)),
                        ("Q", "Deq", ()),
                    ]
                )
                try:
                    manager.invoke(txn, obj, op, *args)
                except (LockConflict, WouldBlock, Unavailable):
                    pass
        for obj in manager.objects.values():
            obj.recover_all()
        for txn in active:
            manager.commit(txn)
        h = manager.history()
        assert timestamps_respect_precedes(h)
        assert is_hybrid_atomic(h, manager.specs())
