"""Multi-object, multi-protocol end-to-end scenarios with verification."""

import random

import pytest

from repro.adts import (
    make_account_adt,
    make_directory_adt,
    make_queue_adt,
    make_semiqueue_adt,
    make_set_adt,
)
from repro.core import (
    LockConflict,
    SkewedTimestampGenerator,
    WouldBlock,
    is_hybrid_atomic,
    timestamps_respect_precedes,
)
from repro.protocols import ALL_PROTOCOLS, COMMUTATIVITY, HYBRID
from repro.runtime import TransactionManager


class TestBankTransfers:
    def test_transfers_conserve_money(self):
        manager = TransactionManager()
        manager.create_object("a", make_account_adt())
        manager.create_object("b", make_account_adt())
        manager.run_transaction(lambda ctx: ctx.invoke("a", "Credit", 1000))

        def transfer(amount):
            def body(ctx):
                if ctx.invoke("a", "Debit", amount) == "Overdraft":
                    return False
                ctx.invoke("b", "Credit", amount)
                return True

            return body

        for amount in (100, 250, 300):
            assert manager.run_transaction(transfer(amount))
        assert manager.object("a").snapshot() == 1000 - 650
        assert manager.object("b").snapshot() == 650

    def test_overdraft_leaves_balances_untouched(self):
        manager = TransactionManager()
        manager.create_object("a", make_account_adt())
        manager.create_object("b", make_account_adt())
        manager.run_transaction(lambda ctx: ctx.invoke("a", "Credit", 10))

        def body(ctx):
            if ctx.invoke("a", "Debit", 100) == "Overdraft":
                raise RuntimeError("insufficient funds")
            ctx.invoke("b", "Credit", 100)

        with pytest.raises(RuntimeError):
            manager.run_transaction(body)
        assert manager.object("a").snapshot() == 10
        assert manager.object("b").snapshot() == 0


class TestRandomisedVerification:
    """Random multi-object workloads stay hybrid atomic under every
    protocol and both timestamp generators (a slow but thorough check)."""

    OPS = [
        ("Q", "Enq", lambda rng: (rng.randint(1, 5),)),
        ("Q", "Deq", lambda rng: ()),
        ("S", "Ins", lambda rng: (rng.randint(1, 5),)),
        ("S", "Rem", lambda rng: ()),
        ("A", "Credit", lambda rng: (rng.randint(1, 9),)),
        ("A", "Debit", lambda rng: (rng.randint(1, 9),)),
        ("A", "Post", lambda rng: (50,)),
        ("D", "Bind", lambda rng: (rng.choice("xy"), rng.randint(1, 3))),
        ("D", "Unbind", lambda rng: (rng.choice("xy"),)),
        ("D", "Lookup", lambda rng: (rng.choice("xy"),)),
    ]

    def run_one(self, protocol, generator, seed):
        rng = random.Random(seed)
        manager = TransactionManager(record_history=True, generator=generator)
        manager.create_object("Q", make_queue_adt(), protocol=protocol)
        manager.create_object("S", make_semiqueue_adt(), protocol=protocol)
        manager.create_object("A", make_account_adt(), protocol=protocol)
        manager.create_object("D", make_directory_adt(), protocol=protocol)
        active = {}
        for step in range(120):
            name = f"T{rng.randint(1, 6)}#{step}"
            if rng.random() < 0.25 and active:
                victim = rng.choice(sorted(active))
                txn = active.pop(victim)
                if rng.random() < 0.25:
                    manager.abort(txn)
                else:
                    manager.commit(txn)
                continue
            if len(active) < 4:
                txn = manager.begin(name)
                active[name] = txn
            else:
                victim = rng.choice(sorted(active))
                txn = active[victim]
            obj, operation, args = self.OPS[rng.randrange(len(self.OPS))]
            try:
                manager.invoke(txn, obj, operation, *args(rng))
            except (LockConflict, WouldBlock):
                pass
        for txn in active.values():
            manager.commit(txn)
        return manager

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: p.name)
    def test_monotone_timestamps(self, protocol):
        manager = self.run_one(protocol, None, seed=11)
        h = manager.history()
        assert timestamps_respect_precedes(h)
        assert is_hybrid_atomic(h, manager.specs())

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_skewed_timestamps(self, seed):
        manager = self.run_one(
            HYBRID, SkewedTimestampGenerator(seed=seed), seed=seed
        )
        h = manager.history()
        assert timestamps_respect_precedes(h)
        assert is_hybrid_atomic(h, manager.specs())
