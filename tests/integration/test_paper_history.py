"""End-to-end reproduction of the paper's worked example (Sections 3.2-3.4,
4.1) through every layer: formal machine, compacting machine, and runtime."""

from repro.adts import FifoQueueSpec, QUEUE_CONFLICT_FIG42, make_queue_adt
from repro.core import (
    CompactingLockMachine,
    HistoryBuilder,
    Invocation,
    LockMachine,
    is_atomic,
    is_hybrid_atomic,
    is_online_hybrid_atomic,
    timestamps_respect_precedes,
)
from repro.runtime import TransactionManager


SPEC = FifoQueueSpec()


class TestFormalMachine:
    def drive(self, machine):
        machine.execute("P", Invocation("Enq", (1,)))
        machine.execute("Q", Invocation("Enq", (2,)))
        machine.execute("P", Invocation("Enq", (3,)))
        machine.commit("P", 2)
        machine.commit("Q", 1)
        first = machine.execute("R", Invocation("Deq"))
        second = machine.execute("R", Invocation("Deq"))
        machine.commit("R", 5)
        return first, second

    def test_dequeue_order_follows_timestamps(self):
        machine = LockMachine(SPEC, QUEUE_CONFLICT_FIG42)
        assert self.drive(machine) == (2, 1)

    def test_accepted_history_matches_paper_text(self):
        machine = LockMachine(SPEC, QUEUE_CONFLICT_FIG42)
        self.drive(machine)
        expected = (
            HistoryBuilder("X")
            .operation("P", Invocation("Enq", (1,)), "Ok")
            .operation("Q", Invocation("Enq", (2,)), "Ok")
            .operation("P", Invocation("Enq", (3,)), "Ok")
            .commit("P", 2)
            .commit("Q", 1)
            .operation("R", Invocation("Deq"), 2)
            .operation("R", Invocation("Deq"), 1)
            .commit("R", 5)
            .history()
        )
        assert machine.history().events == expected.events

    def test_all_three_atomicity_levels(self):
        machine = LockMachine(SPEC, QUEUE_CONFLICT_FIG42)
        self.drive(machine)
        h = machine.history()
        specs = {"X": SPEC}
        assert is_atomic(h, specs)
        assert is_hybrid_atomic(h, specs)
        assert is_online_hybrid_atomic(h, specs)
        assert timestamps_respect_precedes(h)

    def test_every_prefix_online_hybrid_atomic(self):
        machine = LockMachine(SPEC, QUEUE_CONFLICT_FIG42)
        self.drive(machine)
        for prefix in machine.history().prefixes():
            assert is_online_hybrid_atomic(prefix, {"X": SPEC})

    def test_compacting_machine_identical(self):
        plain = LockMachine(SPEC, QUEUE_CONFLICT_FIG42)
        compacting = CompactingLockMachine(SPEC, QUEUE_CONFLICT_FIG42)
        assert self.drive(plain) == self.drive(compacting)
        assert plain.history().events == compacting.history().events
        # And the compacting machine ends with only item 3 materialised.
        assert compacting.version_states == frozenset({(3,)})
        assert compacting.retained_intentions() == 0


class TestRuntimeReproduction:
    def test_concurrent_producers_one_consumer(self):
        """The same story via the manager: enqueue order is decided by the
        commit timestamps, and later consumers observe it."""
        manager = TransactionManager(record_history=True)
        manager.create_object("X", make_queue_adt())
        p = manager.begin("P")
        q = manager.begin("Q")
        manager.invoke(p, "X", "Enq", 1)
        manager.invoke(q, "X", "Enq", 2)
        manager.invoke(p, "X", "Enq", 3)
        # Commit Q first: with the monotone generator Q gets the smaller
        # timestamp, like the paper's scenario.
        manager.commit(q)
        manager.commit(p)
        r = manager.begin("R")
        assert manager.invoke(r, "X", "Deq") == 2
        assert manager.invoke(r, "X", "Deq") == 1
        assert manager.invoke(r, "X", "Deq") == 3
        manager.commit(r)
        h = manager.history()
        assert is_hybrid_atomic(h, manager.specs())
