"""Cross-subsystem integration: the pieces compose.

Each test wires two or more subsystems together in a way no unit test
does: product types on the optimistic engine and behind quorums, derived
extension types at distributed sites, read-only snapshots interleaved
with crashes, and skewed timestamps exercising compaction at runtime
scale.
"""

import random

import pytest

from repro.adts import (
    make_account_adt,
    make_bounded_queue_adt,
    make_counter_adt,
    make_product_adt,
    make_stack_adt,
)
from repro.core import (
    Invocation,
    LockConflict,
    SkewedTimestampGenerator,
    WouldBlock,
    is_hybrid_atomic,
    timestamps_respect_precedes,
)
from repro.runtime import (
    OptimisticTransactionManager,
    TransactionManager,
    ValidationFailed,
)


class TestProductEverywhere:
    def make_record(self):
        return make_product_adt(
            {"cash": make_account_adt(), "visits": make_counter_adt()},
            name="CustomerRecord",
        )

    def test_product_on_optimistic_engine(self):
        manager = OptimisticTransactionManager(record_history=True)
        manager.create_object("cust", self.make_record())
        manager.run_transaction(lambda ctx: ctx.invoke("cust", "cash.Credit", 50))
        t = manager.begin()
        assert manager.invoke(t, "cust", "cash.Debit", 50) == "Ok"
        # A concurrent commit on the *other field* never invalidates t.
        manager.run_transaction(lambda ctx: ctx.invoke("cust", "visits.Inc", 1))
        manager.commit(t)  # fast path: cross-field independence
        assert manager.object("cust").snapshot() == (0, 1)
        assert is_hybrid_atomic(manager.history(), manager.specs())

    def test_product_behind_quorums(self):
        from repro.replication import (
            QuorumAssignment,
            QuorumSpec,
            ReplicatedTransactionManager,
        )

        record = self.make_record()
        assignment = QuorumAssignment(
            3,
            {
                "cash.Credit": QuorumSpec(0, 2),
                "cash.Post": QuorumSpec(0, 2),
                "cash.Debit": QuorumSpec(2, 2),
                "visits.Inc": QuorumSpec(0, 2),
                "visits.Dec": QuorumSpec(2, 2),
                "visits.Read": QuorumSpec(2, 1),
            },
        )
        assert assignment.is_valid(record.dependency, record.universe())
        manager = ReplicatedTransactionManager()
        manager.create_object("cust", record, assignment)
        manager.run_transaction(
            lambda ctx: (
                ctx.invoke("cust", "cash.Credit", 30),
                ctx.invoke("cust", "visits.Inc", 1),
            )
        )
        manager.object("cust").fail_replicas(1)
        # Blind field updates survive a failure; reads need their quorum.
        manager.run_transaction(lambda ctx: ctx.invoke("cust", "visits.Inc", 1))
        assert manager.run_transaction(
            lambda ctx: ctx.invoke("cust", "visits.Read")
        ) == 2


class TestExtensionTypesAtSites:
    def test_stack_and_bounded_queue_at_a_site(self):
        from repro.distributed import Site

        site = Site("S0")
        site.create_object("stack", make_stack_adt())
        site.create_object("buffer", make_bounded_queue_adt(capacity=2))
        assert site.handle_invoke("T1", "stack", Invocation("Push", (1,)))[0] == "ok"
        assert site.handle_invoke("T1", "buffer", Invocation("Enq", (1,)))[0] == "ok"
        site.handle_commit("T1", (1, "T1"))
        assert site.snapshot("stack") == (1,)
        # Fill the bounded buffer to its cap; further enqueues block.
        reply = site.handle_invoke("T2", "buffer", Invocation("Enq", (2,)))
        assert reply[0] == "ok"
        site.handle_commit("T2", (2, "T2"))
        assert site.handle_invoke("T3", "buffer", Invocation("Enq", (3,))) == (
            "block",
        )


class TestReadonlyAndCrash:
    def test_snapshot_survives_crash_of_writers(self):
        manager = TransactionManager()
        manager.create_object("C", make_counter_adt())
        manager.run_transaction(lambda ctx: ctx.invoke("C", "Inc", 3))
        reader = manager.begin_readonly()
        writer = manager.begin()
        manager.invoke(writer, "C", "Inc", 10)  # volatile
        manager.crash()  # kills writer AND the reader's pins
        # The reader was a crash victim too; its snapshot is gone.
        from repro.core import TransactionAborted

        with pytest.raises(TransactionAborted):
            manager.invoke(reader, "C", "Read")
        # Committed state is intact and service resumes.
        assert manager.run_transaction(lambda ctx: ctx.invoke("C", "Read")) == 3


class TestSkewedTimestampsAtScale:
    def test_long_skewed_run_bounded_and_correct(self):
        rng = random.Random(5)
        manager = TransactionManager(
            record_history=True, generator=SkewedTimestampGenerator(seed=5, gap=6)
        )
        manager.create_object("A", make_account_adt())
        for _ in range(60):
            amount = rng.randint(1, 5)
            op = rng.choice(["Credit", "Debit"])
            try:
                manager.run_transaction(lambda ctx: ctx.invoke("A", op, amount))
            except (LockConflict, WouldBlock):
                pass
        machine = manager.object("A").machine
        # Out-of-order stamps delay the horizon but never unboundedly.
        assert machine.retained_intentions() < 20
        h = manager.history()
        assert timestamps_respect_precedes(h)
        # (Hybrid atomicity of >8-transaction histories is checked via the
        # timestamp-order serialization directly.)
        order = h.committed_in_timestamp_order()
        from repro.core import is_serializable_in_order

        assert is_serializable_in_order(h.permanent(), order, manager.specs())
