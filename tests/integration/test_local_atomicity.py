"""Local atomicity (Section 3.3): Theorem 1 and the incompatibility trap.

Theorem 1: if every object is hybrid atomic, every system history is
atomic — exercised positively with multi-object runs under skewed
timestamps.  The section also warns that objects using "correct" but
*incompatible* concurrency-control methods yield non-serializable
executions; we build that failure concretely: one object serializes
committed transactions in timestamp order (hybrid), a rogue object in
commit-arrival order (each locally serializable!), and the combination
is globally non-atomic.
"""

import pytest

from repro.adts import make_account_adt, make_file_adt, make_queue_adt
from repro.core import (
    HistoryBuilder,
    Invocation,
    SkewedTimestampGenerator,
    is_atomic,
    is_hybrid_atomic,
    is_serializable,
    is_serializable_in_order,
)
from repro.adts import FileSpec
from repro.runtime import TransactionManager


class TestTheorem1Positive:
    def test_multi_object_skewed_run_is_atomic(self):
        manager = TransactionManager(
            record_history=True, generator=SkewedTimestampGenerator(seed=9)
        )
        manager.create_object("A", make_account_adt())
        manager.create_object("F", make_file_adt())
        manager.create_object("Q", make_queue_adt())
        for i in range(6):  # brute-force is_atomic caps at 8 transactions
            manager.run_transaction(
                lambda ctx: (
                    ctx.invoke("A", "Credit", i + 1),
                    ctx.invoke("F", "Write", i),
                    ctx.invoke("Q", "Enq", i),
                )
            )
        h = manager.history()
        assert is_hybrid_atomic(h, manager.specs())
        assert is_atomic(h, manager.specs())


class TestIncompatibleProtocols:
    """Timestamp-order object X + arrival-order object Y, both locally
    serializable, globally non-atomic."""

    def build_history(self):
        # P and Q write both files concurrently.  Q commits second in real
        # time but with the SMALLER timestamp (legal: neither observed the
        # other).  X merges by timestamp (Q then P -> value 1); the rogue Y
        # merges by arrival (P then Q -> value 2).  R reads both.
        return (
            HistoryBuilder()
            .operation("P", Invocation("Write", (1,)), "Ok", obj="X")
            .operation("P", Invocation("Write", (1,)), "Ok", obj="Y")
            .operation("Q", Invocation("Write", (2,)), "Ok", obj="X")
            .operation("Q", Invocation("Write", (2,)), "Ok", obj="Y")
            .commit("P", 10, obj="X")
            .commit("P", 10, obj="Y")
            .commit("Q", 5, obj="X")
            .commit("Q", 5, obj="Y")
            .operation("R", Invocation("Read"), 1, obj="X")   # timestamp order
            .operation("R", Invocation("Read"), 2, obj="Y")   # arrival order
            .commit("R", 20, obj="X")
            .commit("R", 20, obj="Y")
            .history()
        )

    def test_each_object_locally_serializable(self):
        h = self.build_history()
        spec = FileSpec(initial=0)
        # X is hybrid atomic: serializable in timestamp order Q-P-R.
        assert is_serializable_in_order(
            h.restrict_objects("X"), ["Q", "P", "R"], {"X": spec}
        )
        # Y is locally serializable too — just in a different order.
        assert is_serializable_in_order(
            h.restrict_objects("Y"), ["P", "Q", "R"], {"Y": spec}
        )
        # But Y is NOT hybrid atomic (its local order contradicts TS).
        assert not is_hybrid_atomic(h.restrict_objects("Y"), {"Y": spec})

    def test_combination_not_atomic(self):
        h = self.build_history()
        specs = {"X": FileSpec(initial=0), "Y": FileSpec(initial=0)}
        assert not is_serializable(h, specs)
        assert not is_atomic(h, specs)

    def test_all_hybrid_restores_atomicity(self):
        # The same scenario with Y also honouring timestamp order.
        h = (
            HistoryBuilder()
            .operation("P", Invocation("Write", (1,)), "Ok", obj="X")
            .operation("P", Invocation("Write", (1,)), "Ok", obj="Y")
            .operation("Q", Invocation("Write", (2,)), "Ok", obj="X")
            .operation("Q", Invocation("Write", (2,)), "Ok", obj="Y")
            .commit("P", 10, obj="X")
            .commit("P", 10, obj="Y")
            .commit("Q", 5, obj="X")
            .commit("Q", 5, obj="Y")
            .operation("R", Invocation("Read"), 1, obj="X")
            .operation("R", Invocation("Read"), 1, obj="Y")
            .commit("R", 20, obj="X")
            .commit("R", 20, obj="Y")
            .history()
        )
        specs = {"X": FileSpec(initial=0), "Y": FileSpec(initial=0)}
        assert is_hybrid_atomic(h, specs)
        assert is_atomic(h, specs)
