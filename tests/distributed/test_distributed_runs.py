"""End-to-end distributed runs: correctness, determinism, crash handling."""

import pytest

from repro.core import is_hybrid_atomic, timestamps_respect_precedes
from repro.distributed import run_distributed_experiment


class TestRuns:
    def test_progress_and_traffic(self):
        run = run_distributed_experiment(
            site_count=3, clients=4, duration=150, seed=1
        )
        assert run.metrics.committed > 20
        assert run.network.sent["prepare"] == run.network.sent["vote"]
        assert run.network.sent["commit"] >= run.metrics.committed

    def test_deterministic(self):
        a = run_distributed_experiment(duration=120, seed=9)
        b = run_distributed_experiment(duration=120, seed=9)
        assert a.metrics.as_row() == b.metrics.as_row()
        assert dict(a.network.sent) == dict(b.network.sent)

    def test_history_hybrid_atomic(self):
        run = run_distributed_experiment(
            site_count=3, clients=4, duration=150, seed=1, record=True
        )
        h = run.history()
        assert len(h) > 100
        assert timestamps_respect_precedes(h)
        assert is_hybrid_atomic(h, run.specs())

    def test_timestamps_globally_unique(self):
        run = run_distributed_experiment(duration=150, seed=2, record=True)
        stamps = run.history().timestamps()
        assert len(set(stamps.values())) == len(stamps)

    def test_cross_site_transactions_commit_atomically(self):
        run = run_distributed_experiment(
            site_count=4, max_spread=3, clients=5, duration=200, seed=3,
            record=True,
        )
        # Every committed transaction carries one timestamp at every
        # object it touched — atomic commitment across sites.
        h = run.history()
        from repro.core.events import CommitEvent

        per_txn = {}
        for event in h:
            if isinstance(event, CommitEvent):
                per_txn.setdefault(event.transaction, set()).add(event.timestamp)
        assert per_txn
        assert all(len(stamps) == 1 for stamps in per_txn.values())

    def test_latency_grows_with_spread(self):
        narrow = run_distributed_experiment(
            site_count=4, max_spread=1, clients=4, duration=250, seed=5
        )
        wide = run_distributed_experiment(
            site_count=4, max_spread=4, clients=4, duration=250, seed=5
        )
        assert wide.metrics.mean_latency > narrow.metrics.mean_latency


class TestCrashes:
    def test_crashes_cause_aborts_but_not_corruption(self):
        run = run_distributed_experiment(
            site_count=3,
            clients=4,
            duration=200,
            seed=4,
            record=True,
            crash_every=20,
        )
        assert run.metrics.aborted > 0
        h = run.history()
        assert timestamps_respect_precedes(h)
        assert is_hybrid_atomic(h, run.specs())

    def test_no_transaction_partially_committed_across_crashes(self):
        run = run_distributed_experiment(
            site_count=3,
            max_spread=3,
            clients=5,
            duration=200,
            seed=6,
            record=True,
            crash_every=15,
        )
        from repro.core.events import AbortEvent, CommitEvent

        h = run.history()
        committed = {e.transaction for e in h if isinstance(e, CommitEvent)}
        aborted = {e.transaction for e in h if isinstance(e, AbortEvent)}
        # Commit-or-abort is exclusive: no transaction both commits
        # somewhere and aborts somewhere else.
        assert not (committed & aborted)
