"""Site handlers: invoke/prepare/commit/abort, clocks, crashes."""

import pytest

from repro.adts import make_account_adt, make_queue_adt
from repro.core import Invocation
from repro.distributed import Site


def account_site(recorder=None):
    site = Site("S0", recorder=recorder)
    site.create_object("A", make_account_adt())
    return site


class TestHandlers:
    def test_invoke_ok_carries_clock(self):
        site = account_site()
        reply = site.handle_invoke("T1", "A", Invocation("Credit", (5,)))
        assert reply[0] == "ok" and reply[1] == "Ok"
        assert reply[2] == site.clock.now

    def test_invoke_conflict(self):
        site = account_site()
        site.handle_invoke("T1", "A", Invocation("Debit", (5,)))  # Overdraft
        reply = site.handle_invoke("T2", "A", Invocation("Credit", (5,)))
        assert reply == ("conflict",)

    def test_invoke_block(self):
        site = Site("S0")
        site.create_object("Q", make_queue_adt())
        assert site.handle_invoke("T1", "Q", Invocation("Deq")) == ("block",)

    def test_prepare_votes_yes_with_clock(self):
        site = account_site()
        site.handle_invoke("T1", "A", Invocation("Credit", (5,)))
        assert site.handle_prepare("T1") == ("yes", site.clock.now)

    def test_commit_applies_and_advances_clock(self):
        site = account_site()
        site.handle_invoke("T1", "A", Invocation("Credit", (5,)))
        site.handle_commit("T1", (7, "T1"))
        assert site.clock.now == 7
        assert site.snapshot("A") == 5

    def test_abort_releases(self):
        site = account_site()
        site.handle_invoke("T1", "A", Invocation("Debit", (5,)))
        site.handle_abort("T1")
        reply = site.handle_invoke("T2", "A", Invocation("Credit", (5,)))
        assert reply[0] == "ok"

    def test_duplicate_object_rejected(self):
        site = account_site()
        with pytest.raises(ValueError):
            site.create_object("A", make_account_adt())


class TestCrash:
    def test_crash_aborts_unprepared(self):
        site = account_site()
        site.handle_invoke("T1", "A", Invocation("Credit", (5,)))
        assert site.crash() == ["T1"]
        # Tombstoned: later prepare must vote no, later invoke is refused.
        assert site.handle_prepare("T1") == ("no",)
        assert site.handle_invoke("T1", "A", Invocation("Credit", (1,))) == (
            "no-such-transaction",
        )

    def test_prepared_transactions_survive_crash(self):
        site = account_site()
        site.handle_invoke("T1", "A", Invocation("Credit", (5,)))
        site.handle_prepare("T1")  # stable log
        assert site.crash() == []
        site.handle_commit("T1", (3, "T1"))
        assert site.snapshot("A") == 5

    def test_committed_state_survives_crash(self):
        site = account_site()
        site.handle_invoke("T1", "A", Invocation("Credit", (9,)))
        site.handle_commit("T1", (1, "T1"))
        site.crash()
        assert site.snapshot("A") == 9
