"""Simulated network unit tests."""

import pytest

from repro.distributed import Network
from repro.sim import Simulator


class TestNetwork:
    def test_messages_arrive_after_latency(self):
        simulator = Simulator()
        network = Network(simulator, seed=1, mean_latency=2.0, floor=0.5)
        arrived = []
        network.send("ping", lambda: arrived.append(simulator.now))
        simulator.run()
        assert arrived and arrived[0] >= 0.5

    def test_counters_by_label(self):
        simulator = Simulator()
        network = Network(simulator, seed=0)
        network.send("a", lambda: None)
        network.send("a", lambda: None)
        network.send("b", lambda: None)
        assert network.sent["a"] == 2
        assert network.sent["b"] == 1
        assert network.total_messages == 3

    def test_deterministic_latencies(self):
        lat_a = Network(Simulator(), seed=7).latency()
        lat_b = Network(Simulator(), seed=7).latency()
        assert lat_a == lat_b

    def test_messages_can_overtake(self):
        # Two messages sent back to back may arrive out of order — the
        # property commit timestamps exist to survive.
        simulator = Simulator()
        network = Network(simulator, seed=3, mean_latency=5.0, floor=0.0)
        order = []
        for tag in range(12):
            network.send("m", lambda t=tag: order.append(t))
        simulator.run()
        assert order != sorted(order)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Network(Simulator(), mean_latency=0)
        with pytest.raises(ValueError):
            Network(Simulator(), floor=-1)

    def test_same_pair_messages_can_overtake(self):
        # Even messages between one fixed (sender, receiver) pair are only
        # ordered by their random latencies: a later send can arrive
        # first.  The per-label counter still accounts for every one.
        simulator = Simulator()
        network = Network(simulator, seed=11, mean_latency=5.0, floor=0.0)
        arrivals = []
        for tag in range(20):
            network.send("C0->S1", lambda t=tag: arrivals.append(t))
        simulator.run()
        assert sorted(arrivals) == list(range(20))  # reliable: all arrive
        assert arrivals != sorted(arrivals)  # ...but reordered
        assert network.sent["C0->S1"] == 20

    def test_distributed_run_traffic_breakdown(self):
        from repro.distributed import run_distributed_experiment

        run = run_distributed_experiment(duration=100.0, seed=5)
        sent = run.network.sent
        # Every protocol phase shows up in the per-kind breakdown.
        for kind in ("invoke", "invoke-reply", "prepare", "vote", "commit"):
            assert sent[kind] > 0, kind
        # Requests and replies pair off (modulo messages still in flight
        # when the run's duration cut the simulation off).
        assert 0 <= sent["invoke"] - sent["invoke-reply"] <= 1
        assert sent["vote"] <= sent["prepare"]
        assert run.network.total_messages == sum(sent.values())
