"""Simulated network unit tests."""

import pytest

from repro.distributed import Network
from repro.sim import Simulator


class TestNetwork:
    def test_messages_arrive_after_latency(self):
        simulator = Simulator()
        network = Network(simulator, seed=1, mean_latency=2.0, floor=0.5)
        arrived = []
        network.send("ping", lambda: arrived.append(simulator.now))
        simulator.run()
        assert arrived and arrived[0] >= 0.5

    def test_counters_by_label(self):
        simulator = Simulator()
        network = Network(simulator, seed=0)
        network.send("a", lambda: None)
        network.send("a", lambda: None)
        network.send("b", lambda: None)
        assert network.sent["a"] == 2
        assert network.sent["b"] == 1
        assert network.total_messages == 3

    def test_deterministic_latencies(self):
        lat_a = Network(Simulator(), seed=7).latency()
        lat_b = Network(Simulator(), seed=7).latency()
        assert lat_a == lat_b

    def test_messages_can_overtake(self):
        # Two messages sent back to back may arrive out of order — the
        # property commit timestamps exist to survive.
        simulator = Simulator()
        network = Network(simulator, seed=3, mean_latency=5.0, floor=0.0)
        order = []
        for tag in range(12):
            network.send("m", lambda t=tag: order.append(t))
        simulator.run()
        assert order != sorted(order)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Network(Simulator(), mean_latency=0)
        with pytest.raises(ValueError):
            Network(Simulator(), floor=-1)
