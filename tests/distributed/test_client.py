"""Distributed client/coordinator unit tests (driven step by step)."""

import random

import pytest

from repro.adts import make_account_adt
from repro.distributed import DistributedClient, Network, Site
from repro.sim import Metrics, Simulator


def rig(script, max_step_retries=3, site_count=2):
    """Build one client with a fixed script over fresh sites."""
    simulator = Simulator()
    network = Network(simulator, seed=1, mean_latency=0.5, floor=0.1)
    sites = {}
    for index in range(site_count):
        site = Site(f"S{index}")
        site.create_object(f"A{index}", make_account_adt())
        sites[site.name] = site
    metrics = Metrics()
    client = DistributedClient(
        0,
        simulator,
        network,
        sites,
        lambda _index, _rng: list(script),
        metrics,
        random.Random(0),
        max_step_retries=max_step_retries,
    )
    return simulator, network, sites, metrics, client


class TestHappyPath:
    def test_single_site_commit(self):
        script = [("S0", "A0", "Credit", (10,))]
        simulator, network, sites, metrics, client = rig(script)
        client.start()
        simulator.run_until(20)
        assert metrics.committed >= 1
        assert sites["S0"].snapshot("A0") == 10 * metrics.committed

    def test_cross_site_commit_is_atomic(self):
        script = [("S0", "A0", "Credit", (5,)), ("S1", "A1", "Credit", (7,))]
        simulator, network, sites, metrics, client = rig(script)
        client.start()
        simulator.run_until(30)
        assert metrics.committed >= 1
        # Both sites saw the same number of commits from this client.
        assert sites["S0"].snapshot("A0") == 5 * metrics.committed
        assert sites["S1"].snapshot("A1") == 7 * metrics.committed
        # 2PC traffic: one prepare+vote+commit per participant per txn.
        assert network.sent["prepare"] == network.sent["vote"]

    def test_latency_accrues(self):
        script = [("S0", "A0", "Credit", (1,))]
        simulator, network, sites, metrics, client = rig(script)
        client.start()
        simulator.run_until(20)
        assert metrics.mean_latency > 0


class TestRetriesAndAborts:
    def test_lock_conflict_retries_then_aborts(self):
        # A rival transaction parks an Overdraft lock so the client's
        # credit is refused until retries run out.
        script = [("S0", "A0", "Credit", (1,))]
        simulator, network, sites, metrics, client = rig(
            script, max_step_retries=2
        )
        from repro.core import Invocation

        sites["S0"].handle_invoke("rival", "A0", Invocation("Debit", (1,)))
        client.start()
        simulator.run_until(60)
        assert metrics.conflicts >= 3  # initial + retries per attempt
        assert metrics.aborted >= 1
        assert metrics.committed == 0

    def test_recovers_once_lock_released(self):
        script = [("S0", "A0", "Credit", (1,))]
        simulator, network, sites, metrics, client = rig(script)
        from repro.core import Invocation

        sites["S0"].handle_invoke("rival", "A0", Invocation("Debit", (1,)))
        simulator.schedule(5.0, lambda: sites["S0"].handle_abort("rival"))
        client.start()
        simulator.run_until(60)
        assert metrics.committed >= 1

    def test_crash_tombstone_aborts_transaction(self):
        script = [("S0", "A0", "Credit", (1,)), ("S0", "A0", "Credit", (1,))]
        simulator, network, sites, metrics, client = rig(script)
        # Crash the site shortly after the first operation lands.
        simulator.schedule(2.0, lambda: sites["S0"].crash())
        client.start()
        simulator.run_until(80)
        # The first incarnation died (no-such-transaction or NO vote),
        # later incarnations committed.
        assert metrics.aborted >= 1
        assert metrics.committed >= 1
