"""Fault injection: seeded crash plans and fault-injected distributed runs."""

from repro.core import is_hybrid_atomic, timestamps_respect_precedes
from repro.distributed import run_distributed_experiment
from repro.recovery import CrashPlan
from repro.sim import Simulator


class TestCrashPlan:
    def test_seeded_plans_are_deterministic(self):
        a = CrashPlan.seeded(7, ["S0", "S1"], duration=500.0, rate=0.05)
        b = CrashPlan.seeded(7, ["S0", "S1"], duration=500.0, rate=0.05)
        assert a.events == b.events
        assert len(a) > 0

    def test_different_seeds_differ(self):
        a = CrashPlan.seeded(1, ["S0", "S1"], duration=500.0, rate=0.05)
        b = CrashPlan.seeded(2, ["S0", "S1"], duration=500.0, rate=0.05)
        assert a.events != b.events

    def test_zero_rate_is_empty(self):
        assert len(CrashPlan.seeded(3, ["S0"], duration=100.0, rate=0.0)) == 0

    def test_every_crash_recovers_within_the_run(self):
        plan = CrashPlan.seeded(5, ["S0"], duration=300.0, rate=0.1, downtime=20.0)
        assert plan.events
        for event in plan:
            assert event.time + event.downtime < 300.0

    def test_events_sorted_by_time(self):
        plan = CrashPlan.seeded(9, ["S0", "S1", "S2"], duration=400.0, rate=0.1)
        times = [e.time for e in plan]
        assert times == sorted(times)

    def test_install_skips_dead_sites(self):
        # Two crashes aimed at the same (already dead) site: one recovery.
        from repro.recovery.faults import CrashEvent

        plan = CrashPlan(
            [
                CrashEvent(time=10.0, site="S0", downtime=50.0),
                CrashEvent(time=20.0, site="S0", downtime=50.0),
            ]
        )
        run = _run_with_plan(plan, duration=100.0)
        assert run.metrics.crashes == 1
        assert run.metrics.recoveries == 1


def _run_with_plan(plan, duration=100.0):
    """Drive a durable distributed run under an explicit plan."""
    from repro.distributed.experiment import run_distributed_experiment

    # run_distributed_experiment only takes a rate; emulate an explicit
    # plan by building the pieces it would build.
    import random

    from repro.adts.account import make_account_adt
    from repro.distributed.client import DistributedClient
    from repro.distributed.network import Network
    from repro.distributed.site import Site
    from repro.recovery import MemoryCheckpointStore, MemoryWAL
    from repro.sim.metrics import Metrics

    simulator = Simulator()
    network = Network(simulator, seed=0)
    sites = {}
    stores = {}
    for s in range(2):
        site = Site(f"S{s}", wal=MemoryWAL())
        site.create_object(f"acct{s}", make_account_adt(initial=1000))
        sites[site.name] = site
        stores[site.name] = MemoryCheckpointStore()

    def script(index, rng):
        name = rng.choice(sorted(sites))
        return [(name, f"acct{name[1:]}", "Credit", (rng.randint(1, 5),))]

    metrics = Metrics()
    for index in range(3):
        DistributedClient(
            index, simulator, network, sites, script, metrics,
            random.Random(f"plan/{index}"),
        ).start()
    plan.install(simulator, sites, metrics=metrics, stores=stores)
    simulator.run_until(duration)
    metrics.duration = duration

    from repro.distributed.experiment import DistributedRun

    return DistributedRun(metrics=metrics, network=network, sites=sites)


class TestFaultInjectedRuns:
    def test_crashed_run_recovers_and_stays_hybrid_atomic(self):
        run = run_distributed_experiment(
            duration=200.0,
            seed=1,
            record=True,
            crash_rate=0.02,
            crash_seed=7,
        )
        metrics = run.metrics
        assert metrics.crashes > 0
        assert metrics.recoveries == metrics.crashes
        assert metrics.replayed_records > 0
        assert len(run.recovery_reports) == metrics.recoveries
        history = run.history()
        assert is_hybrid_atomic(history, run.specs())
        assert timestamps_respect_precedes(history)

    def test_checkpointing_run_recovers_too(self):
        run = run_distributed_experiment(
            duration=200.0,
            seed=1,
            record=True,
            crash_rate=0.02,
            crash_seed=7,
            checkpoint_every=50.0,
        )
        assert run.metrics.recoveries == run.metrics.crashes > 0
        assert any(r.from_checkpoint for r in run.recovery_reports)
        assert is_hybrid_atomic(run.history(), run.specs())

    def test_crash_runs_are_deterministic(self):
        kwargs = dict(duration=150.0, seed=4, crash_rate=0.03, crash_seed=2)
        a = run_distributed_experiment(**kwargs)
        b = run_distributed_experiment(**kwargs)
        # Every metric, recovery_time included: simulated recovery takes
        # no wall-clock timings, so the full row is reproducible.
        assert a.metrics.as_row() == b.metrics.as_row()
        assert a.total_balance() == b.total_balance()

    def test_durable_run_without_crashes_matches_volatile(self):
        volatile = run_distributed_experiment(duration=150.0, seed=3)
        durable = run_distributed_experiment(duration=150.0, seed=3, durable=True)
        assert volatile.metrics.committed == durable.metrics.committed
        assert volatile.total_balance() == durable.total_balance()

    def test_file_backed_crash_run(self, tmp_path):
        run = run_distributed_experiment(
            duration=150.0,
            seed=2,
            crash_rate=0.02,
            crash_seed=5,
            wal_dir=str(tmp_path),
        )
        assert run.metrics.recoveries == run.metrics.crashes > 0
        assert (tmp_path / "S0" / "wal.jsonl").exists()
