"""Targeted tests for smaller API surfaces not covered elsewhere."""

import pytest

from repro.adts import FifoQueueSpec, deq, enq, make_account_adt, make_counter_adt
from repro.core import History, HistoryBuilder, Invocation, op
from repro.core.specs import enumerate_legal_with_states
from repro.runtime import OptimisticTransactionManager, TransactionManager
from repro.sim import ClientParams, Metrics


class TestHistoryExtras:
    def test_append_returns_new_history(self):
        from repro.core.events import CommitEvent

        h = History([], validate=False)
        h2 = h.append(CommitEvent("P", "X", 1))
        assert len(h) == 0
        assert len(h2) == 1

    def test_repr_contains_events(self):
        h = HistoryBuilder().commit("P", 1).history()
        assert "commit(1)" in repr(h)

    def test_indexing_and_slicing(self):
        h = (
            HistoryBuilder()
            .operation("P", Invocation("Enq", (1,)), "Ok")
            .commit("P", 1)
            .history()
        )
        assert h[0].transaction == "P"
        assert isinstance(h[:2], History)
        assert len(h[:2]) == 2

    def test_hashable(self):
        a = HistoryBuilder().commit("P", 1).history()
        b = HistoryBuilder().commit("P", 1).history()
        assert hash(a) == hash(b)
        assert a == b


class TestSpecsExtras:
    def test_enumerate_with_states_matches_plain(self):
        spec = FifoQueueSpec()
        universe = [enq(1), deq(1)]
        pairs = dict(enumerate_legal_with_states(spec, universe, 3))
        for sequence, states in pairs.items():
            assert spec.run(sequence) == states

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            list(enumerate_legal_with_states(FifoQueueSpec(), [], -2))

    def test_run_from_dead_states(self):
        spec = FifoQueueSpec()
        assert spec.run_from(frozenset(), (enq(1),)) == frozenset()


class TestManagerExtras:
    def test_max_committed_timestamp_plain_machine(self):
        manager = TransactionManager(compacting=False)
        manager.create_object("A", make_account_adt())
        managed = manager.object("A")
        from repro.core import NEG_INFINITY

        assert managed.max_committed_timestamp() == NEG_INFINITY
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 1))
        assert managed.max_committed_timestamp() == 1

    def test_optimistic_counters(self):
        manager = OptimisticTransactionManager()
        manager.create_object("A", make_account_adt())
        obj = manager.object("A")
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 10))
        assert obj.fast_validations == 1
        t = manager.begin()
        manager.invoke(t, "A", "Debit", 1)
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Debit", 2))
        manager.commit(t)  # slow path: replays, still legal
        assert obj.replay_validations >= 1
        assert obj.failed_validations == 0

    def test_optimistic_intentions_view(self):
        manager = OptimisticTransactionManager()
        manager.create_object("A", make_account_adt())
        t = manager.begin()
        manager.invoke(t, "A", "Credit", 4)
        obj = manager.object("A")
        assert [o.name for o in obj.intentions(t.name)] == ["Credit"]
        assert obj.committed_sequence() == ()


class TestSimExtras:
    def test_jittered_zero_base(self):
        import random

        params = ClientParams(think_time=0.0)
        assert params.jittered(random.Random(0), 0.0) == 0.0

    def test_metrics_retained_intentions_field(self):
        m = Metrics(retained_intentions=7)
        assert m.retained_intentions == 7


class TestReportExtras:
    def test_report_subset_of_types(self):
        from repro.analysis import generate_report

        text = generate_report(types=["File"])
        assert "File" in text
        assert "Account |" not in text

    def test_distributed_run_total_balance(self):
        from repro.distributed import run_distributed_experiment

        run = run_distributed_experiment(
            site_count=2,
            accounts_per_site=1,
            clients=2,
            duration=60,
            seed=3,
            initial_balance=100,
        )
        # Money moves but the committed total only changes through Posts
        # and net credits/debits; at minimum the helper returns a number.
        assert run.total_balance() > 0


class TestOpHelperExtra:
    def test_op_in_relations(self):
        from repro.adts import FILE_CONFLICT

        assert FILE_CONFLICT.related(op("Read", result=0), op("Write", 1))
