"""Shared fixtures: ADT bundles and small operation universes.

The bounded exhaustive checks are exponential in universe size and depth,
so tests default to two-value domains and shallow bounds — enough to
refute any wrong table (every counterexample found during development fit
these bounds) while keeping the suite fast.
"""

import pytest

from repro.adts import (
    account_universe,
    counter_universe,
    directory_universe,
    file_universe,
    make_account_adt,
    make_counter_adt,
    make_directory_adt,
    make_file_adt,
    make_queue_adt,
    make_semiqueue_adt,
    make_set_adt,
    queue_universe,
    semiqueue_universe,
    set_universe,
)


@pytest.fixture
def file_adt():
    return make_file_adt()


@pytest.fixture
def file_ops():
    return file_universe((0, 1))


@pytest.fixture
def queue_adt():
    return make_queue_adt()


@pytest.fixture
def queue_ops():
    return queue_universe((1, 2))


@pytest.fixture
def semiqueue_adt():
    return make_semiqueue_adt()


@pytest.fixture
def semiqueue_ops():
    return semiqueue_universe((1, 2))


@pytest.fixture
def account_adt():
    return make_account_adt()


@pytest.fixture
def account_ops():
    return account_universe((2, 3), (50,))


@pytest.fixture
def counter_adt():
    return make_counter_adt()


@pytest.fixture
def counter_ops():
    return counter_universe((1, 2), (0, 1, 2))


@pytest.fixture
def set_adt():
    return make_set_adt()


@pytest.fixture
def set_ops():
    return set_universe((1, 2))


@pytest.fixture
def directory_adt():
    return make_directory_adt()


@pytest.fixture
def directory_ops():
    return directory_universe(("a",), (1, 2))
