"""``analyze_trace`` / ``render_postmortem``: postmortems from streams.

The fixtures script a serving-tier-shaped event stream by hand (scripted
clock, explicit trace ids) so every report field has a known right
answer; one test then replays a flight-recorder dump through the same
fold to prove the two artifacts stay interchangeable.
"""

from repro.obs import (
    FlightRecorder,
    TraceBus,
    analyze_trace,
    read_jsonl,
)
from repro.obs.analyze import render_postmortem


def served_transaction(bus, clock, name, trace, shard=0, slow=0.0):
    """One wire-served committed transaction with a full phase split."""
    clock[0] += 0.001
    bus.emit(
        "server.decode",
        session="s1",
        action="invoke",
        trace=trace,
        sent=clock[0] - 0.002,
        transaction=name,
    )
    bus.emit(
        "server.request",
        session="s1",
        action="invoke",
        queue_depth=2,
        shard=shard,
        trace=trace,
    )
    bus.emit("txn.begin", transaction=name)
    clock[0] += 0.004 + slow
    bus.emit("txn.invoke", transaction=name, obj="A", operation="Enq")
    bus.emit("txn.respond", transaction=name, obj="A", result="ok")
    bus.emit("txn.commit", transaction=name, timestamp=clock[0])
    bus.emit(
        "server.respond",
        session="s1",
        action="commit",
        trace=trace,
        transaction=name,
        shard=shard,
        queued=0.003,
        executing=0.004 + slow,
        respond=0.0005,
    )


def scripted_trace():
    clock = [100.0]
    bus = TraceBus(clock=lambda: clock[0])
    events = []
    bus.subscribe(events.append)
    served_transaction(bus, clock, "s1.t1", "c1-1", shard=0)
    served_transaction(bus, clock, "s1.t2", "c1-2", shard=1)
    served_transaction(bus, clock, "s1.t3", "c1-3", shard=1, slow=0.5)
    # A contended pair and a shed request round out the stream.
    bus.emit(
        "lock.conflict",
        transaction="s1.t4",
        obj="A",
        operation="Enq",
        holder="s1.t3",
        held="Deq",
        relation="forward",
    )
    bus.emit("server.busy", session="s2", queue_depth=64, shard=0)
    return events


class TestAnalyzeTrace:
    def test_transaction_and_event_tallies(self):
        report = analyze_trace(scripted_trace())
        assert report["events"] == len(scripted_trace())
        txn = report["transactions"]
        assert txn["completed"] == 3
        assert txn["committed"] == 3
        assert txn["aborted"] == 0
        # The conflicting s1.t4 never completed inside the window.
        assert txn["open"] == 1
        assert txn["max_latency"] >= 0.5

    def test_wire_and_machine_phase_medians(self):
        report = analyze_trace(scripted_trace())
        wire = report["phases"]["wire"]
        assert wire["queue"] == 0.003
        assert wire["respond"] == 0.0005
        assert wire["client"] > 0
        machine = report["phases"]["machine"]
        assert machine["executing"] > 0

    def test_conflict_pairs_carry_relation(self):
        report = analyze_trace(scripted_trace())
        assert report["conflicts"]["total"] == 1
        (pair,) = report["conflicts"]["pairs"]
        assert pair == {"pair": "Enq/Deq", "count": 1, "relation": "forward"}

    def test_shard_imbalance(self):
        report = analyze_trace(scripted_trace())
        assert report["shards"]["requests"] == {"shard0": 1, "shard1": 2}
        # max(2) over mean(1.5)
        assert abs(report["shards"]["imbalance"] - (2 / 1.5)) < 1e-9

    def test_queue_timeline_and_busy(self):
        report = analyze_trace(scripted_trace())
        assert report["busy_rejections"] == 1
        timeline = report["queue_timeline"]
        assert timeline, "admitted requests must produce a timeline"
        assert all(row["max_depth"] == 2 for row in timeline)

    def test_slowest_leads_with_the_injected_straggler(self):
        report = analyze_trace(scripted_trace(), slowest=2)
        assert len(report["slowest"]) == 2
        worst = report["slowest"][0]
        assert worst["transaction"] == "s1.t3"
        assert worst["trace"] == "c1-3"
        assert worst["outcome"] == "committed"
        assert worst["waterfall"]["queue"] == 0.003
        assert "machine.executing" in worst["waterfall"]

    def test_violations_are_surfaced(self):
        events = scripted_trace()
        bus = TraceBus(clock=lambda: 999.0)
        bus.subscribe(events.append)
        bus.emit(
            "check.violation",
            rule="commit-serializability",
            txn="s1.t3",
            obj="A",
        )
        report = analyze_trace(events)
        assert len(report["violations"]) == 1
        assert report["violations"][0]["rule"] == "commit-serializability"

    def test_empty_stream(self):
        report = analyze_trace([])
        assert report["events"] == 0
        assert report["transactions"]["completed"] == 0
        assert report["queue_timeline"] == []


class TestRenderPostmortem:
    def test_sections_present(self):
        text = render_postmortem(analyze_trace(scripted_trace()))
        assert "== postmortem ==" in text
        assert "wire phases (median):" in text
        assert "machine phases (median):" in text
        assert "Enq/Deq" in text
        assert "shard requests" in text
        assert "queue depth timeline" in text
        assert "trace=c1-3" in text
        assert "no checker violations in trace" in text

    def test_violation_run_renders_and_omits_clean_line(self):
        events = scripted_trace()
        bus = TraceBus(clock=lambda: 999.0)
        bus.subscribe(events.append)
        bus.emit("check.violation", rule="r", txn="t", obj="A")
        text = render_postmortem(analyze_trace(events))
        assert "VIOLATION: r" in text
        assert "no checker violations" not in text


class TestFlightDumpReplay:
    def test_flight_dump_feeds_the_same_fold(self, tmp_path):
        clock = [100.0]
        bus = TraceBus(clock=lambda: clock[0])
        flight = bus.subscribe(FlightRecorder(str(tmp_path)))
        served_transaction(bus, clock, "s1.t1", "c1-1")
        path = flight.dump("manual")
        report = analyze_trace(read_jsonl(path))
        assert report["transactions"]["committed"] == 1
        assert report["flight_dumps"][0]["reason"] == "manual"
        assert report["slowest"][0]["trace"] == "c1-1"
        text = render_postmortem(report)
        assert "flight dump: manual" in text

    def test_violation_triggered_dump_yields_postmortem(self, tmp_path):
        # The acceptance flow: a checker refutation mid-run snapshots
        # the ring, and the dump replays into a postmortem naming it.
        clock = [100.0]
        bus = TraceBus(clock=lambda: clock[0])
        flight = bus.subscribe(FlightRecorder(str(tmp_path)))
        served_transaction(bus, clock, "s1.t1", "c1-1")
        bus.emit(
            "check.violation", rule="hybrid-atomicity", txn="s1.t1", obj="A"
        )
        assert flight.last_reason == "violation"
        report = analyze_trace(read_jsonl(flight.dumps[0]))
        assert report["violations"][0]["rule"] == "hybrid-atomicity"
        assert "VIOLATION: hybrid-atomicity" in render_postmortem(report)
