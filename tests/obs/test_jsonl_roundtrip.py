"""Property test: the JSONL codec is lossless for trace payloads.

``JSONLSink`` flattens each :class:`TraceEvent` to one JSON line through
:func:`repro.obs.codec.encode_value`; ``read_jsonl`` must restore the
*identical* event — same kind, same timestamp, payload values equal and
of the same Python type (tuples stay tuples, frozensets stay frozen,
fractions stay exact).  Hypothesis drives the payloads over every shape
the codec claims to support, nested arbitrarily.
"""

import io
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.obs import EVENT_KINDS, JSONLSink, TraceEvent, read_jsonl

# NaN is excluded (NaN != NaN breaks any equality round trip); ±inf are
# fine — Python's json emits and re-reads the Infinity literals.
scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**9), max_value=10**9)
    | st.floats(allow_nan=False)
    | st.text(max_size=12)
    | st.fractions()
)

# Set/frozenset members and dict keys must be hashable.
hashables = st.recursive(
    scalars,
    lambda children: st.frozensets(children, max_size=3)
    | st.lists(children, max_size=3).map(tuple),
    max_leaves=6,
)

values = st.recursive(
    scalars | hashables,
    lambda children: (
        st.lists(children, max_size=3)
        | st.lists(children, max_size=3).map(tuple)
        | st.sets(hashables, max_size=3)
        | st.frozensets(hashables, max_size=3)
        | st.dictionaries(st.text(max_size=8), children, max_size=3)
        | st.dictionaries(hashables, children, max_size=3)
    ),
    max_leaves=10,
)

payload_keys = st.text(min_size=1, max_size=12).filter(
    lambda key: key not in ("ts", "kind")
)

events = st.builds(
    TraceEvent,
    ts=st.floats(allow_nan=False, allow_infinity=False),
    # Unknown kinds must survive too (sinks tolerate forward-compat kinds).
    kind=st.sampled_from(sorted(EVENT_KINDS)) | st.just("future.kind"),
    data=st.dictionaries(payload_keys, values, max_size=4),
)


def round_trip(batch, tmp_path):
    path = tmp_path / "trace.jsonl"
    with JSONLSink(str(path)) as sink:
        for event in batch:
            sink(event)
    return read_jsonl(str(path))


def same_shape(a, b):
    """Equality plus *type* identity, recursively.

    ``==`` blurs exactly the distinctions the codec exists to keep:
    ``Fraction(1, 2) == 0.5``, ``(1,) != [1]`` but ``{1} == frozenset({1})``,
    ``True == 1``.  Set elements are matched pairwise by shape (two
    elements of one set are never ``==``, so the matching is unique and
    iteration order cannot produce false negatives).
    """
    if type(a) is not type(b):
        return False
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(
            same_shape(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, dict):
        return (
            len(a) == len(b)
            and all(key in b for key in a)
            and all(same_shape(value, b[key]) for key, value in a.items())
        )
    if isinstance(a, (set, frozenset)):
        remaining = list(b)
        for x in a:
            index = next(
                (i for i, y in enumerate(remaining) if same_shape(x, y)),
                None,
            )
            if index is None:
                return False
            remaining.pop(index)
        return not remaining
    return a == b


@settings(max_examples=200, deadline=None)
@given(batch=st.lists(events, max_size=10))
def test_jsonl_round_trips_bit_exactly(batch):
    buffer = io.StringIO()
    sink = JSONLSink(buffer)
    for event in batch:
        sink(event)
    sink.close()

    import json

    from repro.obs import decode_value

    restored = []
    for line in buffer.getvalue().splitlines():
        record = json.loads(line)
        ts = record.pop("ts")
        kind = record.pop("kind")
        restored.append(
            TraceEvent(
                ts, kind, {k: decode_value(v) for k, v in record.items()}
            )
        )

    assert restored == batch
    assert all(
        event.ts == original.ts
        and event.kind == original.kind
        and same_shape(dict(event.data), dict(original.data))
        for event, original in zip(restored, batch)
    )


def test_jsonl_round_trips_through_a_file(tmp_path):
    batch = [
        TraceEvent(
            0.5,
            "txn.commit",
            {
                "transaction": "T1",
                "timestamp": (3, "S1"),
                "objects": ["a", "b"],
                "states": frozenset({(1, 2), (3, 4)}),
                "exact": Fraction(1, 3),
                "table": {(0, "x"): {"nested": {1, 2}}},
            },
        ),
        TraceEvent(1.0, "future.kind", {"free": None}),
    ]
    from repro.core import NEG_INFINITY

    batch.append(
        TraceEvent(
            2.0,
            "compaction.advance",
            {"obj": "a", "old_horizon": NEG_INFINITY, "new_horizon": 4},
        )
    )
    restored = round_trip(batch, tmp_path)
    assert restored[:2] == batch[:2]
    data = restored[2].data
    assert data["new_horizon"] == 4
    assert data["old_horizon"] is NEG_INFINITY or repr(
        data["old_horizon"]
    ) == repr(NEG_INFINITY)
