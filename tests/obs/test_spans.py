"""SpanBuilder: per-transaction rollups and the latency breakdown."""

import pytest

from repro.obs import SpanBuilder, TraceBus


def make_bus(clock_values):
    it = iter(clock_values)
    bus = TraceBus(clock=lambda: next(it))
    builder = bus.subscribe(SpanBuilder())
    return bus, builder


class TestSpanBuilder:
    def test_committed_span_is_well_formed(self):
        bus, builder = make_bus([0.0, 1.0, 1.5, 4.0])
        bus.emit("txn.begin", transaction="T1", read_only=False)
        bus.emit("txn.invoke", transaction="T1", obj="Q", operation="Enq(1)")
        bus.emit("txn.respond", transaction="T1", obj="Q", result="Ok")
        bus.emit("txn.commit", transaction="T1", timestamp=3)
        (span,) = builder.spans
        assert span.outcome == "committed"
        assert span.well_formed
        assert span.violations() == []
        assert span.latency == pytest.approx(4.0)
        assert span.timestamp == 3
        assert span.objects == {"Q"}
        assert span.invokes == span.responds == 1

    def test_latency_breakdown_classification(self):
        # begin at 0; conflict at 2 (blocked 2); invoke at 3 (executing 1);
        # respond at 3.5 (executing .5); commit at 5 (queued 1.5).
        bus, builder = make_bus([0.0, 2.0, 3.0, 3.5, 5.0])
        bus.emit("txn.begin", transaction="T1")
        bus.emit("lock.conflict", transaction="T1", obj="Q", holder="T0")
        bus.emit("txn.invoke", transaction="T1", obj="Q")
        bus.emit("txn.respond", transaction="T1", obj="Q")
        bus.emit("txn.commit", transaction="T1", timestamp=1)
        (span,) = builder.spans
        assert span.blocked == pytest.approx(2.0)
        assert span.executing == pytest.approx(1.5)
        assert span.queued == pytest.approx(1.5)
        assert span.queued + span.blocked + span.executing == pytest.approx(
            span.latency
        )
        assert span.conflicts == 1

    def test_aborted_span(self):
        bus, builder = make_bus([0.0, 1.0, 2.0])
        bus.emit("txn.begin", transaction="T1")
        bus.emit("lock.deadlock", transaction="T1", holder="T2")
        bus.emit("txn.abort", transaction="T1")
        (span,) = builder.spans
        assert span.outcome == "aborted"
        assert span.well_formed
        assert builder.aborted() == [span]
        assert builder.committed() == []

    def test_read_only_flag(self):
        bus, builder = make_bus([0.0, 1.0])
        bus.emit("txn.begin", transaction="R1", read_only=True)
        bus.emit("txn.commit", transaction="R1", timestamp=5, read_only=True)
        assert builder.spans[0].read_only

    def test_events_after_terminal_count_as_extra(self):
        bus, builder = make_bus([0.0, 1.0, 2.0, 3.0])
        bus.emit("txn.begin", transaction="T1")
        bus.emit("txn.commit", transaction="T1", timestamp=1)
        bus.emit("txn.commit", transaction="T1", timestamp=1, site="S0")
        bus.emit("txn.commit", transaction="T1", timestamp=1, site="S1")
        assert len(builder.spans) == 1
        assert builder.spans[0].extra_events == 2

    def test_wal_and_net_events_are_ignored(self):
        bus, builder = make_bus([0.0, 1.0, 2.0])
        bus.emit("txn.begin", transaction="T1")
        bus.emit("wal.append", transaction="T1", record="commit")
        bus.emit("txn.commit", transaction="T1", timestamp=1)
        (span,) = builder.spans
        assert "wal.append" not in span.kinds
        assert span.well_formed

    def test_span_without_begin_reports_violation(self):
        bus, builder = make_bus([1.0, 2.0])
        bus.emit("txn.invoke", transaction="T1", obj="Q")
        bus.emit("txn.abort", transaction="T1")
        (span,) = builder.spans
        assert not span.well_formed
        assert any("txn.begin" in v for v in span.violations())

    def test_open_span_stays_open(self):
        bus, builder = make_bus([0.0, 1.0])
        bus.emit("txn.begin", transaction="T1")
        bus.emit("txn.invoke", transaction="T1", obj="Q")
        assert builder.spans == []
        assert "T1" in builder.open


class TestPendingBound:
    def test_pending_stash_evicts_fifo_past_the_limit(self):
        # Wire context for transactions that never begin must not grow
        # the stash without bound: the oldest entries are dropped FIFO.
        ticks = [float(i) for i in range(10)]
        bus = TraceBus(clock=lambda: ticks.pop(0))
        builder = bus.subscribe(SpanBuilder(pending_limit=3))
        for index in range(5):
            bus.emit(
                "server.decode",
                session="s1",
                action="invoke",
                trace=f"c{index}",
                sent=0.0,
                transaction=f"T{index}",
            )
        assert len(builder._pending) == 3
        assert builder.pending_evicted == 2
        assert set(builder._pending) == {"T2", "T3", "T4"}

    def test_survivor_still_promotes_to_a_real_span(self):
        # An entry that dodged eviction keeps its wire phases when the
        # machine finally opens the transaction.
        ticks = [float(i) for i in range(10)]
        bus = TraceBus(clock=lambda: ticks.pop(0))
        builder = bus.subscribe(SpanBuilder(pending_limit=2))
        for index in range(3):
            bus.emit(
                "server.decode",
                session="s1",
                action="invoke",
                trace=f"c{index}",
                sent=0.0,
                transaction=f"T{index}",
            )
        assert builder.pending_evicted == 1
        bus.emit("txn.begin", transaction="T2")
        bus.emit("txn.commit", transaction="T2", timestamp=1)
        (span,) = builder.spans
        assert span.trace == "c2"
        assert span.phases["client"] == pytest.approx(2.0)
        assert "T2" not in builder._pending
