"""Trace completeness: every finished transaction yields one good span.

These are the subsystem's end-to-end guarantees: seeded simulation runs
(including aborts, read-only transactions, crash injection, distributed
2PC, and WAL recovery) produce event streams whose per-transaction spans
are exactly one per finished transaction and well formed — begin first,
invokes matched by responses, terminal last.
"""

import collections

from repro.adts import get_adt
from repro.obs import (
    MetricsRegistry,
    RingBufferSink,
    SpanBuilder,
    TraceBus,
)
from repro.obs.events import EVENT_KINDS
from repro.obs.spans import SPAN_IRRELEVANT_KINDS, WIRE_SPAN_KINDS
from repro.recovery import MemoryWAL, recover_manager
from repro.runtime.manager import TransactionManager
from repro.sim import AccountWorkload, ClientParams, QueueWorkload, run_experiment


def traced_run(workload, **kwargs):
    bus = TraceBus()
    builder = bus.subscribe(SpanBuilder())
    registry = MetricsRegistry()
    metrics = run_experiment(workload, tracer=bus, registry=registry, **kwargs)
    return metrics, builder, registry


def assert_spans_match(metrics, builder):
    committed = builder.committed()
    aborted = builder.aborted()
    assert len(committed) == metrics.committed
    assert len(aborted) == metrics.aborted
    names = [span.transaction for span in builder.spans]
    assert len(names) == len(set(names)), "a transaction produced two spans"
    for span in builder.spans:
        assert span.well_formed, (
            f"{span.transaction}: {span.violations()} ({span.kinds})"
        )


class TestSimulationCompleteness:
    def test_account_run_all_spans_well_formed(self):
        metrics, builder, _ = traced_run(
            AccountWorkload(), duration=120.0, seed=1
        )
        assert metrics.committed > 0
        assert_spans_match(metrics, builder)

    def test_contended_queue_run_has_aborts_and_matches(self):
        metrics, builder, _ = traced_run(
            QueueWorkload(), duration=200.0, seed=2
        )
        assert metrics.aborted > 0, "want the abort path exercised"
        assert_spans_match(metrics, builder)

    def test_block_policy_run_matches(self):
        metrics, builder, _ = traced_run(
            AccountWorkload(),
            duration=150.0,
            seed=3,
            params=ClientParams(wait_policy="block"),
        )
        assert_spans_match(metrics, builder)

    def test_crash_injected_run_matches(self):
        metrics, builder, registry = traced_run(
            AccountWorkload(),
            duration=200.0,
            seed=4,
            crash_rate=0.05,
            wal=MemoryWAL(),
        )
        assert metrics.crashes > 0
        assert registry.counter("site.crashes").value == metrics.crashes
        assert_spans_match(metrics, builder)

    def test_registry_agrees_with_metrics(self):
        metrics, _, registry = traced_run(
            AccountWorkload(), duration=120.0, seed=5
        )
        assert registry.counter("txn.committed").value == metrics.committed
        assert registry.counter("txn.aborted").value == metrics.aborted
        assert registry.counter("lock.conflicts").value == metrics.conflicts
        # absorb_metrics imported the classic row alongside
        assert registry.counter("committed").value == metrics.committed
        assert registry.gauge("retained_intentions").value == (
            metrics.retained_intentions
        )
        assert registry.histogram("txn.latency").total == metrics.committed

    def test_compaction_events_name_horizon_motion(self):
        bus = TraceBus()
        ring = bus.subscribe(RingBufferSink())
        run_experiment(AccountWorkload(), duration=120.0, seed=1, tracer=bus)
        advances = [e for e in ring.events() if e.kind == "compaction.advance"]
        assert advances, "compaction never advanced"
        for event in advances:
            assert event.data["new_horizon"] >= event.data["old_horizon"]
            assert event.data["collapsed"] >= 1
            assert event.data["forgotten"]


class TestServingKindCoverage:
    """Every serving-tier kind must be *classified* by the span builder.

    ``server.*`` and ``flight.*`` events either fold into a span's wire
    phases (:data:`WIRE_SPAN_KINDS`) or are declared span-irrelevant
    (:data:`SPAN_IRRELEVANT_KINDS`).  A new kind added to the taxonomy
    without a classification would silently fall into the builder's
    generic transaction path — this test makes that a loud failure.
    """

    def test_every_server_kind_is_classified(self):
        serving = {
            kind
            for kind in EVENT_KINDS
            if kind.startswith(("server.", "flight."))
        }
        classified = WIRE_SPAN_KINDS | SPAN_IRRELEVANT_KINDS
        unclassified = serving - classified
        assert not unclassified, (
            f"serving-tier kinds unknown to the span builder: "
            f"{sorted(unclassified)} — add each to WIRE_SPAN_KINDS or "
            "SPAN_IRRELEVANT_KINDS in repro.obs.spans"
        )

    def test_classifications_name_real_kinds(self):
        ghosts = (WIRE_SPAN_KINDS | SPAN_IRRELEVANT_KINDS) - EVENT_KINDS
        assert not ghosts, f"span classifications for retired kinds: {ghosts}"

    def test_classifications_do_not_overlap(self):
        assert not WIRE_SPAN_KINDS & SPAN_IRRELEVANT_KINDS


class TestReadOnlyPath:
    def test_readonly_transaction_yields_one_readonly_span(self):
        bus = TraceBus(clock=lambda: 0.0)
        builder = bus.subscribe(SpanBuilder())
        manager = TransactionManager(tracer=bus)
        manager.create_object("C", get_adt("Counter"))
        writer = manager.begin()
        manager.invoke(writer, "C", "Inc", 10)
        manager.commit(writer)
        reader = manager.begin_readonly()
        assert manager.invoke(reader, "C", "Read") == 10
        manager.commit(reader)
        readonly = [span for span in builder.spans if span.read_only]
        assert len(readonly) == 1
        assert readonly[0].outcome == "committed"
        assert readonly[0].well_formed


class TestRecoveryPath:
    def test_recovery_emits_replay_and_recover_events(self):
        wal = MemoryWAL()
        metrics = run_experiment(
            AccountWorkload(), duration=80.0, seed=6, wal=wal
        )
        assert metrics.committed > 0
        bus = TraceBus()
        ring = bus.subscribe(RingBufferSink())
        manager, report = recover_manager(wal, tracer=bus)
        kinds = collections.Counter(e.kind for e in ring.events())
        assert kinds["wal.replay"] == report.replayed_records
        assert kinds["site.recover"] == 1
        recover_event = next(
            e for e in ring.events() if e.kind == "site.recover"
        )
        assert recover_event.data["replayed_records"] == report.replayed_records
        # The rebuilt machines carry the tracer for post-recovery tracing.
        for managed in manager.objects.values():
            assert managed.machine.tracer is bus


class TestDistributedPath:
    def test_distributed_run_spans_and_network_events(self):
        from repro.distributed import run_distributed_experiment

        bus = TraceBus()
        builder = bus.subscribe(SpanBuilder())
        registry = MetricsRegistry()
        run = run_distributed_experiment(
            site_count=2,
            clients=4,
            duration=150.0,
            seed=7,
            tracer=bus,
            registry=registry,
        )
        metrics = run.metrics
        assert metrics.committed > 0
        committed = builder.committed()
        assert len(committed) == metrics.committed
        names = [span.transaction for span in builder.spans]
        assert len(names) == len(set(names))
        for span in committed:
            assert span.well_formed, (
                f"{span.transaction}: {span.violations()}"
            )
        # Per-site commit deliveries land after the coordinator's verdict.
        assert sum(span.extra_events for span in committed) > 0
        assert registry.counter("net.messages").value == run.network.total_messages
