"""The streaming atomicity checker: clean runs certify, mutations refute.

Two halves:

* **certification** — every execution engine in the repo (locking
  protocols, optimistic, read-only multiversion, replicated quorums,
  the multi-site bank with and without crashes) runs with the oracle
  attached and comes out ``ok``;
* **refutation** — recorded traces are mutated the way real bugs would
  corrupt them (swapped commit timestamps, a dropped conflict refusal,
  a rewound compaction horizon, an uncommitted transaction folded into
  a version) and the oracle must catch each one, with a small witness.
"""

import dataclasses

import pytest

from repro.adts import make_account_adt
from repro.obs import AtomicityChecker, JSONLSink, TraceBus, read_jsonl
from repro.protocols import ALL_PROTOCOLS, HYBRID, get_protocol
from repro.runtime import TransactionManager
from repro.sim import AccountWorkload, QueueWorkload, run_experiment


def certify(workload, protocol, **kwargs):
    bus = TraceBus()
    checker = bus.subscribe(AtomicityChecker(emit_to=bus))
    kwargs.setdefault("duration", 80.0)
    kwargs.setdefault("seed", 11)
    run_experiment(workload, protocol, tracer=bus, **kwargs)
    return checker


def recorded(build):
    """Run ``build(bus)`` and return the event list it emitted."""
    bus = TraceBus()
    events = []
    bus.subscribe(events.append)
    build(bus)
    return events


def replayed(events):
    return AtomicityChecker().replay(events)


class TestCleanRuns:
    def test_sim_account_hybrid(self):
        checker = certify(AccountWorkload(), HYBRID)
        assert checker.ok, checker.render_report()
        report = checker.report()
        assert report["verdict"] == "clean"
        assert report["transactions"]["committed"] > 0
        assert all(
            info["legality_checked"] and info["conflict_checked"]
            for info in report["objects"].values()
        )

    @pytest.mark.parametrize(
        "protocol", ALL_PROTOCOLS, ids=lambda p: p.name
    )
    def test_every_locking_protocol(self, protocol):
        checker = certify(QueueWorkload(), protocol, duration=60.0)
        assert checker.ok, checker.render_report()

    def test_optimistic_engine(self):
        checker = certify(
            AccountWorkload(), get_protocol("optimistic"), duration=60.0
        )
        assert checker.ok, checker.render_report()

    def test_crashy_manager_run(self):
        checker = certify(
            AccountWorkload(), HYBRID, duration=120.0, crash_rate=0.05
        )
        assert checker.ok, checker.render_report()
        assert checker.kind_counts["site.crash"] > 0

    def test_readonly_multiversion_reader(self):
        from repro.adts import make_file_adt

        def build(bus):
            manager = TransactionManager(tracer=bus)
            manager.create_object("F", make_file_adt())
            writer = manager.begin()
            manager.invoke(writer, "F", "Write", 1)
            manager.commit(writer)
            reader = manager.begin_readonly()
            manager.invoke(reader, "F", "Read")
            writer2 = manager.begin()
            manager.invoke(writer2, "F", "Write", 2)
            manager.commit(writer2)
            manager.commit(reader)

        checker = replayed(recorded(build))
        assert checker.ok, checker.render_report()
        # The reader really did commit *inside* the established order.
        report = checker.report()
        assert report["transactions"]["committed"] == 3

    def test_replicated_manager(self):
        from repro.replication import QuorumAssignment, ReplicatedTransactionManager

        def build(bus):
            manager = ReplicatedTransactionManager(tracer=bus)
            assignment = QuorumAssignment.majority(3, ["Credit", "Post", "Debit"])
            manager.create_object("A", make_account_adt(), assignment)
            for amount in (100, 25, 3):
                txn = manager.begin()
                manager.invoke(txn, "A", "Credit", amount)
                manager.commit(txn)
            loser = manager.begin()
            manager.invoke(loser, "A", "Debit", 1)
            manager.abort(loser)

        checker = replayed(recorded(build))
        assert checker.ok, checker.render_report()
        assert checker.kind_counts["quorum.assemble"] > 0

    def test_distributed_clean_and_crashy(self):
        from repro.distributed import run_distributed_experiment

        for crash_rate in (0.0, 0.03):
            bus = TraceBus()
            checker = bus.subscribe(AtomicityChecker(emit_to=bus))
            run_distributed_experiment(
                site_count=2,
                clients=3,
                duration=120.0,
                seed=5,
                crash_rate=crash_rate,
                crash_seed=3,
                durable=True,
                tracer=bus,
            )
            assert checker.ok, checker.render_report()
            if crash_rate:
                assert checker.kind_counts["site.recover"] > 0

    def test_jsonl_round_trip_replay(self, tmp_path):
        path = tmp_path / "run.jsonl"
        bus = TraceBus()
        live = bus.subscribe(AtomicityChecker())
        with JSONLSink(str(path)) as sink:
            bus.subscribe(sink)
            run_experiment(
                AccountWorkload(), HYBRID, duration=80.0, seed=11, tracer=bus
            )
        assert live.ok
        offline = AtomicityChecker().replay(read_jsonl(str(path)))
        assert offline.ok, offline.render_report()
        assert offline.report()["events"] == live.report()["events"]


def manager_commit_pair():
    """Two sequential committed transactions at one Account object."""

    def build(bus):
        manager = TransactionManager(tracer=bus)
        manager.create_object("A", make_account_adt())
        t1 = manager.begin()
        manager.invoke(t1, "A", "Credit", 100)
        manager.commit(t1)
        t2 = manager.begin()
        manager.invoke(t2, "A", "Debit", 50)
        manager.commit(t2)

    return recorded(build)


class TestMutations:
    def test_swapped_commit_timestamps_are_caught(self):
        events = manager_commit_pair()
        assert replayed(events).ok  # the unmutated trace certifies

        commits = [
            i for i, e in enumerate(events) if e.kind == "txn.commit"
        ]
        assert len(commits) == 2
        i, j = commits
        mutated = list(events)
        mutated[i] = dataclasses.replace(
            events[i],
            data={**events[i].data, "timestamp": events[j].data["timestamp"]},
        )
        mutated[j] = dataclasses.replace(
            events[j],
            data={**events[j].data, "timestamp": events[i].data["timestamp"]},
        )
        checker = replayed(mutated)
        assert not checker.ok
        rules = {v.rule for v in checker.violations}
        # Debit(50) observed Credit's commit, so its rewound timestamp
        # breaks §3.3; re-sorting also puts the overdraft-free Debit
        # before the Credit, which is serially illegal.
        assert rules & {"commit-timestamp", "serial-order"}

    def test_dropped_conflict_refusal_is_caught(self):
        held = {}

        def build(bus):
            manager = TransactionManager(tracer=bus)
            manager.create_object("A", make_account_adt())
            t0 = manager.begin()
            manager.invoke(t0, "A", "Credit", 100)
            manager.commit(t0)
            t1 = manager.begin()
            manager.invoke(t1, "A", "Debit", 5)
            t2 = manager.begin()
            held["t2"] = t2.name
            with pytest.raises(Exception):
                manager.invoke(t2, "A", "Debit", 3)

        events = recorded(build)
        refusals = [
            i for i, e in enumerate(events) if e.kind == "lock.conflict"
        ]
        assert refusals, "the second Debit should have been refused"
        assert replayed(events).ok

        # Mutate: the machine *accepts* the conflicting Debit instead of
        # refusing it — splice in the invoke/respond pair the buggy run
        # would have produced (same operation the holder holds).
        accepted = next(
            e for e in events if e.kind == "txn.invoke"
            and e.data.get("operation") == "Debit"
        )
        response = next(
            e for e in events if e.kind == "txn.respond"
            and e.data.get("transaction") == accepted.data["transaction"]
        )
        spliced = [
            dataclasses.replace(
                accepted,
                data={**accepted.data, "transaction": held["t2"], "args": (3,)},
            ),
            dataclasses.replace(
                response, data={**response.data, "transaction": held["t2"]}
            ),
        ]
        mutated = (
            events[: refusals[0]] + spliced + events[refusals[0] + 1:]
        )
        checker = replayed(mutated)
        assert not checker.ok
        assert any(v.rule == "conflict-acceptance" for v in checker.violations)

    def sim_trace(self):
        bus = TraceBus()
        events = []
        bus.subscribe(events.append)
        run_experiment(
            AccountWorkload(), HYBRID, duration=150.0, seed=3, tracer=bus
        )
        return events

    def test_rewound_horizon_is_caught(self):
        events = self.sim_trace()
        assert replayed(events).ok
        compactions = [
            i for i, e in enumerate(events)
            if e.kind == "compaction.advance"
            and isinstance(e.data.get("old_horizon"), int)
        ]
        assert compactions, "the account run should compact"
        index = compactions[-1]
        data = dict(events[index].data)
        data["new_horizon"] = data["old_horizon"] - 1
        mutated = list(events)
        mutated[index] = dataclasses.replace(events[index], data=data)
        checker = replayed(mutated)
        assert not checker.ok
        assert any(
            v.rule == "compaction" and "rewound" in v.message
            for v in checker.violations
        )

    def test_collapsed_uncommitted_transaction_is_caught(self):
        events = self.sim_trace()
        begun = {
            e.data["transaction"]
            for e in events
            if e.kind == "txn.begin"
        }
        committed = {
            e.data.get("transaction")
            for e in events
            if e.kind == "txn.commit"
        }
        uncommitted = sorted(begun - committed)
        assert uncommitted, "some transaction should have aborted"
        index = next(
            i for i, e in enumerate(events) if e.kind == "compaction.advance"
        )
        data = dict(events[index].data)
        data["forgotten"] = tuple(data["forgotten"]) + (uncommitted[0],)
        mutated = list(events)
        mutated[index] = dataclasses.replace(events[index], data=data)
        checker = replayed(mutated)
        assert not checker.ok
        assert any(
            v.rule == "compaction" and "never committed" in v.message
            for v in checker.violations
        )

    def test_witness_is_minimal_and_published(self):
        events = manager_commit_pair()
        commits = [
            i for i, e in enumerate(events) if e.kind == "txn.commit"
        ]
        i, j = commits
        mutated = list(events)
        mutated[i] = dataclasses.replace(
            events[i],
            data={**events[i].data, "timestamp": events[j].data["timestamp"]},
        )
        mutated[j] = dataclasses.replace(
            events[j],
            data={**events[j].data, "timestamp": events[i].data["timestamp"]},
        )
        bus = TraceBus()
        published = []
        bus.subscribe(published.append)
        checker = AtomicityChecker(emit_to=bus).replay(mutated)
        assert not checker.ok
        # The refutation landed back on the bus as a first-class event.
        assert any(e.kind == "check.violation" for e in published)
        violation = checker.violations[0]
        # Delta debugging keeps only what reproduces the refutation —
        # far fewer events than the trace, and replaying the witness
        # through a fresh checker refutes again.
        assert 0 < len(violation.witness) < len(mutated)
        fresh = AtomicityChecker().replay(violation.witness)
        assert any(v.rule == violation.rule for v in fresh.violations)
