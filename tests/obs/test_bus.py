"""The trace bus: emit-if-anyone-listens semantics and typed events."""

from repro.obs import EVENT_KINDS, TraceBus, TraceEvent


def make_clock(values):
    it = iter(values)
    return lambda: next(it)


class TestTraceBus:
    def test_emit_without_sinks_is_a_no_op(self):
        bus = TraceBus(clock=make_clock([]))  # a clock read would raise
        bus.emit("txn.begin", transaction="T1")
        assert bus.emitted == 0
        assert not bus.active

    def test_emit_fans_out_to_every_sink(self):
        bus = TraceBus(clock=make_clock([1.0, 2.0]))
        first, second = [], []
        bus.subscribe(first.append)
        bus.subscribe(second.append)
        bus.emit("txn.begin", transaction="T1")
        bus.emit("txn.commit", transaction="T1", timestamp=7)
        assert [e.kind for e in first] == ["txn.begin", "txn.commit"]
        assert first == second
        assert bus.emitted == 2
        assert first[0].ts == 1.0 and first[1].ts == 2.0

    def test_subscribe_returns_the_sink(self):
        bus = TraceBus()

        def sink(event):
            pass

        assert bus.subscribe(sink) is sink

    def test_unsubscribe_detaches(self):
        bus = TraceBus(clock=make_clock([1.0]))
        events = []
        bus.subscribe(events.append)
        bus.unsubscribe(events.append)
        bus.unsubscribe(events.append)  # absent: no-op
        bus.emit("txn.begin", transaction="T1")
        assert events == []
        assert not bus.active

    def test_clock_is_rebindable(self):
        bus = TraceBus()
        bus.clock = lambda: 42.5
        events = []
        bus.subscribe(events.append)
        bus.emit("lock.conflict", transaction="T1")
        assert events[0].ts == 42.5


class TestTraceEvent:
    def test_transaction_property(self):
        event = TraceEvent(1.0, "txn.begin", {"transaction": "T9"})
        assert event.transaction == "T9"
        assert TraceEvent(1.0, "compaction.advance", {"obj": "Q"}).transaction is None

    def test_to_dict_flattens_payload(self):
        event = TraceEvent(2.5, "lock.conflict", {"transaction": "T1", "obj": "A"})
        assert event.to_dict() == {
            "ts": 2.5,
            "kind": "lock.conflict",
            "transaction": "T1",
            "obj": "A",
        }

    def test_event_kinds_cover_the_taxonomy(self):
        expected = {
            "txn.begin",
            "txn.invoke",
            "txn.respond",
            "txn.commit",
            "txn.abort",
            "lock.conflict",
            "lock.block",
            "lock.wait",
            "lock.deadlock",
            "compaction.advance",
            "wal.append",
            "wal.replay",
            "net.send",
            "net.deliver",
            "site.crash",
            "site.recover",
        }
        assert expected <= set(EVENT_KINDS)
