"""The profiler triad: sampler, critical path, contention attribution.

The sampler is tested two ways: lifecycle against the real thread (it
must start, sample, stop, and leave no thread behind) and aggregation
against synthetic frame objects, which makes the folded output exact —
determinism is the whole point of the :class:`StackAggregator` fold, so
the assertions here are byte-level, not fuzzy.  The critical-path and
contention analyzers are pure functions over hand-built spans and event
lists, so their math is asserted exactly too.
"""

import threading
import time

import pytest

from repro.obs import (
    SamplingProfiler,
    SpanBuilder,
    StackAggregator,
    TraceBus,
    contention_profile,
    critical_path,
    read_profile,
    render_contention,
    render_critical_path,
    render_profile,
    write_profile,
)
from repro.obs.prof import gating_phase
from repro.obs.spans import Span


class FakeCode:
    def __init__(self, name):
        self.co_name = name


class FakeFrame:
    """Just enough of a frame for ``StackAggregator.add_frame``."""

    def __init__(self, module, name, back=None):
        self.f_code = FakeCode(name)
        self.f_globals = {"__name__": module}
        self.f_back = back


def chain(*labels):
    """Build a leaf frame for ``mod.fn`` labels, root first."""
    frame = None
    for label in labels:
        module, _, name = label.rpartition(".")
        frame = FakeFrame(module, name, back=frame)
    return frame


class TestStackAggregator:
    def test_identical_stacks_merge(self):
        agg = StackAggregator()
        agg.add(("root", "leaf"))
        agg.add(("root", "leaf"), count=2)
        agg.add(("root", "other"))
        assert agg.samples == 4
        assert agg.folded_lines() == ["root;leaf 3", "root;other 1"]
        assert agg.folded() == "root;leaf 3\nroot;other 1\n"

    def test_output_order_is_deterministic_not_insertion(self):
        first, second = StackAggregator(), StackAggregator()
        first.add(("b",))
        first.add(("a",))
        second.add(("a",))
        second.add(("b",))
        assert first.folded() == second.folded()

    def test_deep_stacks_keep_the_leaf_end(self):
        agg = StackAggregator(max_depth=3)
        agg.add(("r", "f1", "f2", "f3", "hot"))
        assert agg.truncated == 1
        (line,) = agg.folded_lines()
        assert line == "<truncated>;f2;f3;hot 1"

    def test_add_frame_walks_leaf_to_root(self):
        agg = StackAggregator()
        agg.add_frame(chain("m.outer", "m.inner"), root_label="thread:T")
        assert agg.folded_lines() == ["thread:T;m.outer;m.inner 1"]

    def test_frame_totals_self_vs_total(self):
        agg = StackAggregator()
        agg.add(("a", "b"), count=3)
        agg.add(("a",), count=2)
        totals = agg.frame_totals()
        assert totals["a"] == {"self": 2, "total": 5}
        assert totals["b"] == {"self": 3, "total": 3}

    def test_recursive_stack_counts_total_once(self):
        agg = StackAggregator()
        agg.add(("f", "f", "f"))
        assert agg.frame_totals()["f"] == {"self": 1, "total": 1}


class TestSamplingProfiler:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_lifecycle_leaves_no_thread_behind(self):
        profiler = SamplingProfiler(hz=500.0)
        assert not profiler.running
        profiler.start()
        profiler.start()  # idempotent while running
        assert profiler.running
        assert any(
            t.name == "repro-prof-sampler" for t in threading.enumerate()
        )
        deadline = time.monotonic() + 5.0
        while profiler.samples == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        profiler.stop()
        profiler.stop()  # idempotent when stopped
        assert not profiler.running
        assert not any(
            t.name == "repro-prof-sampler" for t in threading.enumerate()
        )
        assert profiler.samples > 0
        assert profiler.duration > 0.0

    def test_context_manager_stops_on_exit(self):
        with SamplingProfiler(hz=500.0) as profiler:
            assert profiler.running
        assert not profiler.running

    def test_synthetic_sampling_is_deterministic(self):
        profiler = SamplingProfiler(
            frames=lambda: {},  # never called: frames passed explicitly
        )
        frames = {
            7: chain("app.main", "app.work"),
            3: chain("app.main", "app.idle"),
        }
        recorded = profiler.sample_once(frames=frames)
        profiler.sample_once(frames=frames)
        assert recorded == 2
        assert profiler.rounds == 2
        assert profiler.samples == 4
        # Unknown idents label the thread by number; order is by ident.
        assert profiler.folded() == (
            "thread:3;app.main;app.idle 2\nthread:7;app.main;app.work 2\n"
        )

    def test_sampler_excludes_its_own_thread(self):
        profiler = SamplingProfiler(hz=500.0)
        profiler.start()
        try:
            deadline = time.monotonic() + 5.0
            while profiler.samples == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            profiler.stop()
        assert profiler.samples > 0
        for stack, _count in profiler.aggregator.stacks():
            assert not stack.startswith("thread:repro-prof-sampler")

    def test_status_is_json_friendly(self):
        profiler = SamplingProfiler(hz=50.0)
        status = profiler.status()
        assert status == {
            "running": False,
            "hz": 50.0,
            "rounds": 0,
            "samples": 0,
            "truncated": 0,
            "duration_seconds": 0.0,
        }


def span(client=0.0, queue=0.0, execute=0.0, respond=0.0, blocked=0.0):
    built = Span(transaction="T", begin_ts=0.0, end_ts=1.0, outcome="committed")
    built.phases = {
        "client": client,
        "queue": queue,
        "execute": execute,
        "respond": respond,
    }
    built.blocked = blocked
    return built


class TestCriticalPath:
    def test_gating_phase_is_the_argmax(self):
        assert gating_phase(span(client=1.0, queue=3.0)) == "queue"
        assert gating_phase(span(respond=0.1, blocked=0.5)) == "lock-wait"
        assert gating_phase(span()) is None

    def test_ties_break_toward_the_earlier_phase(self):
        assert gating_phase(span(client=2.0, execute=2.0)) == "client"

    def test_empty_budget_spans_are_unattributed(self):
        report = critical_path([span(queue=1.0), span()])
        assert report["spans"] == 2
        assert report["attributed"] == 1
        assert report["attributed_fraction"] == pytest.approx(0.5)
        assert report["gating"] == {"queue": 1}

    def test_phase_budget_percentiles_and_scale(self):
        spans = [span(queue=float(i)) for i in range(1, 101)]
        report = critical_path(spans, scale=1e3)
        budget = report["phase_budget"]["queue"]
        assert budget["p50"] == pytest.approx(51_000.0)
        assert budget["p99"] == pytest.approx(100_000.0)
        assert budget["total"] == pytest.approx(5_050_000.0)
        assert report["total"]["p99"] == pytest.approx(100_000.0)
        # Phases nobody paid stay at zero rather than vanishing.
        assert report["phase_budget"]["respond"]["total"] == 0.0

    def test_what_if_is_the_p99_with_the_phase_removed(self):
        # Ten spans: queue dominates one outlier; removing queue must
        # re-rank, not just subtract from the old p99 holder.
        spans = [span(client=1.0, queue=0.1) for _ in range(9)]
        spans.append(span(client=0.1, queue=5.0))
        report = critical_path(spans)
        assert report["total"]["p99"] == pytest.approx(5.1)
        what_if = report["what_if"]["queue"]
        # Re-ranking: the outlier drops to 0.1, so the new p99 is a
        # former 1.1 span minus its 0.1 of queue — not 5.1 minus 5.0.
        assert what_if["p99_without"] == pytest.approx(1.0)
        assert what_if["p99_drop"] == pytest.approx(4.1)

    def test_empty_input(self):
        report = critical_path([])
        assert report["spans"] == 0
        assert report["attributed_fraction"] == 0.0
        assert report["total"] == {"p50": 0.0, "p99": 0.0}


def canned_contention_bus():
    """A scripted conflict trace: T1 pays 2s to one pair, T2 pays 1s."""
    ticks = iter([0.0, 1.0, 3.0, 4.0, 10.0, 11.0, 12.0, 13.0, 14.0])
    bus = TraceBus(clock=lambda: next(ticks))
    events = []
    bus.subscribe(events.append)
    bus.emit("txn.begin", transaction="T1")  # t=0
    bus.emit("txn.begin", transaction="T2")  # t=1
    bus.emit(  # t=3: T1 blocked 3-0=... anchor is T1's begin at 0 -> 3s
        "lock.conflict",
        transaction="T1",
        obj="Q",
        operation="Enq(1)",
        holder="T2",
        held="Deq()",
        relation="queue conflicts",
    )
    bus.emit("lock.wait", transaction="T1", holder="T2")  # t=4: +1s, inherits
    bus.emit("txn.commit", transaction="T1", timestamp=1)  # t=10: anchor cleared
    bus.emit(  # t=11: T2's anchor is its begin at t=1... no: last event t=1 -> 10s
        "lock.block", transaction="T2", obj="A", operation="Audit()"
    )
    bus.emit("txn.abort", transaction="T2")  # t=12
    bus.emit("txn.begin", transaction="T3")  # t=13
    bus.emit("lock.wait", transaction="T3", holder="T1")  # t=14: no prior pair
    return events


class TestContentionProfile:
    def test_attribution_keys_and_intervals(self):
        report = contention_profile(canned_contention_bus())
        assert report["events"] == 4
        # T1: 3s conflict + 1s inherited wait; T2: 10s block; T3: 1s
        # orphan wait.
        assert report["blocked_time"] == pytest.approx(15.0)
        assert report["pairs"] == 3
        by_pair = {row["pair"]: row for row in report["rows"]}
        conflict = by_pair["Enq(1)/Deq()"]
        assert conflict["object"] == "Q"
        assert conflict["relation"] == "queue conflicts"
        assert conflict["events"] == 2
        assert conflict["blocked_time"] == pytest.approx(4.0)
        block = by_pair["Audit()/(no legal outcome)"]
        assert block["blocked_time"] == pytest.approx(10.0)
        orphan = by_pair["(wait)/(unknown holder)"]
        assert orphan["blocked_time"] == pytest.approx(1.0)

    def test_rows_rank_by_blocked_time(self):
        report = contention_profile(canned_contention_bus())
        times = [row["blocked_time"] for row in report["rows"]]
        assert times == sorted(times, reverse=True)
        shares = [row["share"] for row in report["rows"]]
        assert sum(shares) == pytest.approx(1.0)

    def test_terminal_clears_the_anchor(self):
        # A conflict right after a commit must not be charged the whole
        # inter-transaction gap: the anchor resets at the terminal.
        ticks = iter([0.0, 100.0, 101.0, 102.0])
        bus = TraceBus(clock=lambda: next(ticks))
        events = []
        bus.subscribe(events.append)
        bus.emit("txn.begin", transaction="T1")
        bus.emit("txn.commit", transaction="T1", timestamp=1)
        bus.emit("txn.begin", transaction="T1")
        bus.emit(
            "lock.conflict",
            transaction="T1",
            obj="Q",
            operation="Enq(1)",
            holder="T2",
            held="Deq()",
            relation="queue conflicts",
        )
        report = contention_profile(events)
        assert report["blocked_time"] == pytest.approx(1.0)

    def test_top_trims_rows_but_not_totals(self):
        report = contention_profile(canned_contention_bus(), top=1)
        assert len(report["rows"]) == 1
        assert report["pairs"] == 3
        assert report["blocked_time"] == pytest.approx(15.0)

    def test_empty_stream(self):
        report = contention_profile([])
        assert report == {
            "events": 0,
            "blocked_time": 0.0,
            "pairs": 0,
            "rows": [],
        }
        assert "no lock conflicts" in render_contention(report)


class TestDumpLoadRender:
    def make_profiler(self):
        profiler = SamplingProfiler(frames=lambda: {})
        profiler.sample_once(frames={5: chain("app.main", "app.work")})
        return profiler

    def test_json_round_trip_through_the_codec(self, tmp_path):
        profiler = self.make_profiler()
        critical = critical_path([span(queue=2.0, blocked=0.5)], scale=1e3)
        contention = contention_profile(canned_contention_bus())
        paths = write_profile(
            str(tmp_path),
            profiler=profiler,
            critical=critical,
            contention=contention,
        )
        assert [p.rsplit("/", 1)[1] for p in paths] == [
            "profile.folded",
            "profile.json",
        ]
        report = read_profile(str(tmp_path / "profile.json"))
        assert report["sampler"]["samples"] == 1
        assert report["sampler"]["stacks"] == [
            ["thread:5;app.main;app.work", 1]
        ]
        assert report["critical_path"] == critical
        assert report["contention"] == contention

    def test_folded_round_trip(self, tmp_path):
        profiler = self.make_profiler()
        write_profile(str(tmp_path), profiler=profiler)
        report = read_profile(str(tmp_path / "profile.folded"))
        assert report["sampler"]["samples"] == 1
        assert report["sampler"]["stacks"] == [
            ["thread:5;app.main;app.work", 1]
        ]

    def test_directory_prefers_json(self, tmp_path):
        write_profile(str(tmp_path), profiler=self.make_profiler())
        report = read_profile(str(tmp_path))
        assert "schema_version" in report
        assert report["sampler"]["hz"] == pytest.approx(87.0)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_profile(str(tmp_path))

    def test_render_profile_names_the_hot_frame(self, tmp_path):
        write_profile(str(tmp_path), profiler=self.make_profiler())
        rendered = render_profile(read_profile(str(tmp_path)))
        assert "== profile ==" in rendered
        assert "hottest frames" in rendered
        assert "app.work" in rendered

    def test_render_critical_path_scales_to_ms(self):
        report = critical_path([span(queue=0.002)])  # seconds
        rendered = render_critical_path(report, scale_to_ms=1e3)
        assert "queue: p50 2.000ms" in rendered


class TestBenchReplayAgreement:
    def test_critical_path_consumes_span_builder_output(self):
        # The analyzer and the span builder must agree end to end: feed
        # a served-transaction trace through SpanBuilder and assert the
        # report attributes the phase the wire events paid.
        # The decode lands one second after the client sent (client
        # phase 1.0s), which outweighs the 0.25s queue phase.
        ticks = iter([1.0, 1.0, 2.0, 3.0, 4.0])
        bus = TraceBus(clock=lambda: next(ticks))
        builder = bus.subscribe(SpanBuilder())
        bus.emit(
            "server.decode",
            session="s1",
            action="invoke",
            trace="c1",
            sent=0.0,
            transaction="T1",
        )
        bus.emit("txn.begin", transaction="T1")
        bus.emit("txn.invoke", transaction="T1", obj="A", operation="Credit(1)")
        bus.emit("txn.commit", transaction="T1", timestamp=1)
        bus.emit(
            "server.respond",
            session="s1",
            action="commit",
            trace="c1",
            transaction="T1",
            queued=0.25,
            executing=0.05,
            respond=0.01,
        )
        report = critical_path(builder.committed())
        assert report["attributed"] == 1
        assert report["gating"] == {"client": 1}
        assert report["phase_budget"]["queue"]["total"] == pytest.approx(0.25)
