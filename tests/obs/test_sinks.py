"""Sinks and renderers: ring buffer, JSONL round-trip, tables, snapshots."""

import json

from repro.adts import get_adt
from repro.obs import (
    Histogram,
    JSONLSink,
    RingBufferSink,
    SpanBuilder,
    TraceBus,
    lock_table_snapshot,
    manager_lock_tables,
    read_jsonl,
    render_events,
    render_histogram,
    render_kind_summary,
    render_lock_tables,
    render_spans,
    render_waits_for,
    spans_as_dicts,
    waits_for_edges,
)
from repro.runtime.manager import TransactionManager
from repro.sim.waiting import WaitRegistry


def emit_sample(bus):
    bus.emit("txn.begin", transaction="T1")
    bus.emit("txn.invoke", transaction="T1", obj="Q", operation="Enq(1)")
    bus.emit("txn.respond", transaction="T1", obj="Q", result="Ok")
    bus.emit("txn.commit", transaction="T1", timestamp=3)


class TestRingBufferSink:
    def test_keeps_everything_when_unbounded(self):
        bus = TraceBus(clock=lambda: 0.0)
        ring = bus.subscribe(RingBufferSink())
        emit_sample(bus)
        assert len(ring) == 4
        assert ring.seen == 4

    def test_capacity_drops_oldest(self):
        bus = TraceBus(clock=lambda: 0.0)
        ring = bus.subscribe(RingBufferSink(capacity=2))
        emit_sample(bus)
        kept = [event.kind for event in ring.events()]
        assert kept == ["txn.respond", "txn.commit"]
        assert ring.seen == 4

    def test_clear(self):
        bus = TraceBus(clock=lambda: 0.0)
        ring = bus.subscribe(RingBufferSink())
        emit_sample(bus)
        ring.clear()
        assert len(ring) == 0
        assert ring.seen == 4


class TestJSONLSink:
    def test_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        ticks = iter([1.0, 2.0, 3.0, 4.0])
        bus = TraceBus(clock=lambda: next(ticks))
        with JSONLSink(path) as sink:
            bus.subscribe(sink)
            emit_sample(bus)
        assert sink.written == 4
        events = read_jsonl(path)
        assert [e.kind for e in events] == [
            "txn.begin",
            "txn.invoke",
            "txn.respond",
            "txn.commit",
        ]
        assert events[0].ts == 1.0
        assert events[3].data["timestamp"] == 3

    def test_every_line_is_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        bus = TraceBus(clock=lambda: 0.0)
        sink = bus.subscribe(JSONLSink(path))
        # Non-JSON payloads (tuples, objects) must serialise via repr.
        bus.emit("txn.commit", transaction="T1", timestamp=(3, "T1"))
        sink.close()
        with open(path) as handle:
            record = json.loads(handle.readline())
        assert record["kind"] == "txn.commit"


class TestRenderers:
    def build_spans(self):
        ticks = iter([0.0, 1.0, 1.5, 4.0])
        bus = TraceBus(clock=lambda: next(ticks))
        builder = bus.subscribe(SpanBuilder())
        emit_sample(bus)
        return builder.spans

    def test_render_spans_table(self):
        text = render_spans(self.build_spans())
        assert "transaction" in text
        assert "T1" in text
        assert "committed" in text

    def test_render_events_and_summary(self):
        bus = TraceBus(clock=lambda: 0.0)
        ring = bus.subscribe(RingBufferSink())
        emit_sample(bus)
        text = render_events(ring.events())
        assert "txn.begin" in text and "transaction=T1" in text
        summary = render_kind_summary(ring.events())
        assert "txn.invoke" in summary

    def test_render_histogram(self):
        histogram = Histogram("lat", (1.0, 10.0))
        for value in (0.5, 0.6, 5.0):
            histogram.observe(value)
        text = render_histogram(histogram)
        assert "lat" in text and "<= 1" in text and "+inf" in text

    def test_spans_as_dicts(self):
        (row,) = spans_as_dicts(self.build_spans())
        assert row["transaction"] == "T1"
        assert row["outcome"] == "committed"
        assert row["objects"] == ["Q"]


class TestSnapshots:
    def make_manager(self):
        manager = TransactionManager()
        manager.create_object("Q", get_adt("FIFOQueue"))
        return manager

    def test_lock_table_lists_active_holders(self):
        manager = self.make_manager()
        txn = manager.begin()
        manager.invoke(txn, "Q", "Enq", 1)
        tables = manager_lock_tables(manager)
        assert txn.name in tables["Q"]
        assert any("Enq" in held for held in tables["Q"][txn.name])

    def test_lock_table_empty_after_commit(self):
        manager = self.make_manager()
        txn = manager.begin()
        manager.invoke(txn, "Q", "Enq", 1)
        manager.commit(txn)
        machine = manager.object("Q").machine
        assert lock_table_snapshot(machine) == {}

    def test_waits_for_edges_and_renderers(self):
        waits = WaitRegistry()
        waits.wait("T2", "T1", wake=lambda: None)
        edges = waits_for_edges(waits)
        assert edges == {"T2": "T1"}
        assert "T2 -> T1" in render_waits_for(edges)
        assert render_waits_for({}) == "(no blocked transactions)"
        manager = self.make_manager()
        txn = manager.begin()
        manager.invoke(txn, "Q", "Enq", 1)
        text = render_lock_tables(manager_lock_tables(manager))
        assert "Q:" in text and txn.name in text
        assert "(no active transactions" in render_lock_tables({})
