"""The flight recorder: bounded ring, anomaly triggers, honest dumps.

Everything runs against a :class:`~repro.obs.bus.TraceBus` with a
scripted clock — no sockets, no real time — and dumps land in tmp_path
so the tagged-codec JSONL round trip is checked with the same
:func:`~repro.obs.sinks.read_jsonl` that ``repro analyze`` uses.
"""

import json

import pytest

from repro.obs import FlightRecorder, TraceBus, read_jsonl


def make_bus(clock_box):
    return TraceBus(clock=lambda: clock_box[0])


def pump(bus, count, kind="txn.invoke", **data):
    data.setdefault("transaction", "t1")
    for _ in range(count):
        bus.emit(kind, **data)


class TestRingAndTriggers:
    def test_quiet_stream_never_dumps(self, tmp_path):
        clock = [0.0]
        bus = make_bus(clock)
        flight = bus.subscribe(FlightRecorder(str(tmp_path)))
        pump(bus, 100)
        assert flight.dumps == []
        assert not list(tmp_path.iterdir())

    def test_ring_is_bounded_and_counts_evictions(self, tmp_path):
        clock = [0.0]
        bus = make_bus(clock)
        flight = bus.subscribe(FlightRecorder(str(tmp_path), capacity=8))
        pump(bus, 20)
        assert len(flight.ring) == 8
        assert flight.ring.dropped == 12
        assert flight.ring.seen == 20

    @pytest.mark.parametrize(
        "kind, data, reason",
        [
            ("server.busy", {"session": "s1", "queue_depth": 9}, "busy"),
            ("server.drain", {"sessions": 0, "aborted": 0}, "drain"),
            ("lock.deadlock", {"transaction": "t1", "obj": "A"}, "deadlock"),
            (
                "check.violation",
                {"rule": "serial", "txn": "t1", "obj": "A"},
                "violation",
            ),
        ],
    )
    def test_trigger_kinds_dump_with_their_reason(
        self, tmp_path, kind, data, reason
    ):
        clock = [0.0]
        bus = make_bus(clock)
        flight = bus.subscribe(FlightRecorder(str(tmp_path)))
        pump(bus, 5)
        bus.emit(kind, **data)
        assert len(flight.dumps) == 1
        assert flight.last_reason == reason
        assert reason in flight.dumps[0]

    def test_queue_high_water_trigger(self, tmp_path):
        clock = [0.0]
        bus = make_bus(clock)
        flight = bus.subscribe(
            FlightRecorder(str(tmp_path), queue_high_water=4)
        )
        bus.emit("server.request", session="s1", action="invoke", queue_depth=3)
        assert flight.dumps == []
        bus.emit("server.request", session="s1", action="invoke", queue_depth=4)
        assert flight.last_reason == "queue-high-water"

    def test_p99_breach_trigger_needs_samples_then_fires(self, tmp_path):
        clock = [0.0]
        bus = make_bus(clock)
        flight = bus.subscribe(
            FlightRecorder(
                str(tmp_path),
                latency_threshold=10.0,
                min_latency_samples=5,
            )
        )
        # Four slow transactions: below the sample floor, no dump yet.
        for index in range(4):
            name = f"t{index}"
            bus.emit("txn.begin", transaction=name)
            clock[0] += 50.0
            bus.emit("txn.commit", transaction=name, timestamp=index)
        assert flight.dumps == []
        bus.emit("txn.begin", transaction="t4")
        clock[0] += 50.0
        bus.emit("txn.commit", transaction="t4", timestamp=4)
        assert flight.last_reason == "p99-breach"

    def test_cooldown_separates_consecutive_dumps(self, tmp_path):
        clock = [0.0]
        bus = make_bus(clock)
        flight = bus.subscribe(
            FlightRecorder(str(tmp_path), cooldown_events=10)
        )
        bus.emit("server.busy", session="s1", queue_depth=9)
        bus.emit("server.busy", session="s1", queue_depth=9)
        assert len(flight.dumps) == 1, "second trigger inside cooldown"
        pump(bus, 10)
        bus.emit("server.busy", session="s1", queue_depth=9)
        assert len(flight.dumps) == 2


class TestDumpFiles:
    def test_dump_replays_through_read_jsonl(self, tmp_path):
        clock = [0.0]
        bus = make_bus(clock)
        flight = bus.subscribe(FlightRecorder(str(tmp_path), capacity=4))
        pump(bus, 10)
        path = flight.dump("manual")
        events = list(read_jsonl(path))
        # Header first, then exactly the retained window.
        assert events[0].kind == "flight.dump"
        assert events[0].data["reason"] == "manual"
        assert events[0].data["events"] == 4
        assert events[0].data["dropped"] == 6
        assert [e.kind for e in events[1:]] == ["txn.invoke"] * 4

    def test_dump_names_are_deterministic(self, tmp_path):
        clock = [0.0]
        bus = make_bus(clock)
        flight = bus.subscribe(FlightRecorder(str(tmp_path), cooldown_events=0))
        flight.dump("first")
        flight.dump("weird reason/with:junk")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "flight-001-first.jsonl",
            "flight-002-weird-reason-with-junk.jsonl",
        ]

    def test_dump_file_is_valid_jsonl(self, tmp_path):
        clock = [0.0]
        bus = make_bus(clock)
        flight = bus.subscribe(FlightRecorder(str(tmp_path)))
        pump(bus, 3)
        path = flight.dump("manual")
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)

    def test_emit_to_announces_without_recursing(self, tmp_path):
        clock = [0.0]
        bus = make_bus(clock)
        seen = []
        bus.subscribe(lambda event: seen.append(event.kind))
        flight = bus.subscribe(
            FlightRecorder(str(tmp_path), emit_to=bus)
        )
        bus.emit("server.busy", session="s1", queue_depth=9)
        assert seen.count("flight.dump") == 1
        assert len(flight.dumps) == 1
        # The announcement itself must not sit in the ring for the next
        # dump (the recorder ignores its own kind).
        assert all(e.kind != "flight.dump" for e in flight.ring.events())


class TestStatus:
    def test_status_summarizes_recorder_state(self, tmp_path):
        clock = [0.0]
        bus = make_bus(clock)
        flight = bus.subscribe(FlightRecorder(str(tmp_path), capacity=4))
        pump(bus, 6)
        status = flight.status()
        assert status == {
            "dumps": 0,
            "last_reason": None,
            "last_path": None,
            "retained": 4,
            "seen": 6,
            "dropped_events": 2,
            "profile_snapshots": 0,
        }
        path = flight.dump("manual")
        status = flight.status()
        assert status["dumps"] == 1
        assert status["last_reason"] == "manual"
        assert status["last_path"] == path
