"""The metrics registry: primitives, Metrics bridge, and the event sink."""

import dataclasses

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistrySink,
    TraceBus,
)
from repro.sim.metrics import Metrics


class TestPrimitives:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_holds_last_value(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1

    def test_histogram_buckets_are_cumulative_le(self):
        histogram = Histogram("h", (1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 7.0, 100.0):
            histogram.observe(value)
        # counts per bucket: <=1, <=5, <=10, +inf
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.total == 5
        assert histogram.sum == pytest.approx(111.5)
        assert histogram.mean == pytest.approx(111.5 / 5)

    def test_histogram_quantile(self):
        histogram = Histogram("h", (1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 0.7, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0  # 3/4 of mass at or below 1
        assert histogram.quantile(0.99) == 4.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_absorb_metrics_imports_every_field(self):
        registry = MetricsRegistry()
        metrics = Metrics(committed=7, conflicts=3, deadlocks=2)
        registry.absorb_metrics(metrics)
        for field in dataclasses.fields(metrics):
            assert registry.counter(field.name).value == getattr(
                metrics, field.name
            )

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("g").set(5)
        registry.histogram("h").observe(2.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 1}
        assert snapshot["gauges"] == {"g": 5}
        assert snapshot["histograms"]["h"]["total"] == 1
        # snapshot is JSON-serialisable via to_json
        assert '"counters"' in registry.to_json()


class TestRegistrySink:
    def make_bus(self, registry, clock_values):
        it = iter(clock_values)
        bus = TraceBus(clock=lambda: next(it))
        bus.subscribe(RegistrySink(registry))
        return bus

    def test_lifecycle_counters_and_latency(self):
        registry = MetricsRegistry()
        bus = self.make_bus(registry, [0.0, 4.0, 5.0, 11.0])
        bus.emit("txn.begin", transaction="T1")
        bus.emit("txn.commit", transaction="T1", timestamp=1)
        bus.emit("txn.begin", transaction="T2")
        bus.emit("txn.abort", transaction="T2")
        assert registry.counter("txn.begun").value == 2
        assert registry.counter("txn.committed").value == 1
        assert registry.counter("txn.aborted").value == 1
        assert registry.histogram("txn.latency").sum == pytest.approx(4.0)
        assert registry.histogram("txn.abort_latency").sum == pytest.approx(6.0)

    def test_terminal_without_begin_is_ignored(self):
        registry = MetricsRegistry()
        bus = self.make_bus(registry, [1.0])
        bus.emit("txn.commit", transaction="ghost", timestamp=1)
        assert "txn.committed" not in registry.counters

    def test_conflict_pair_breakdown(self):
        registry = MetricsRegistry()
        bus = self.make_bus(registry, [1.0, 2.0, 3.0])
        bus.emit(
            "lock.conflict",
            transaction="T2",
            operation="[Deq(), 1]",
            held="[Enq(1), 'Ok']",
            holder="T1",
        )
        bus.emit(
            "lock.conflict",
            transaction="T3",
            operation="[Deq(), 1]",
            held="[Enq(1), 'Ok']",
            holder="T1",
        )
        bus.emit(
            "lock.conflict",
            transaction="T3",
            operation="[Enq(2), 'Ok']",
            held="[Deq(), 1]",
            holder="T2",
        )
        assert registry.counter("lock.conflicts").value == 3
        assert registry.conflict_breakdown() == {
            "lock.conflict[[Deq(), 1] × [Enq(1), 'Ok']]": 2,
            "lock.conflict[[Enq(2), 'Ok'] × [Deq(), 1]]": 1,
        }

    def test_compaction_wal_net_site_counters(self):
        registry = MetricsRegistry()
        bus = self.make_bus(registry, iter(float(i) for i in range(10)))
        bus.emit("compaction.advance", obj="Q", collapsed=5)
        bus.emit("wal.append", record="commit")
        bus.emit("wal.replay", transaction="T1", record="commit")
        bus.emit("net.send", label="prepare")
        bus.emit("site.crash", site="S0", hard=True)
        bus.emit("site.recover", site="S0")
        assert registry.counter("compaction.advances").value == 1
        assert registry.counter("compaction.collapsed_ops").value == 5
        assert registry.counter("wal.appends").value == 1
        assert registry.counter("wal.replays").value == 1
        assert registry.counter("net.messages").value == 1
        assert registry.counter("net.send[prepare]").value == 1
        assert registry.counter("site.crashes").value == 1
        assert registry.counter("site.recoveries").value == 1
