"""The metrics registry: primitives, Metrics bridge, and the event sink."""

import dataclasses

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistrySink,
    TraceBus,
)
from repro.sim.metrics import Metrics


class TestPrimitives:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_holds_last_value(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1

    def test_histogram_buckets_are_cumulative_le(self):
        histogram = Histogram("h", (1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 7.0, 100.0):
            histogram.observe(value)
        # counts per bucket: <=1, <=5, <=10, +inf
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.total == 5
        assert histogram.sum == pytest.approx(111.5)
        assert histogram.mean == pytest.approx(111.5 / 5)

    def test_histogram_quantile_interpolates_within_bucket(self):
        histogram = Histogram("h", (1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 0.7, 3.0):
            histogram.observe(value)
        # rank 2 of 4 falls 2/3 into the [0, 1] bucket, not at its edge.
        assert histogram.quantile(0.5) == pytest.approx(2 / 3)
        # rank 3.96 falls 0.96 into the (2, 4] bucket.
        assert histogram.quantile(0.99) == pytest.approx(3.92)

    def test_histogram_quantile_overflow_reports_inf(self):
        # Regression: values beyond the last boundary used to make p99
        # silently saturate at the top edge; the overflow bucket has no
        # upper edge, so the honest answer is +inf.
        histogram = Histogram("h", (1.0, 2.0, 4.0))
        histogram.observe(0.5)
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == float("inf")
        assert histogram.quantile(0.25) == pytest.approx(0.5)
        assert histogram.overflow == 1

    def test_histogram_from_snapshot_round_trips(self):
        histogram = Histogram("h", (1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 9.0):
            histogram.observe(value)
        payload = {
            "boundaries": list(histogram.boundaries),
            "counts": list(histogram.counts),
            "total": histogram.total,
            "sum": histogram.sum,
        }
        rebuilt = Histogram.from_snapshot("h", payload)
        assert rebuilt.counts == histogram.counts
        assert rebuilt.quantile(0.5) == histogram.quantile(0.5)
        assert rebuilt.overflow == histogram.overflow


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_absorb_metrics_imports_every_field(self):
        registry = MetricsRegistry()
        metrics = Metrics(committed=7, conflicts=3, deadlocks=2)
        registry.absorb_metrics(metrics)
        for field in dataclasses.fields(metrics):
            assert registry.counter(field.name).value == getattr(
                metrics, field.name
            )

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("g").set(5)
        registry.histogram("h").observe(2.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 1}
        assert snapshot["gauges"] == {"g": 5}
        assert snapshot["histograms"]["h"]["total"] == 1
        # snapshot is JSON-serialisable via to_json
        assert '"counters"' in registry.to_json()


class TestRegistrySink:
    def make_bus(self, registry, clock_values):
        it = iter(clock_values)
        bus = TraceBus(clock=lambda: next(it))
        bus.subscribe(RegistrySink(registry))
        return bus

    def test_lifecycle_counters_and_latency(self):
        registry = MetricsRegistry()
        bus = self.make_bus(registry, [0.0, 4.0, 5.0, 11.0])
        bus.emit("txn.begin", transaction="T1")
        bus.emit("txn.commit", transaction="T1", timestamp=1)
        bus.emit("txn.begin", transaction="T2")
        bus.emit("txn.abort", transaction="T2")
        assert registry.counter("txn.begun").value == 2
        assert registry.counter("txn.committed").value == 1
        assert registry.counter("txn.aborted").value == 1
        assert registry.histogram("txn.latency").sum == pytest.approx(4.0)
        assert registry.histogram("txn.abort_latency").sum == pytest.approx(6.0)

    def test_terminal_without_begin_is_ignored(self):
        registry = MetricsRegistry()
        bus = self.make_bus(registry, [1.0])
        bus.emit("txn.commit", transaction="ghost", timestamp=1)
        assert "txn.committed" not in registry.counters

    def test_conflict_pair_breakdown(self):
        registry = MetricsRegistry()
        bus = self.make_bus(registry, [1.0, 2.0, 3.0])
        bus.emit(
            "lock.conflict",
            transaction="T2",
            operation="[Deq(), 1]",
            held="[Enq(1), 'Ok']",
            holder="T1",
        )
        bus.emit(
            "lock.conflict",
            transaction="T3",
            operation="[Deq(), 1]",
            held="[Enq(1), 'Ok']",
            holder="T1",
        )
        bus.emit(
            "lock.conflict",
            transaction="T3",
            operation="[Enq(2), 'Ok']",
            held="[Deq(), 1]",
            holder="T2",
        )
        assert registry.counter("lock.conflicts").value == 3
        assert registry.conflict_breakdown() == {
            "lock.conflict[[Deq(), 1] × [Enq(1), 'Ok']]": 2,
            "lock.conflict[[Enq(2), 'Ok'] × [Deq(), 1]]": 1,
        }

    def test_compaction_wal_net_site_counters(self):
        registry = MetricsRegistry()
        bus = self.make_bus(registry, iter(float(i) for i in range(10)))
        bus.emit("compaction.advance", obj="Q", collapsed=5)
        bus.emit("wal.append", record="commit")
        bus.emit("wal.replay", transaction="T1", record="commit")
        bus.emit("net.send", label="prepare")
        bus.emit("site.crash", site="S0", hard=True)
        bus.emit("site.recover", site="S0")
        assert registry.counter("compaction.advances").value == 1
        assert registry.counter("compaction.collapsed_ops").value == 5
        assert registry.counter("wal.appends").value == 1
        assert registry.counter("wal.replays").value == 1
        assert registry.counter("net.messages").value == 1
        assert registry.counter("net.send[prepare]").value == 1
        assert registry.counter("site.crashes").value == 1
        assert registry.counter("site.recoveries").value == 1


class TestPrometheusRender:
    def test_counters_gauges_histograms_in_text_format(self):
        from repro.obs import render_prometheus

        registry = MetricsRegistry()
        registry.counter("txn.committed").inc(7)
        registry.gauge("server.connections").set(3)
        histogram = registry.histogram("txn.latency", (1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(9.0)
        text = render_prometheus(registry)
        assert "# TYPE repro_txn_committed_total counter" in text
        assert "repro_txn_committed_total 7" in text
        assert "# TYPE repro_server_connections gauge" in text
        assert "repro_server_connections 3" in text
        # Buckets render cumulatively, with the +Inf catch-all.
        assert 'repro_txn_latency_bucket{le="1"} 1' in text
        assert 'repro_txn_latency_bucket{le="2"} 2' in text
        assert 'repro_txn_latency_bucket{le="+Inf"} 3' in text
        assert "repro_txn_latency_sum 11" in text
        assert "repro_txn_latency_count 3" in text

    def test_bracketed_names_become_labels(self):
        from repro.obs import render_prometheus

        registry = MetricsRegistry()
        registry.counter("lock.conflict[Enq/Deq]").inc(2)
        text = render_prometheus(registry)
        assert 'repro_lock_conflict_total{key="Enq/Deq"} 2' in text

    def test_snapshot_round_trips_through_from_snapshot(self):
        from repro.obs import render_prometheus

        registry = MetricsRegistry()
        registry.counter("txn.committed").inc(4)
        registry.gauge("server.queue_depth").set(9)
        registry.histogram("txn.latency", (1.0, 5.0)).observe(2.0)
        rebuilt = MetricsRegistry.from_snapshot(registry.snapshot())
        assert render_prometheus(rebuilt) == render_prometheus(registry)
