"""Metrics: derived rates and the field-complete merge."""

import dataclasses

import pytest

from repro.sim.metrics import Metrics


def fully_populated(scale: int) -> Metrics:
    """A Metrics instance with every field set to a distinct value."""
    metrics = Metrics()
    for index, field in enumerate(dataclasses.fields(Metrics), start=1):
        value = scale * index
        setattr(
            metrics,
            field.name,
            float(value) if field.type == "float" else value,
        )
    return metrics


class TestMerge:
    def test_merge_sums_every_field(self):
        # Regression: merge() once enumerated fields by hand, so a newly
        # added counter could silently vanish from merged results.  Check
        # every declared field survives, not a hand-kept list.
        left = fully_populated(1)
        right = fully_populated(100)
        merged = left.merge(right)
        assert merged is left
        for index, field in enumerate(dataclasses.fields(Metrics), start=1):
            assert getattr(merged, field.name) == pytest.approx(101 * index), (
                f"field {field.name!r} was dropped by merge()"
            )

    def test_merge_accumulates_across_runs(self):
        total = Metrics()
        total.merge(Metrics(duration=10.0, committed=5, conflicts=2))
        total.merge(Metrics(duration=10.0, committed=7, deadlocks=1))
        assert total.duration == 20.0
        assert total.committed == 12
        assert total.conflicts == 2
        assert total.deadlocks == 1
        assert total.throughput == pytest.approx(12 / 20)


class TestDerivedRates:
    def test_rates_guard_division_by_zero(self):
        empty = Metrics()
        assert empty.throughput == 0.0
        assert empty.mean_latency == 0.0
        assert empty.conflict_rate == 0.0
        assert empty.abort_rate == 0.0

    def test_as_row_includes_crash_columns_only_when_present(self):
        assert "crashes" not in Metrics(committed=1).as_row()
        assert "crashes" in Metrics(committed=1, crashes=2).as_row()
