"""Simulation experiments: metrics, determinism, protocol orderings."""

import random

import pytest

from repro.protocols import ALL_PROTOCOLS, COMMUTATIVITY, HYBRID, SERIAL, TWO_PHASE_RW
from repro.sim import (
    AccountWorkload,
    ClientParams,
    FileWorkload,
    Metrics,
    QueueWorkload,
    SemiQueueWorkload,
    SetWorkload,
    compare_protocols,
    run_experiment,
)


class TestMetrics:
    def test_throughput(self):
        m = Metrics(duration=100, committed=50)
        assert m.throughput == 0.5

    def test_zero_division_safe(self):
        m = Metrics()
        assert m.throughput == 0.0
        assert m.mean_latency == 0.0
        assert m.conflict_rate == 0.0
        assert m.abort_rate == 0.0

    def test_rates(self):
        m = Metrics(duration=10, committed=8, aborted=2, conflicts=5, operations=15)
        assert m.abort_rate == 0.2
        assert m.conflict_rate == 0.25

    def test_as_row_keys(self):
        row = Metrics(duration=1).as_row()
        assert {"committed", "throughput", "conflict_rate"} <= set(row)


class TestWorkloads:
    def test_queue_scripts(self):
        w = QueueWorkload(producers=2, consumers=1, ops_per_transaction=3)
        rng = random.Random(0)
        producer = w.script(0, rng)
        consumer = w.script(2, rng)
        assert all(step[1] == "Enq" for step in producer)
        assert all(step[1] == "Deq" for step in consumer)
        assert len(producer) == 3

    def test_queue_items_unique(self):
        w = QueueWorkload(producers=1, consumers=0, ops_per_transaction=5)
        rng = random.Random(0)
        items = [step[2][0] for step in w.script(0, rng) + w.script(0, rng)]
        assert len(set(items)) == len(items)

    def test_account_scripts_cover_operations(self):
        w = AccountWorkload(clients=1, ops_per_transaction=100)
        rng = random.Random(1)
        names = {step[1] for step in w.script(0, rng)}
        assert names == {"Credit", "Debit", "Post"}

    def test_object_declarations(self):
        assert [name for name, _ in QueueWorkload().objects()] == ["Q"]
        assert len(AccountWorkload(accounts=3).objects()) == 3


class TestRunExperiment:
    def test_deterministic(self):
        a = run_experiment(QueueWorkload(), HYBRID, duration=120, seed=9)
        b = run_experiment(QueueWorkload(), HYBRID, duration=120, seed=9)
        assert a.as_row() == b.as_row()

    def test_seed_changes_outcome(self):
        a = run_experiment(AccountWorkload(), HYBRID, duration=120, seed=1)
        b = run_experiment(AccountWorkload(), HYBRID, duration=120, seed=2)
        assert a.as_row() != b.as_row()

    def test_progress_made(self):
        m = run_experiment(QueueWorkload(), HYBRID, duration=200, seed=0)
        assert m.committed > 10
        assert m.operations > m.committed

    def test_custom_params(self):
        params = ClientParams(op_time=0.1, commit_time=0.1, think_time=0.1)
        fast = run_experiment(QueueWorkload(), HYBRID, duration=100, seed=0, params=params)
        slow = run_experiment(QueueWorkload(), HYBRID, duration=100, seed=0)
        assert fast.committed > slow.committed


class TestPaperShapes:
    """The qualitative claims the simulation must reproduce."""

    def test_queue_hybrid_beats_commutativity(self):
        results = compare_protocols(
            lambda: QueueWorkload(producers=4, consumers=1),
            [HYBRID, COMMUTATIVITY, TWO_PHASE_RW],
            duration=300,
            seed=3,
        )
        assert results["hybrid"].throughput > results["commutativity"].throughput
        assert (
            results["commutativity"].throughput
            >= results["rw-2pl"].throughput
        )

    def test_account_hybrid_beats_commutativity(self):
        results = compare_protocols(
            lambda: AccountWorkload(clients=6, accounts=1),
            [HYBRID, COMMUTATIVITY],
            duration=300,
            seed=3,
        )
        assert results["hybrid"].throughput > results["commutativity"].throughput
        assert results["hybrid"].conflicts < results["commutativity"].conflicts

    def test_semiqueue_protocols_tie(self):
        results = compare_protocols(
            lambda: SemiQueueWorkload(producers=4, consumers=1),
            [HYBRID, COMMUTATIVITY],
            duration=300,
            seed=3,
        )
        hybrid, comm = results["hybrid"], results["commutativity"]
        # Identical conflict tables => identical simulations.
        assert hybrid.as_row() == comm.as_row()

    def test_serial_is_slowest_on_contended_account(self):
        results = compare_protocols(
            lambda: AccountWorkload(clients=6, accounts=1),
            [HYBRID, SERIAL],
            duration=300,
            seed=3,
        )
        assert results["hybrid"].throughput > results["serial"].throughput


class TestNewWorkloads:
    def test_directory_scripts_use_configured_keys(self):
        from repro.sim import DirectoryWorkload

        w = DirectoryWorkload(key_count=4, ops_per_transaction=50)
        rng = random.Random(0)
        keys = {step[2][0] for step in w.script(0, rng)}
        assert keys <= {f"k{i}" for i in range(4)}
        assert len(keys) > 1

    def test_directory_skew_concentrates_keys(self):
        from repro.sim import DirectoryWorkload

        rng = random.Random(1)
        uniform = DirectoryWorkload(key_count=16, skew=0.0, ops_per_transaction=300)
        skewed = DirectoryWorkload(key_count=16, skew=3.0, ops_per_transaction=300)
        uniform_keys = [s[2][0] for s in uniform.script(0, rng)]
        skewed_keys = [s[2][0] for s in skewed.script(0, random.Random(1))]
        hot = max(skewed_keys.count(k) for k in set(skewed_keys))
        cold = max(uniform_keys.count(k) for k in set(uniform_keys))
        assert hot > 2 * cold

    def test_stack_scripts(self):
        from repro.sim import StackWorkload

        w = StackWorkload(producers=1, consumers=1, ops_per_transaction=3)
        rng = random.Random(0)
        assert all(step[1] == "Push" for step in w.script(0, rng))
        assert all(step[1] == "Pop" for step in w.script(1, rng))

    def test_stack_experiment_runs(self):
        from repro.sim import StackWorkload

        metrics = run_experiment(StackWorkload(), HYBRID, duration=120, seed=2)
        assert metrics.committed > 5


class TestWorkloadProtocolMatrix:
    """Every workload runs under every locking protocol (smoke breadth)."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: QueueWorkload(producers=2, consumers=1),
            lambda: SemiQueueWorkload(producers=2, consumers=1),
            lambda: AccountWorkload(clients=3),
            lambda: FileWorkload(clients=3),
            lambda: SetWorkload(clients=3),
        ],
        ids=["queue", "semiqueue", "account", "file", "set"],
    )
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: p.name)
    def test_pairing_progresses(self, factory, protocol):
        metrics = run_experiment(factory(), protocol, duration=80, seed=1)
        assert metrics.committed > 0

    def test_directory_and_stack_under_all_protocols(self):
        from repro.sim import DirectoryWorkload, StackWorkload

        for protocol in ALL_PROTOCOLS:
            assert (
                run_experiment(
                    DirectoryWorkload(clients=3), protocol, duration=80, seed=1
                ).committed
                > 0
            )
            assert (
                run_experiment(
                    StackWorkload(producers=2, consumers=1),
                    protocol,
                    duration=80,
                    seed=1,
                ).committed
                > 0
            )

    def test_optimistic_engine_on_every_workload(self):
        from repro.protocols import OPTIMISTIC
        from repro.sim import DirectoryWorkload, StackWorkload

        factories = [
            lambda: QueueWorkload(producers=2, consumers=1),
            lambda: SemiQueueWorkload(producers=2, consumers=1),
            lambda: AccountWorkload(clients=3),
            lambda: FileWorkload(clients=3),
            lambda: SetWorkload(clients=3),
            lambda: DirectoryWorkload(clients=3),
            lambda: StackWorkload(producers=2, consumers=1),
        ]
        for factory in factories:
            metrics = run_experiment(factory(), OPTIMISTIC, duration=80, seed=1)
            assert metrics.committed > 0
            assert metrics.conflicts == 0  # no locks in the optimistic engine
