"""Discrete-event simulator unit tests."""

import pytest

from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3, lambda: fired.append("c"))
        sim.schedule(1, lambda: fired.append("a"))
        sim.schedule(2, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_broken_by_scheduling_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, lambda: fired.append("first"))
        sim.schedule(1, lambda: fired.append("second"))
        sim.run()
        assert fired == ["first", "second"]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5]

    def test_callbacks_may_schedule_more(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1, chain)

        sim.schedule(1, chain)
        sim.run()
        assert fired == [1, 2, 3]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)


class TestRunUntil:
    def test_stops_at_deadline(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, lambda: fired.append(1))
        sim.schedule(10, lambda: fired.append(10))
        sim.run_until(5)
        assert fired == [1]
        assert sim.now == 5
        assert not sim.empty()

    def test_clock_lands_on_deadline_even_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.run_until(100)
        assert sim.now == 100
        assert sim.empty()
