"""Waits-for registry and the block wait-policy."""

import pytest

from repro.protocols import COMMUTATIVITY, HYBRID
from repro.sim import (
    AccountWorkload,
    ClientParams,
    DeadlockDetected,
    QueueWorkload,
    WaitRegistry,
    run_experiment,
)


class TestWaitRegistry:
    def test_wait_and_release(self):
        registry = WaitRegistry()
        woken = []
        registry.wait("A", "B", lambda: woken.append("A"))
        assert registry.waiting_for("A") == "B"
        assert registry.waiter_count() == 1
        assert registry.release("B") == 1
        assert woken == ["A"]
        assert registry.waiter_count() == 0

    def test_many_waiters_one_holder(self):
        registry = WaitRegistry()
        woken = []
        registry.wait("A", "C", lambda: woken.append("A"))
        registry.wait("B", "C", lambda: woken.append("B"))
        assert registry.release("C") == 2
        assert sorted(woken) == ["A", "B"]

    def test_direct_deadlock(self):
        registry = WaitRegistry()
        registry.wait("A", "B", lambda: None)
        with pytest.raises(DeadlockDetected) as info:
            registry.wait("B", "A", lambda: None)
        assert info.value.waiter == "B"
        assert "B" in str(info.value)
        # The refused edge was not recorded.
        assert registry.waiting_for("B") is None

    def test_transitive_deadlock(self):
        registry = WaitRegistry()
        registry.wait("A", "B", lambda: None)
        registry.wait("B", "C", lambda: None)
        with pytest.raises(DeadlockDetected) as info:
            registry.wait("C", "A", lambda: None)
        assert set(info.value.cycle) == {"A", "B", "C"}

    def test_chain_without_cycle_allowed(self):
        registry = WaitRegistry()
        registry.wait("A", "B", lambda: None)
        registry.wait("B", "C", lambda: None)
        registry.wait("D", "A", lambda: None)
        assert registry.waiter_count() == 3

    def test_self_wait_rejected(self):
        registry = WaitRegistry()
        with pytest.raises(ValueError):
            registry.wait("A", "A", lambda: None)

    def test_double_wait_rejected(self):
        registry = WaitRegistry()
        registry.wait("A", "B", lambda: None)
        with pytest.raises(ValueError):
            registry.wait("A", "C", lambda: None)

    def test_cancel(self):
        registry = WaitRegistry()
        woken = []
        registry.wait("A", "B", lambda: woken.append("A"))
        registry.cancel("A")
        assert registry.release("B") == 0
        assert woken == []

    def test_release_unknown_holder_is_noop(self):
        assert WaitRegistry().release("Z") == 0


class TestBlockPolicy:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            ClientParams(wait_policy="spin")

    def test_block_runs_and_detects_deadlocks(self):
        params = ClientParams(wait_policy="block")
        metrics = run_experiment(
            AccountWorkload(clients=6, accounts=1, post_p=0.2),
            COMMUTATIVITY,
            duration=300,
            seed=2,
            params=params,
        )
        assert metrics.committed > 0
        assert metrics.deadlocks > 0  # real cycles occur on this workload

    def test_block_beats_retry_under_heavy_contention(self):
        # Blocking wakes exactly when the lock clears; polling wastes
        # backoff time and aborts more.
        workload = lambda: AccountWorkload(clients=6, accounts=1, post_p=0.2)
        retry = run_experiment(
            workload(), COMMUTATIVITY, duration=300, seed=2,
            params=ClientParams(wait_policy="retry"),
        )
        block = run_experiment(
            workload(), COMMUTATIVITY, duration=300, seed=2,
            params=ClientParams(wait_policy="block"),
        )
        assert block.throughput > retry.throughput
        assert block.conflicts < retry.conflicts

    def test_retry_policy_never_deadlocks(self):
        metrics = run_experiment(
            QueueWorkload(producers=4, consumers=2),
            HYBRID,
            duration=200,
            seed=5,
            params=ClientParams(wait_policy="retry"),
        )
        assert metrics.deadlocks == 0

    def test_block_deterministic(self):
        params = ClientParams(wait_policy="block")
        a = run_experiment(QueueWorkload(), HYBRID, duration=150, seed=8, params=params)
        b = run_experiment(QueueWorkload(), HYBRID, duration=150, seed=8, params=params)
        assert a.as_row() == b.as_row()
