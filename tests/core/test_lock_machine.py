"""Tests for the LOCK state machine (Section 5) including Theorems 16/17."""

import pytest

from repro.adts import (
    ACCOUNT_CONFLICT,
    AccountSpec,
    FifoQueueSpec,
    FileSpec,
    QUEUE_CONFLICT_FIG42,
    QUEUE_CONFLICT_FIG43,
    FILE_CONFLICT,
    deq,
    enq,
)
from repro.core import (
    EMPTY_RELATION,
    IllegalOperation,
    Invocation,
    LockConflict,
    LockMachine,
    ProtocolError,
    WouldBlock,
    is_hybrid_atomic,
    is_online_hybrid_atomic,
)


def queue_machine(conflict=QUEUE_CONFLICT_FIG42):
    return LockMachine(FifoQueueSpec(), conflict, obj="X")


class TestPreconditions:
    def test_respond_requires_pending(self):
        machine = queue_machine()
        with pytest.raises(ProtocolError):
            machine.respond("P", "Ok")

    def test_respond_requires_active(self):
        machine = queue_machine()
        machine.commit("P", 1)
        with pytest.raises(ProtocolError):
            machine.invoke("P", Invocation("Enq", (1,)))

    def test_double_invocation_rejected(self):
        machine = queue_machine()
        machine.invoke("P", Invocation("Enq", (1,)))
        with pytest.raises(ProtocolError):
            machine.invoke("P", Invocation("Enq", (2,)))

    def test_result_must_be_legal_in_view(self):
        machine = queue_machine()
        machine.invoke("P", Invocation("Enq", (1,)))
        with pytest.raises(IllegalOperation):
            machine.respond("P", "Nope")

    def test_commit_with_pending_invocation_rejected(self):
        machine = queue_machine()
        machine.invoke("P", Invocation("Enq", (1,)))
        with pytest.raises(ProtocolError):
            machine.commit("P", 1)

    def test_commit_after_abort_rejected(self):
        machine = queue_machine()
        machine.abort("P")
        with pytest.raises(ProtocolError):
            machine.commit("P", 1)

    def test_abort_after_commit_rejected(self):
        machine = queue_machine()
        machine.commit("P", 1)
        with pytest.raises(ProtocolError):
            machine.abort("P")

    def test_duplicate_timestamp_rejected(self):
        machine = queue_machine()
        machine.commit("P", 1)
        with pytest.raises(ProtocolError):
            machine.commit("Q", 1)

    def test_recommit_same_timestamp_ok(self):
        machine = queue_machine()
        machine.commit("P", 1)
        machine.commit("P", 1)
        with pytest.raises(ProtocolError):
            machine.commit("P", 2)


class TestLocking:
    def test_concurrent_enqueues_allowed_fig42(self):
        machine = queue_machine(QUEUE_CONFLICT_FIG42)
        assert machine.execute("P", Invocation("Enq", (1,))) == "Ok"
        assert machine.execute("Q", Invocation("Enq", (2,))) == "Ok"

    def test_concurrent_enqueues_refused_fig43(self):
        machine = queue_machine(QUEUE_CONFLICT_FIG43)
        machine.execute("P", Invocation("Enq", (1,)))
        with pytest.raises(LockConflict):
            machine.execute("Q", Invocation("Enq", (2,)))

    def test_deq_conflicts_with_active_enq_fig42(self):
        machine = queue_machine(QUEUE_CONFLICT_FIG42)
        machine.execute("P", Invocation("Enq", (1,)))
        machine.commit("P", 1)
        machine.execute("Q", Invocation("Enq", (2,)))
        # R would dequeue 1 but Q holds an Enq(2) lock, which conflicts
        # with Deq under Fig 4-2.
        with pytest.raises(LockConflict):
            machine.execute("R", Invocation("Deq"))

    def test_deq_free_of_enq_fig43(self):
        machine = queue_machine(QUEUE_CONFLICT_FIG43)
        machine.execute("P", Invocation("Enq", (1,)))
        machine.commit("P", 1)
        machine.execute("Q", Invocation("Enq", (2,)))
        # Under Fig 4-3 a dequeue of a committed item ignores active Enqs.
        assert machine.execute("R", Invocation("Deq")) == 1

    def test_locks_released_on_commit(self):
        machine = queue_machine(QUEUE_CONFLICT_FIG43)
        machine.execute("P", Invocation("Enq", (1,)))
        machine.commit("P", 1)
        machine.execute("Q", Invocation("Enq", (2,)))  # no conflict now

    def test_locks_released_on_abort(self):
        machine = queue_machine(QUEUE_CONFLICT_FIG43)
        machine.execute("P", Invocation("Enq", (1,)))
        machine.abort("P")
        machine.execute("Q", Invocation("Enq", (2,)))

    def test_conflict_reports_holder(self):
        machine = queue_machine(QUEUE_CONFLICT_FIG43)
        machine.execute("P", Invocation("Enq", (1,)))
        with pytest.raises(LockConflict) as info:
            machine.execute("Q", Invocation("Enq", (2,)))
        assert info.value.holder == "P"
        assert info.value.operation == enq(1)

    def test_own_locks_never_conflict(self):
        machine = queue_machine(QUEUE_CONFLICT_FIG43)
        machine.execute("P", Invocation("Enq", (1,)))
        machine.execute("P", Invocation("Enq", (2,)))

    def test_failed_execute_leaves_machine_unchanged(self):
        machine = queue_machine(QUEUE_CONFLICT_FIG43)
        machine.execute("P", Invocation("Enq", (1,)))
        before = machine.history().events
        with pytest.raises(LockConflict):
            machine.execute("Q", Invocation("Enq", (2,)))
        assert machine.history().events == before
        assert machine.pending("Q") is None
        assert machine.intentions("Q") == ()


class TestViewsAndBlocking:
    def test_view_includes_committed_in_timestamp_order(self):
        machine = queue_machine()
        machine.execute("P", Invocation("Enq", (1,)))
        machine.execute("Q", Invocation("Enq", (2,)))
        machine.commit("P", 2)
        machine.commit("Q", 1)
        assert machine.committed_state() == (enq(2), enq(1))

    def test_view_appends_own_intentions(self):
        machine = queue_machine()
        machine.execute("P", Invocation("Enq", (1,)))
        machine.commit("P", 1)
        machine.execute("Q", Invocation("Enq", (5,)))
        assert machine.view("Q") == (enq(1), enq(5))

    def test_deq_on_empty_blocks(self):
        machine = queue_machine()
        with pytest.raises(WouldBlock):
            machine.execute("P", Invocation("Deq"))

    def test_uncommitted_items_invisible_to_others(self):
        machine = queue_machine(QUEUE_CONFLICT_FIG43)
        machine.execute("P", Invocation("Enq", (1,)))
        # Q's view has no committed items: Deq blocks (it cannot consume
        # P's uncommitted enqueue).
        with pytest.raises(WouldBlock):
            machine.execute("Q", Invocation("Deq"))

    def test_own_intentions_visible(self):
        machine = queue_machine()
        machine.execute("P", Invocation("Enq", (7,)))
        assert machine.execute("P", Invocation("Deq")) == 7


class TestTheorem16:
    """With a dependency-relation conflict, histories are hybrid atomic."""

    def test_paper_scenario(self):
        spec = FifoQueueSpec()
        machine = LockMachine(spec, QUEUE_CONFLICT_FIG42)
        machine.execute("P", Invocation("Enq", (1,)))
        machine.execute("Q", Invocation("Enq", (2,)))
        machine.execute("P", Invocation("Enq", (3,)))
        machine.commit("P", 2)
        machine.commit("Q", 1)
        assert machine.execute("R", Invocation("Deq")) == 2
        assert machine.execute("R", Invocation("Deq")) == 1
        machine.commit("R", 5)
        h = machine.history()
        assert is_hybrid_atomic(h, {"X": spec})
        assert is_online_hybrid_atomic(h, {"X": spec})

    def test_interleaved_account_run(self):
        spec = AccountSpec()
        machine = LockMachine(spec, ACCOUNT_CONFLICT)
        machine.execute("P", Invocation("Credit", (10,)))
        machine.execute("Q", Invocation("Credit", (5,)))  # concurrent credit
        machine.execute("Q", Invocation("Post", (50,)))  # post with credit
        machine.commit("Q", 1)
        machine.commit("P", 2)
        machine.execute("R", Invocation("Debit", (17,)))
        machine.commit("R", 3)
        h = machine.history()
        assert is_hybrid_atomic(h, {"X": spec})
        # Q (ts1): 5 * 1.5 = 7.5; P (ts2): +10 => 17.5; R debits 17 => Ok.


class TestTheorem17:
    """A non-dependency conflict relation admits non-hybrid-atomic runs."""

    def test_empty_conflict_relation_breaks_file(self):
        spec = FileSpec(initial=0)
        machine = LockMachine(spec, EMPTY_RELATION, obj="F")
        machine.execute("T", Invocation("Write", (1,)))
        machine.commit("T", 1)
        machine.execute("Q", Invocation("Write", (2,)))  # active writer
        # R reads 1 from its view (committed state) because no lock
        # conflicts with Q's write — the unsound part.
        assert machine.execute("R", Invocation("Read")) == 1
        machine.commit("Q", 2)
        machine.commit("R", 3)
        h = machine.history()
        assert not is_hybrid_atomic(h, {"F": spec})

    def test_correct_relation_prevents_it(self):
        spec = FileSpec(initial=0)
        machine = LockMachine(spec, FILE_CONFLICT, obj="F")
        machine.execute("T", Invocation("Write", (1,)))
        machine.commit("T", 1)
        machine.execute("Q", Invocation("Write", (2,)))
        with pytest.raises(LockConflict):
            machine.execute("R", Invocation("Read"))
