"""Tests for Section 6: clocks, bounds, horizon, and forgetting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adts import (
    ACCOUNT_CONFLICT,
    AccountSpec,
    FifoQueueSpec,
    QUEUE_CONFLICT_FIG42,
    deq,
    enq,
)
from repro.core import (
    NEG_INFINITY,
    CompactingLockMachine,
    Invocation,
    LockMachine,
    is_hybrid_atomic,
)


def machines():
    spec = FifoQueueSpec()
    plain = LockMachine(spec, QUEUE_CONFLICT_FIG42)
    compacting = CompactingLockMachine(spec, QUEUE_CONFLICT_FIG42)
    return spec, plain, compacting


class TestNegInfinity:
    def test_orders_below_everything(self):
        assert NEG_INFINITY < 0
        assert NEG_INFINITY < -10**9
        assert not (NEG_INFINITY > 5)
        assert NEG_INFINITY <= NEG_INFINITY
        assert NEG_INFINITY == NEG_INFINITY
        assert min(NEG_INFINITY, 3) == NEG_INFINITY
        assert max(NEG_INFINITY, 3) == 3


class TestBookkeeping:
    def test_clock_tracks_max_commit(self):
        _, _, machine = machines()
        assert machine.clock == NEG_INFINITY
        machine.execute("P", Invocation("Enq", (1,)))
        machine.commit("P", 7)
        assert machine.clock == 7
        machine.execute("Q", Invocation("Enq", (2,)))
        machine.commit("Q", 3)  # lower stamp: clock keeps the max
        assert machine.clock == 7

    def test_bound_raised_on_response(self):
        _, _, machine = machines()
        machine.execute("P", Invocation("Enq", (1,)))
        machine.commit("P", 5)
        machine.execute("Q", Invocation("Enq", (2,)))
        assert machine.bound("Q") == 5

    def test_bound_initially_neg_infinity_clock(self):
        _, _, machine = machines()
        machine.execute("Q", Invocation("Enq", (2,)))
        assert machine.bound("Q") == NEG_INFINITY

    def test_horizon_no_transactions(self):
        _, _, machine = machines()
        assert machine.horizon() == NEG_INFINITY

    def test_horizon_only_committed(self):
        _, _, machine = machines()
        machine.execute("P", Invocation("Enq", (1,)))
        machine.commit("P", 4)
        # P is immediately forgettable: horizon reached its stamp.
        assert machine.forgotten_transactions == ("P",)

    def test_horizon_capped_by_active_bound(self):
        _, _, machine = machines()
        machine.execute("Z", Invocation("Enq", (9,)))  # active, bound -inf
        machine.execute("P", Invocation("Enq", (1,)))
        machine.commit("P", 4)
        # Z might still commit below 4: P must be retained.
        assert machine.forgotten_transactions == ()
        assert machine.horizon() == NEG_INFINITY


class TestForgetting:
    def test_forgets_in_timestamp_order(self):
        _, _, machine = machines()
        machine.execute("P", Invocation("Enq", (1,)))
        machine.execute("Q", Invocation("Enq", (2,)))
        machine.commit("P", 2)
        # Q active with bound -inf: nothing forgettable yet.
        assert machine.forgotten_transactions == ()
        machine.commit("Q", 1)
        # Now both go, Q (ts1) folded before P (ts2).
        assert machine.forgotten_transactions == ("Q", "P")
        assert machine.version_states == frozenset({(2, 1)})

    def test_retained_intentions_shrink(self):
        _, _, machine = machines()
        machine.execute("P", Invocation("Enq", (1,)))
        assert machine.retained_intentions() == 1
        machine.commit("P", 1)
        assert machine.retained_intentions() == 0
        assert machine.forgotten_operations == 1

    def test_abort_discards_intentions(self):
        _, _, machine = machines()
        machine.execute("P", Invocation("Enq", (1,)))
        machine.abort("P")
        assert machine.retained_intentions() == 0
        assert machine.version_states == frozenset({()})

    def test_forgotten_state_feeds_views(self):
        _, _, machine = machines()
        machine.execute("P", Invocation("Enq", (7,)))
        machine.commit("P", 1)
        assert machine.forgotten_transactions == ("P",)
        # Q's view starts from the version: Deq returns 7.
        assert machine.execute("Q", Invocation("Deq")) == 7

    def test_plain_machine_never_forgets(self):
        spec, plain, _ = machines()
        plain.execute("P", Invocation("Enq", (1,)))
        plain.commit("P", 1)
        assert plain.intentions("P") == (enq(1),)


class TestDifferential:
    """The auxiliary components must not change accepted behaviour."""

    def run_script(self, machine):
        results = []
        machine.execute("P", Invocation("Enq", (1,)))
        machine.execute("Q", Invocation("Enq", (2,)))
        machine.commit("P", 2)
        machine.commit("Q", 1)
        results.append(machine.execute("R", Invocation("Deq")))
        results.append(machine.execute("R", Invocation("Deq")))
        machine.commit("R", 3)
        machine.execute("S", Invocation("Enq", (9,)))
        machine.abort("S")  # S's item must never be observed
        machine.execute("U", Invocation("Enq", (4,)))
        machine.commit("U", 4)
        results.append(machine.execute("T", Invocation("Deq")))
        machine.commit("T", 5)
        return results

    def test_same_results_and_history(self):
        spec, plain, compacting = machines()
        assert self.run_script(plain) == self.run_script(compacting)
        assert plain.history().events == compacting.history().events
        assert is_hybrid_atomic(plain.history(), {"X": spec})

    def test_compacting_retains_less(self):
        _, plain, compacting = machines()
        self.run_script(plain)
        self.run_script(compacting)
        plain_size = sum(
            len(plain.intentions(t)) for t in ("P", "Q", "R", "T", "U")
        )
        assert plain_size == 6
        assert compacting.retained_intentions() == 0


class TestOutOfOrderTimestamps:
    def test_merge_in_timestamp_order_after_late_low_commit(self):
        spec = AccountSpec()
        machine = CompactingLockMachine(spec, ACCOUNT_CONFLICT)
        machine.execute("P", Invocation("Credit", (10,)))
        machine.execute("Q", Invocation("Post", (50,)))
        # P commits with the *higher* stamp first.
        machine.commit("P", 10)
        # P can't be forgotten: Q (bound -inf) may still commit below 10.
        assert machine.forgotten_transactions == ()
        machine.commit("Q", 5)
        # Merge order must be Q then P: 0 * 1.5 + 10 = 10.
        assert machine.forgotten_transactions == ("Q", "P")
        assert machine.execute("R", Invocation("Debit", (10,))) == "Ok"


class TestQueueSpecialCase:
    """Section 6's closing observation: because Deq conflicts with every
    other operation (Fig 4-2), a dequeuer running implies no other active
    transaction has executed anything — so when it completes, everything
    committed is immediately forgettable.  The generic horizon achieves
    this without special-casing."""

    def test_dequeuer_excludes_everything_and_folds_on_completion(self):
        from repro.adts import QUEUE_CONFLICT_FIG42, FifoQueueSpec
        from repro.core import LockConflict
        import pytest

        machine = CompactingLockMachine(FifoQueueSpec(), QUEUE_CONFLICT_FIG42)
        for index in range(5):
            name = f"P{index}"
            machine.execute(name, Invocation("Enq", (index,)))
        for index in range(5):
            machine.commit(f"P{index}", index + 1)
        assert machine.retained_intentions() == 0  # all folded already
        machine.execute("D", Invocation("Deq"))
        # While the dequeuer holds its lock, other-item enqueues are shut
        # out entirely — the premise of the paper's special case.
        with pytest.raises(LockConflict):
            machine.execute("P9", Invocation("Enq", (9,)))
        machine.commit("D", 11)
        # ... so at D's completion nothing else is active and the horizon
        # jumps straight to D's timestamp: D is folded at once.
        assert machine.forgotten_transactions[-1] == "D"
        assert machine.retained_intentions() == 0
        # Everything folded: the machine is back to its fresh-state horizon.
        assert machine.horizon() == NEG_INFINITY


class TestHorizonMonotonicity:
    """Lemma 19's safety rests on an invariant ``forget()`` asserts per
    transaction: the fold fence never regresses.  The raw horizon *can*
    drop back to -∞ — Definition 20's min is over active bounds and
    retained commit timestamps, and a full fold empties that candidate
    set — but ``max(version_timestamp, horizon())`` is monotone: bounds
    only rise (to the clock), pins are rejected below the horizon, and
    folding removes a committed timestamp only after recording it in the
    version timestamp.  This drives the machine through skewed-timestamp
    workloads (commit order deliberately disagreeing with timestamp
    order) and checks that fence directly, plus: nothing folded can
    still be needed (every retained intentions list belongs to a commit
    timestamp above the version timestamp)."""

    command = st.tuples(
        st.sampled_from(["invoke", "commit", "abort"]),
        st.sampled_from(["P", "Q", "R", "S"]),
        st.integers(min_value=0, max_value=3),
    )

    @settings(max_examples=80, deadline=None)
    @given(commands=st.lists(command, max_size=20), seed=st.integers(0, 2**16))
    def test_horizon_never_regresses_under_skew(self, commands, seed):
        from repro.core import LockConflict, WouldBlock
        from repro.core.timestamps import SkewedTimestampGenerator
        from repro.adts import ACCOUNT_CONFLICT, AccountSpec

        invocations = [
            Invocation("Credit", (2,)),
            Invocation("Post", (50,)),
            Invocation("Debit", (2,)),
            Invocation("Debit", (3,)),
        ]
        machine = CompactingLockMachine(AccountSpec(), ACCOUNT_CONFLICT)
        generator = SkewedTimestampGenerator(seed=seed, gap=9)
        completed = set()
        issued = 0
        last_fence = max(machine.version_timestamp, machine.horizon())
        last_version_timestamp = machine.version_timestamp
        for kind, transaction, index in commands:
            if transaction in completed:
                continue
            if kind == "invoke":
                try:
                    machine.execute(transaction, invocations[index % 4])
                except (LockConflict, WouldBlock):
                    pass
                else:
                    if issued:
                        generator.observe(transaction, issued)
            elif kind == "commit":
                timestamp = generator.commit_timestamp(transaction)
                generator.forget(transaction)
                issued = max(issued, timestamp)
                machine.commit(transaction, timestamp)
                completed.add(transaction)
            else:
                machine.abort(transaction)
                generator.forget(transaction)
                completed.add(transaction)
            fence = max(machine.version_timestamp, machine.horizon())
            assert last_fence <= fence, "fold fence regressed"
            last_fence = fence
            assert last_version_timestamp <= machine.version_timestamp
            last_version_timestamp = machine.version_timestamp
            # Nothing folded is still needed: retained intentions all
            # belong to commits above the version timestamp.  (A commit
            # at or below it is legal only for a transaction that never
            # executed — its bound was never raised — and such a
            # transaction has nothing to retain.)
            for name, retained in machine.committed_transactions.items():
                if machine.intentions(name):
                    assert retained > machine.version_timestamp
