"""Tests for commit-timestamp generation (Section 3.3's constraint)."""

import pytest

from repro.core import (
    LogicalClock,
    MonotoneTimestampGenerator,
    SkewedTimestampGenerator,
)


class TestLogicalClock:
    def test_tick_increments(self):
        clock = LogicalClock()
        assert clock.tick() == 1
        assert clock.tick() == 2
        assert clock.now == 2

    def test_observe_merges(self):
        clock = LogicalClock()
        clock.observe(10)
        assert clock.tick() == 11

    def test_observe_never_rewinds(self):
        clock = LogicalClock(start=5)
        clock.observe(2)
        assert clock.now == 5


class TestMonotoneGenerator:
    def test_strictly_increasing(self):
        generator = MonotoneTimestampGenerator()
        stamps = [generator.commit_timestamp(f"T{i}") for i in range(10)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 10

    def test_observe_advances(self):
        generator = MonotoneTimestampGenerator()
        generator.observe("T1", 100)
        assert generator.commit_timestamp("T1") > 100

    def test_forget_is_noop(self):
        generator = MonotoneTimestampGenerator()
        generator.forget("T1")
        assert generator.commit_timestamp("T1") == 1


class TestSkewedGenerator:
    def test_unique_timestamps(self):
        generator = SkewedTimestampGenerator(seed=3)
        stamps = [generator.commit_timestamp(f"T{i}") for i in range(200)]
        assert len(set(stamps)) == 200

    def test_respects_observed_bound(self):
        generator = SkewedTimestampGenerator(seed=1)
        generator.observe("T", 50)
        for _ in range(20):
            assert generator.commit_timestamp("T") > 50

    def test_bound_keeps_maximum(self):
        generator = SkewedTimestampGenerator(seed=1)
        generator.observe("T", 50)
        generator.observe("T", 10)
        assert generator.commit_timestamp("T") > 50

    def test_produces_out_of_order_stamps(self):
        # The entire point: some later commit receives a smaller stamp
        # than some earlier commit.
        generator = SkewedTimestampGenerator(seed=7, gap=16)
        stamps = [generator.commit_timestamp(f"T{i}") for i in range(50)]
        assert any(b < a for a, b in zip(stamps, stamps[1:]))

    def test_forget_clears_bound(self):
        generator = SkewedTimestampGenerator(seed=0)
        generator.observe("T", 1000)
        generator.forget("T")
        # A fresh transaction named T is unconstrained again (may land
        # below 1000 eventually); at minimum the bound table has no entry.
        assert "T" not in generator._bounds

    def test_deterministic_for_seed(self):
        a = SkewedTimestampGenerator(seed=5)
        b = SkewedTimestampGenerator(seed=5)
        assert [a.commit_timestamp(f"T{i}") for i in range(20)] == [
            b.commit_timestamp(f"T{i}") for i in range(20)
        ]

    def test_gap_validation(self):
        with pytest.raises(ValueError):
            SkewedTimestampGenerator(gap=0)
