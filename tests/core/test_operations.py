"""Unit tests for operations and invocations."""

import pytest

from repro.core import Invocation, Operation, op


class TestInvocation:
    def test_name_and_args(self):
        invocation = Invocation("Enq", (3,))
        assert invocation.name == "Enq"
        assert invocation.args == (3,)

    def test_default_args_empty(self):
        assert Invocation("Deq").args == ()

    def test_args_coerced_to_tuple(self):
        assert Invocation("Enq", [1, 2]).args == (1, 2)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Invocation("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ValueError):
            Invocation(3)

    def test_str(self):
        assert str(Invocation("Enq", (3,))) == "Enq(3)"
        assert str(Invocation("Deq")) == "Deq()"

    def test_hashable_and_equal(self):
        assert Invocation("Enq", (3,)) == Invocation("Enq", (3,))
        assert hash(Invocation("Enq", (3,))) == hash(Invocation("Enq", (3,)))
        assert Invocation("Enq", (3,)) != Invocation("Enq", (4,))

    def test_with_result(self):
        operation = Invocation("Enq", (3,)).with_result("Ok")
        assert operation == Operation(Invocation("Enq", (3,)), "Ok")


class TestOperation:
    def test_accessors(self):
        operation = Operation(Invocation("Debit", (5,)), "Overdraft")
        assert operation.name == "Debit"
        assert operation.args == (5,)
        assert operation.result == "Overdraft"

    def test_default_result_is_ok(self):
        assert Operation(Invocation("Enq", (1,))).result == "Ok"

    def test_str_matches_paper_notation(self):
        assert str(Operation(Invocation("Enq", (3,)), "Ok")) == "[Enq(3), 'Ok']"

    def test_equality_includes_result(self):
        a = Operation(Invocation("Deq"), 1)
        b = Operation(Invocation("Deq"), 2)
        assert a != b

    def test_orderable(self):
        ops = sorted([op("B"), op("A")])
        assert [o.name for o in ops] == ["A", "B"]

    def test_usable_in_sets(self):
        assert len({op("Enq", 1), op("Enq", 1), op("Enq", 2)}) == 2


class TestOpHelper:
    def test_op_builds_operation(self):
        operation = op("Enq", 3)
        assert operation.invocation == Invocation("Enq", (3,))
        assert operation.result == "Ok"

    def test_op_custom_result(self):
        assert op("Deq", result=7).result == 7

    def test_op_multiple_args(self):
        assert op("Bind", "k", 1).args == ("k", 1)
