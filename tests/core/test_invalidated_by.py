"""Tests for Definitions 8-9 (invalidated-by) and Theorem 10."""

from repro.adts import (
    FifoQueueSpec,
    FileSpec,
    deq,
    enq,
    read,
    write,
)
from repro.core import (
    find_invalidation_witness,
    invalidated_by,
    invalidates,
    is_dependency_relation,
)


QSPEC = FifoQueueSpec()
QOPS = [enq(1), enq(2), deq(1), deq(2)]
FSPEC = FileSpec()
FOPS = [read(0), read(1), write(0), write(1)]


class TestWitnesses:
    def test_write_invalidates_read(self):
        witness = find_invalidation_witness(FSPEC, write(1), read(0), FOPS)
        assert witness is not None
        h1, h2 = witness.h1, witness.h2
        assert FSPEC.is_legal(h1 + (write(1),) + h2)
        assert FSPEC.is_legal(h1 + h2 + (read(0),))
        assert not FSPEC.is_legal(h1 + (write(1),) + h2 + (read(0),))

    def test_write_does_not_invalidate_write(self):
        assert not invalidates(FSPEC, write(0), write(1), FOPS)
        assert not invalidates(FSPEC, write(1), write(1), FOPS)

    def test_same_value_write_does_not_invalidate_read(self):
        assert not invalidates(FSPEC, write(0), read(0), FOPS)

    def test_read_invalidates_nothing(self):
        for q in FOPS:
            assert not invalidates(FSPEC, read(0), q, FOPS)

    def test_enq_invalidates_deq_of_other_item(self):
        assert invalidates(QSPEC, enq(2), deq(1), QOPS)
        assert not invalidates(QSPEC, enq(1), deq(1), QOPS)

    def test_deq_invalidates_same_item_deq(self):
        assert invalidates(QSPEC, deq(1), deq(1), QOPS)
        assert not invalidates(QSPEC, deq(1), deq(2), QOPS)

    def test_witness_renders(self):
        witness = find_invalidation_witness(FSPEC, write(1), read(0), FOPS)
        assert "invalidates" in str(witness)


class TestDerivedRelations:
    def test_file_table(self, file_adt, file_ops):
        derived = invalidated_by(file_adt.spec, file_ops)
        expected = file_adt.dependency.restrict(file_ops)
        assert derived.pair_set == expected.pair_set

    def test_queue_table_is_fig42(self, queue_adt, queue_ops):
        derived = invalidated_by(queue_adt.spec, queue_ops)
        from repro.adts import QUEUE_DEPENDENCY_FIG42

        assert derived.pair_set == QUEUE_DEPENDENCY_FIG42.restrict(queue_ops).pair_set

    def test_semiqueue_table(self, semiqueue_adt, semiqueue_ops):
        derived = invalidated_by(semiqueue_adt.spec, semiqueue_ops)
        expected = semiqueue_adt.dependency.restrict(semiqueue_ops)
        assert derived.pair_set == expected.pair_set

    def test_account_table(self, account_adt, account_ops):
        derived = invalidated_by(account_adt.spec, account_ops)
        expected = account_adt.dependency.restrict(account_ops)
        assert derived.pair_set == expected.pair_set


class TestTheorem10:
    """Invalidated-by is always a dependency relation."""

    def test_file(self, file_adt, file_ops):
        derived = invalidated_by(file_adt.spec, file_ops)
        assert is_dependency_relation(derived, file_adt.spec, file_ops)

    def test_queue(self, queue_adt, queue_ops):
        derived = invalidated_by(queue_adt.spec, queue_ops)
        assert is_dependency_relation(derived, queue_adt.spec, queue_ops)

    def test_semiqueue(self, semiqueue_adt, semiqueue_ops):
        derived = invalidated_by(semiqueue_adt.spec, semiqueue_ops)
        assert is_dependency_relation(derived, semiqueue_adt.spec, semiqueue_ops)

    def test_account(self, account_adt, account_ops):
        derived = invalidated_by(account_adt.spec, account_ops)
        assert is_dependency_relation(derived, account_adt.spec, account_ops)
