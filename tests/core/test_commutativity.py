"""Tests for Definitions 25-26 (commutativity) and Theorem 28."""

from repro.adts import (
    FifoQueueSpec,
    FileSpec,
    credit,
    debit_ok,
    debit_overdraft,
    deq,
    enq,
    post,
    read,
    write,
)
from repro.core import (
    commute,
    failure_to_commute,
    find_commute_counterexample,
    is_dependency_relation,
    is_symmetric,
)


QSPEC = FifoQueueSpec()
QOPS = [enq(1), enq(2), deq(1), deq(2)]
FSPEC = FileSpec()
FOPS = [read(0), read(1), write(0), write(1)]


class TestCommute:
    def test_writes_fail_to_commute(self):
        cex = find_commute_counterexample(FSPEC, write(0), write(1), FOPS)
        assert cex is not None
        assert "not equivalent" in cex.reason

    def test_same_value_writes_commute(self):
        assert commute(FSPEC, write(1), write(1), FOPS)

    def test_reads_commute(self):
        assert commute(FSPEC, read(0), read(0), FOPS)

    def test_read_write_same_value_commute(self):
        assert commute(FSPEC, read(1), write(1), FOPS)

    def test_read_write_different_value_fail(self):
        assert not commute(FSPEC, read(0), write(1), FOPS)

    def test_enqueues_fail_to_commute(self):
        assert not commute(QSPEC, enq(1), enq(2), QOPS)
        assert commute(QSPEC, enq(1), enq(1), QOPS)

    def test_enq_deq_commute(self):
        # Both legal only when the queue is non-empty with the dequeued
        # item at the head; then both orders agree.
        assert commute(QSPEC, enq(2), deq(1), QOPS)

    def test_counterexample_renders(self):
        cex = find_commute_counterexample(FSPEC, write(0), write(1), FOPS)
        assert "fail to commute" in str(cex)


class TestAccountCommutativity:
    def test_post_credit_fail(self, account_adt, account_ops):
        assert not commute(account_adt.spec, post(50), credit(2), account_ops)

    def test_post_debit_fail(self, account_adt, account_ops):
        assert not commute(account_adt.spec, post(50), debit_ok(2), account_ops)

    def test_credit_debit_ok_commute(self, account_adt, account_ops):
        assert commute(account_adt.spec, credit(2), debit_ok(2), account_ops)

    def test_credit_overdraft_fail(self, account_adt, account_ops):
        assert not commute(
            account_adt.spec, credit(2), debit_overdraft(2), account_ops
        )

    def test_overdrafts_commute(self, account_adt, account_ops):
        assert commute(
            account_adt.spec, debit_overdraft(2), debit_overdraft(3), account_ops
        )


class TestDerivedMC:
    def test_queue_mc_equals_fig43_closure(self, queue_adt, queue_ops):
        derived = failure_to_commute(queue_adt.spec, queue_ops)
        from repro.adts import QUEUE_COMMUTATIVITY_CONFLICT

        expected = QUEUE_COMMUTATIVITY_CONFLICT.restrict(queue_ops)
        assert derived.pair_set == expected.pair_set

    def test_account_mc_matches_fig71(self, account_adt, account_ops):
        derived = failure_to_commute(account_adt.spec, account_ops, max_h=3)
        expected = account_adt.commutativity_conflict.restrict(account_ops)
        assert derived.pair_set == expected.pair_set

    def test_mc_is_symmetric(self, file_adt, file_ops):
        derived = failure_to_commute(file_adt.spec, file_ops)
        assert is_symmetric(derived, file_ops)


class TestTheorem28:
    """Failure-to-commute is a dependency relation."""

    def test_file(self, file_adt, file_ops):
        mc = failure_to_commute(file_adt.spec, file_ops)
        assert is_dependency_relation(mc, file_adt.spec, file_ops)

    def test_queue(self, queue_adt, queue_ops):
        mc = failure_to_commute(queue_adt.spec, queue_ops)
        assert is_dependency_relation(mc, queue_adt.spec, queue_ops)

    def test_account(self, account_adt, account_ops):
        mc = failure_to_commute(account_adt.spec, account_ops, max_h=3)
        assert is_dependency_relation(mc, account_adt.spec, account_ops)

    def test_semiqueue(self, semiqueue_adt, semiqueue_ops):
        mc = failure_to_commute(semiqueue_adt.spec, semiqueue_ops)
        assert is_dependency_relation(mc, semiqueue_adt.spec, semiqueue_ops)
