"""Unit tests for events, histories, well-formedness, and derived orders."""

import pytest

from repro.core import (
    AbortEvent,
    CommitEvent,
    History,
    HistoryBuilder,
    Invocation,
    InvocationEvent,
    ResponseEvent,
    WellFormednessError,
    is_completion,
)


def queue_history():
    """The Section 3.2 FIFO queue history."""
    return (
        HistoryBuilder("X")
        .operation("P", Invocation("Enq", (1,)), "Ok")
        .operation("Q", Invocation("Enq", (2,)), "Ok")
        .operation("P", Invocation("Enq", (3,)), "Ok")
        .commit("P", 2)
        .commit("Q", 1)
        .operation("R", Invocation("Deq"), 2)
        .operation("R", Invocation("Deq"), 1)
        .commit("R", 5)
        .history()
    )


class TestEvents:
    def test_completion_classification(self):
        assert is_completion(CommitEvent("P", "X", 1))
        assert is_completion(AbortEvent("P", "X"))
        assert not is_completion(InvocationEvent("P", "X", Invocation("Deq")))
        assert not is_completion(ResponseEvent("P", "X", 1))

    def test_event_rendering(self):
        assert str(CommitEvent("P", "X", 3)) == "<commit(3), X, P>"
        assert str(AbortEvent("P", "X")) == "<abort, X, P>"


class TestRestriction:
    def test_restrict_transaction(self):
        h = queue_history()
        hp = h.restrict_transactions("P")
        assert all(e.transaction == "P" for e in hp)
        assert len(hp) == 5  # 2 ops * 2 events + commit

    def test_restrict_object(self):
        h = queue_history()
        assert h.restrict_objects("X") == History(h.events, validate=False)
        assert len(h.restrict_objects("Y")) == 0

    def test_restrict_multiple_transactions(self):
        h = queue_history()
        pq = h.restrict_transactions({"P", "Q"})
        assert {e.transaction for e in pq} == {"P", "Q"}


class TestClassification:
    def test_committed_aborted_completed(self):
        h = (
            HistoryBuilder()
            .operation("P", Invocation("Enq", (1,)))
            .commit("P", 1)
            .operation("Q", Invocation("Enq", (2,)))
            .abort("Q")
            .history()
        )
        assert h.committed() == {"P"}
        assert h.aborted() == {"Q"}
        assert h.completed() == {"P", "Q"}
        assert not h.is_failure_free()

    def test_permanent_drops_non_committed(self):
        h = (
            HistoryBuilder()
            .operation("P", Invocation("Enq", (1,)))
            .commit("P", 1)
            .operation("Q", Invocation("Enq", (2,)))
            .history()
        )
        permanent = h.permanent()
        assert permanent.transactions() == ["P"]

    def test_timestamps(self):
        assert queue_history().timestamps() == {"P": 2, "Q": 1, "R": 5}

    def test_committed_in_timestamp_order(self):
        assert queue_history().committed_in_timestamp_order() == ["Q", "P", "R"]


class TestSerialAndOpSeq:
    def test_is_serial(self):
        assert not queue_history().is_serial()
        serial = queue_history().serial(["Q", "P", "R"])
        assert serial.is_serial()

    def test_serial_preserves_per_transaction_events(self):
        h = queue_history()
        s = h.serial(["R", "P", "Q"])
        assert h.equivalent_to(s)

    def test_serial_requires_all_transactions(self):
        with pytest.raises(ValueError):
            queue_history().serial(["P", "Q"])

    def test_op_seq_pairs_invocations(self):
        h = queue_history().restrict_transactions("R")
        ops = h.op_seq()
        assert [(o.name, o.result) for o in ops] == [("Deq", 2), ("Deq", 1)]

    def test_op_seq_drops_pending_invocation(self):
        h = (
            HistoryBuilder()
            .operation("P", Invocation("Enq", (1,)))
            .invoke("P", Invocation("Enq", (2,)))
            .history()
        )
        assert len(h.op_seq()) == 1

    def test_prefixes(self):
        h = queue_history()
        prefixes = list(h.prefixes())
        assert len(prefixes) == len(h) + 1
        assert prefixes[0] == History([], validate=False)
        assert prefixes[-1].events == h.events


class TestOrders:
    def test_precedes_captures_information_flow(self):
        h = queue_history()
        precedes = h.precedes()
        # R's dequeues return after P and Q commit.
        assert ("P", "R") in precedes
        assert ("Q", "R") in precedes
        # P and Q were concurrent.
        assert ("P", "Q") not in precedes
        assert ("Q", "P") not in precedes

    def test_ts_order(self):
        ts = queue_history().ts_order()
        assert ("Q", "P") in ts
        assert ("P", "R") in ts
        assert ("P", "Q") not in ts

    def test_known_union(self):
        h = queue_history()
        assert h.known() == h.precedes() | h.ts_order()


class TestWellFormedness:
    def test_alternation_enforced(self):
        with pytest.raises(WellFormednessError):
            History(
                [
                    InvocationEvent("P", "X", Invocation("Deq")),
                    InvocationEvent("P", "X", Invocation("Deq")),
                ]
            )

    def test_response_without_invocation(self):
        with pytest.raises(WellFormednessError):
            History([ResponseEvent("P", "X", 1)])

    def test_response_object_must_match(self):
        with pytest.raises(WellFormednessError):
            History(
                [
                    InvocationEvent("P", "X", Invocation("Deq")),
                    ResponseEvent("P", "Y", 1),
                ]
            )

    def test_commit_and_abort_exclusive(self):
        with pytest.raises(WellFormednessError):
            HistoryBuilder().commit("P", 1).abort("P").history()
        with pytest.raises(WellFormednessError):
            HistoryBuilder().abort("P").commit("P", 1).history()

    def test_commit_with_pending_invocation(self):
        with pytest.raises(WellFormednessError):
            (
                HistoryBuilder()
                .invoke("P", Invocation("Enq", (1,)))
                .commit("P", 1)
                .history()
            )

    def test_no_invocations_after_commit(self):
        with pytest.raises(WellFormednessError):
            (
                HistoryBuilder()
                .commit("P", 1)
                .invoke("P", Invocation("Enq", (1,)))
                .history()
            )

    def test_commit_timestamps_consistent_per_transaction(self):
        # Same transaction may commit at several objects with one timestamp.
        h = (
            HistoryBuilder()
            .commit("P", 1, obj="X")
            .commit("P", 1, obj="Y")
            .history()
        )
        assert h.committed() == {"P"}
        with pytest.raises(WellFormednessError):
            (
                HistoryBuilder()
                .commit("P", 1, obj="X")
                .commit("P", 2, obj="Y")
                .history()
            )

    def test_commit_timestamps_unique_across_transactions(self):
        with pytest.raises(WellFormednessError):
            HistoryBuilder().commit("P", 1).commit("Q", 1).history()

    def test_aborted_transactions_may_continue(self):
        # The paper deliberately permits orphan behaviour.
        h = (
            HistoryBuilder()
            .abort("P")
            .operation("P", Invocation("Enq", (1,)))
            .history()
        )
        assert h.aborted() == {"P"}

    def test_paper_history_is_well_formed(self):
        assert len(queue_history()) == 13
