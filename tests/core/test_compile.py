"""Unit tests for the conflict-relation compiler (repro.core.compile).

The property suite (tests/properties/test_compiled_equivalence.py) covers
the compiled relations shipped by the factories; these tests pin the
pipeline pieces themselves — verification verdicts, mask compilation,
digests, the generated-module round trip, and the forgiving loader.
"""

import pytest

from repro.adts import get_adt
from repro.adts._compiled import load_compiled
from repro.adts.file import FILE_COMMUTATIVITY_CONFLICT, FILE_CONFLICT
from repro.core import CompiledRelation, Invocation, Operation
from repro.core.compile import (
    GENERATED_MARKER,
    compile_masks,
    compile_relation,
    default_universe,
    depths_for,
    derived_commutativity,
    module_digest,
    reference_relation,
    render_module,
    table_digest,
    verify_commutativity_table,
    verify_conflict_table,
)
from repro.core.conflict import (
    EMPTY_RELATION,
    TOTAL_RELATION,
    EnumeratedRelation,
    PredicateRelation,
)


@pytest.fixture()
def file_adt():
    return get_adt("File")


@pytest.fixture()
def file_universe(file_adt):
    return default_universe(file_adt)


class TestVerifyConflictTable:
    def test_shipped_table_is_sound_and_minimal(self, file_adt, file_universe):
        issues = verify_conflict_table(
            "File.CONFLICT",
            reference_relation(file_adt.conflict),
            file_adt.spec,
            file_universe,
        )
        assert issues == []

    def test_empty_relation_is_unsound(self, file_adt, file_universe):
        issues = verify_conflict_table(
            "File.CONFLICT", EMPTY_RELATION, file_adt.spec, file_universe
        )
        assert any(i.severity == "error" for i in issues)
        assert any("Definition 3" in i.message for i in issues)

    def test_asymmetric_table_is_an_error(self, file_adt, file_universe):
        lopsided = PredicateRelation(
            lambda q, p: q.name == "Read" and p.name == "Write",
            name="lopsided",
        )
        issues = verify_conflict_table(
            "File.CONFLICT", lopsided, file_adt.spec, file_universe
        )
        assert any("not symmetric" in i.message for i in issues)
        assert all(i.severity == "error" for i in issues)

    def test_total_relation_is_sound_but_not_minimal(
        self, file_adt, file_universe
    ):
        issues = verify_conflict_table(
            "File.CONFLICT", TOTAL_RELATION, file_adt.spec, file_universe
        )
        assert issues  # extra pairs are reported...
        assert all(i.severity == "warning" for i in issues)  # ...as warnings
        assert all("not minimal" in i.message for i in issues)

    def test_minimality_check_can_be_suppressed(self, file_adt, file_universe):
        issues = verify_conflict_table(
            "File.CONFLICT",
            TOTAL_RELATION,
            file_adt.spec,
            file_universe,
            check_minimal=False,
        )
        assert issues == []


class TestVerifyCommutativityTable:
    def test_shipped_table_matches_derivation(self, file_adt, file_universe):
        issues = verify_commutativity_table(
            "File.COMMUTATIVITY_CONFLICT",
            FILE_COMMUTATIVITY_CONFLICT,
            file_adt.spec,
            file_universe,
        )
        assert issues == []

    def test_wrong_table_reports_the_disagreement(self):
        # The REP107 mutation scenario: declaring the hybrid conflict
        # table as the commutativity table. Set's Insert/Remove pairs
        # commute by return value, so the tables genuinely differ.
        adt = get_adt("Set")
        universe = default_universe(adt)
        _max_h1, _max_h2, mc_depth = depths_for(adt.name)
        issues = verify_commutativity_table(
            "Set.COMMUTATIVITY_CONFLICT",
            reference_relation(adt.conflict),
            adt.spec,
            universe,
            mc_depth=mc_depth,
        )
        assert issues
        assert all(i.severity == "error" for i in issues)
        assert any("failure-to-commute" in i.message for i in issues)

    def test_derived_relation_verifies_cleanly(self, file_adt, file_universe):
        derived = derived_commutativity(file_adt.spec, file_universe)
        assert (
            verify_commutativity_table(
                "File.derived", derived, file_adt.spec, file_universe
            )
            == []
        )


class TestCompile:
    def test_masks_encode_the_relation(self, file_universe):
        masks = compile_masks(FILE_CONFLICT, file_universe)
        assert len(masks) == len(file_universe)
        for iq, q in enumerate(file_universe):
            for ip, p in enumerate(file_universe):
                assert (masks[iq] >> ip & 1 == 1) == FILE_CONFLICT.related(q, p)

    def test_compile_relation_is_a_drop_in(self, file_universe):
        compiled = compile_relation(FILE_CONFLICT, file_universe)
        assert isinstance(compiled, CompiledRelation)
        assert compiled.name == FILE_CONFLICT.name
        assert reference_relation(compiled) is FILE_CONFLICT
        for q in file_universe:
            for p in file_universe:
                assert compiled.related(q, p) == FILE_CONFLICT.related(q, p)

    def test_off_universe_queries_use_the_fallback(self, file_universe):
        compiled = compile_relation(FILE_CONFLICT, file_universe)
        alien = Operation(Invocation("Write", (123,)), "Ok")
        assert alien not in compiled.universe
        for p in file_universe:
            assert compiled.related(alien, p) == FILE_CONFLICT.related(alien, p)

    def test_no_fallback_means_off_universe_is_unrelated(self, file_universe):
        bare = CompiledRelation(
            file_universe, compile_masks(FILE_CONFLICT, file_universe)
        )
        alien = Operation(Invocation("Write", (123,)), "Ok")
        assert bare.related(alien, file_universe[0]) is False

    def test_mask_row_count_must_match_universe(self, file_universe):
        with pytest.raises(ValueError):
            CompiledRelation(file_universe, (0,))

    def test_compiling_a_compiled_relation_reuses_the_reference(
        self, file_universe
    ):
        once = compile_relation(FILE_CONFLICT, file_universe)
        twice = compile_relation(once, file_universe)
        assert reference_relation(twice) is FILE_CONFLICT


class TestDigests:
    def test_digest_is_stable_and_order_insensitive(self, file_universe):
        tables = {
            "CONFLICT": compile_masks(FILE_CONFLICT, file_universe),
            "COMMUTATIVITY_CONFLICT": compile_masks(
                FILE_COMMUTATIVITY_CONFLICT, file_universe
            ),
        }
        digest = table_digest("File", file_universe, tables)
        reordered = dict(reversed(list(tables.items())))
        assert table_digest("File", file_universe, reordered) == digest

    def test_digest_sees_any_table_edit(self, file_universe):
        masks = compile_masks(FILE_CONFLICT, file_universe)
        digest = table_digest("File", file_universe, {"CONFLICT": masks})
        edited = masks[:-1] + (masks[-1] ^ 1,)
        assert (
            table_digest("File", file_universe, {"CONFLICT": edited}) != digest
        )
        assert (
            table_digest("File", file_universe[:-1], {"CONFLICT": masks})
            != digest
        )

    def test_module_digest_requires_the_generated_shape(self):
        assert module_digest({}) is None
        assert module_digest({"ADT_NAME": "File", "UNIVERSE": ()}) is None


class TestRenderModule:
    def test_rendered_module_round_trips(self, file_universe):
        tables = {"CONFLICT": compile_masks(FILE_CONFLICT, file_universe)}
        text = render_module(
            "File", "repro.adts.file", file_universe, tables
        )
        assert GENERATED_MARKER in text
        namespace = {
            "__name__": "repro.adts._compiled.file",
            "__package__": "repro.adts._compiled",
        }
        exec(compile(text, "<rendered>", "exec"), namespace)
        assert namespace["UNIVERSE"] == tuple(file_universe)
        assert namespace["CONFLICT_MASKS"] == tables["CONFLICT"]
        assert module_digest(namespace) == namespace["DIGEST"]

    def test_rendering_is_deterministic(self, file_universe):
        tables = {"CONFLICT": compile_masks(FILE_CONFLICT, file_universe)}
        first = render_module("File", "repro.adts.file", file_universe, tables)
        second = render_module("File", "repro.adts.file", file_universe, tables)
        assert first == second


class TestLoader:
    def test_missing_module_returns_the_fallback(self):
        sentinel = EnumeratedRelation((), name="sentinel")
        assert load_compiled("no_such_stem", "CONFLICT", sentinel) is sentinel

    def test_missing_table_returns_the_fallback(self):
        sentinel = EnumeratedRelation((), name="sentinel")
        assert load_compiled("file", "NO_SUCH_TABLE", sentinel) is sentinel

    def test_real_module_loads_a_compiled_relation(self):
        loaded = load_compiled("file", "CONFLICT", FILE_CONFLICT)
        assert isinstance(loaded, CompiledRelation)
        assert loaded.fallback is FILE_CONFLICT
        assert loaded.name == FILE_CONFLICT.name
