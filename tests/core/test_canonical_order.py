"""Canonical ordering of states: ``results_for`` and the trace codec.

``SerialSpec.results_for`` must rank candidate states deterministically —
the locking protocol picks the *first* legal result, so an unstable order
changes which result a transaction observes.  It used to sort states by
``repr``, which for set-valued states (e.g. :mod:`repro.adts.set`) lists
elements in hash-iteration order and therefore varies with
``PYTHONHASHSEED``.  States are now ranked by
:func:`repro.core.canon.canonical_key`; these tests pin the key's
properties and the cross-process stability of the result order.
"""

import os
import subprocess
import sys
from fractions import Fraction
from pathlib import Path

import repro
from repro.core import Invocation
from repro.core.canon import canonical_key
from repro.core.specs import SerialSpec

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


class TestCanonicalKey:
    def test_iteration_order_independent_for_sets(self):
        assert canonical_key(frozenset("repro")) == canonical_key(
            frozenset(reversed("repro"))
        )
        assert canonical_key({3, 1, 2}) == canonical_key({2, 3, 1})

    def test_dict_insertion_order_independent(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key({"b": 2, "a": 1})

    def test_distinct_values_get_distinct_keys(self):
        values = [
            None,
            True,
            False,
            0,
            1,
            -1,
            "1",
            "",
            (),
            (1,),
            frozenset(),
            frozenset({1}),
            Fraction(1, 3),
            ("a", ("b",)),
            {"k": (1, 2)},
        ]
        keys = [canonical_key(value) for value in values]
        assert len(set(keys)) == len(keys)

    def test_same_type_ordering_is_value_ordering(self):
        assert canonical_key(3) < canonical_key(10)  # not lexicographic "10"<"3"
        assert canonical_key(-5) < canonical_key(0)
        assert canonical_key("apple") < canonical_key("banana")

    def test_nested_containers_recurse(self):
        a = frozenset({("x", frozenset({1, 2}))})
        b = frozenset({("x", frozenset({2, 1}))})
        assert canonical_key(a) == canonical_key(b)


class PickSpec(SerialSpec):
    """Each state answers ``Pick`` with a distinct result, so the order
    of ``results_for`` exposes exactly how the states were ranked."""

    name = "Pick"

    def initial_state(self):
        return frozenset()

    def outcomes(self, state, invocation):
        if invocation.name == "Pick":
            return [("|".join(sorted(state)) or "-", state)]
        return []


WORDS = ["ab", "xyz", "q", "repro", "lock", "horizon"]

_SEED_SCRIPT = """
import sys

sys.path.insert(0, {src!r})

from repro.core import Invocation
from repro.core.specs import SerialSpec
from repro.obs.codec import encode_value


class PickSpec(SerialSpec):
    name = "Pick"

    def initial_state(self):
        return frozenset()

    def outcomes(self, state, invocation):
        if invocation.name == "Pick":
            return [("|".join(sorted(state)) or "-", state)]
        return []


states = frozenset(frozenset(word) for word in {words!r})
print(PickSpec().results_for(states, Invocation("Pick")))
print(encode_value(frozenset({words!r})))
""".format(src=SRC_DIR, words=WORDS)


class TestResultsForDeterminism:
    def test_order_follows_canonical_key(self):
        states = frozenset(frozenset(word) for word in WORDS)
        expected = [
            "|".join(sorted(state))
            for state in sorted(states, key=canonical_key)
        ]
        assert PickSpec().results_for(states, Invocation("Pick")) == expected

    def test_stable_across_hash_seeds(self):
        """The regression proper: identical result order (and identical
        encoded trace payloads) under different ``PYTHONHASHSEED``s."""
        outputs = []
        for seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            outputs.append(
                subprocess.run(
                    [sys.executable, "-c", _SEED_SCRIPT],
                    env=env,
                    capture_output=True,
                    text=True,
                    check=True,
                ).stdout
            )
        assert outputs[0] == outputs[1]
