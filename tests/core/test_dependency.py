"""Tests for Definition 3 machinery: the bounded verifier, views, minimality."""

import pytest

from repro.adts import (
    QUEUE_DEPENDENCY_FIG42,
    QUEUE_DEPENDENCY_FIG43,
    deq,
    enq,
    read,
    write,
)
from repro.core import (
    EMPTY_RELATION,
    TOTAL_RELATION,
    EnumeratedRelation,
    check_dependency_relation,
    check_lemma4,
    find_minimal_dependency_relations,
    is_dependency_relation,
    is_minimal_dependency_relation,
    is_r_closed,
    is_view,
)
from repro.adts import FifoQueueSpec, FileSpec


QSPEC = FifoQueueSpec()
QOPS = [enq(1), enq(2), deq(1), deq(2)]
FSPEC = FileSpec()
FOPS = [read(0), read(1), write(0), write(1)]


class TestVerifier:
    def test_total_relation_is_dependency(self):
        assert is_dependency_relation(TOTAL_RELATION, QSPEC, QOPS)

    def test_empty_relation_not_dependency_for_queue(self):
        violation = check_dependency_relation(EMPTY_RELATION, QSPEC, QOPS)
        assert violation is not None
        # The counterexample must actually violate Definition 3.
        h, p, k = violation.h, violation.p, violation.k
        assert QSPEC.is_legal(h + k)
        assert QSPEC.is_legal(h + (p,))
        assert not QSPEC.is_legal(h + (p,) + k)

    def test_empty_relation_is_dependency_for_degenerate_type(self):
        # A type whose operations never interact: writes-only file with a
        # single value; nothing can invalidate anything.
        ops = [write(0)]
        assert is_dependency_relation(EMPTY_RELATION, FSPEC, ops)

    def test_both_queue_figures_are_dependency_relations(self):
        assert is_dependency_relation(QUEUE_DEPENDENCY_FIG42, QSPEC, QOPS)
        assert is_dependency_relation(QUEUE_DEPENDENCY_FIG43, QSPEC, QOPS)

    def test_dropping_a_needed_pair_is_caught(self):
        fig42 = QUEUE_DEPENDENCY_FIG42.restrict(QOPS)
        for pair in fig42.pair_set:
            assert not is_dependency_relation(fig42.without(pair), QSPEC, QOPS)

    def test_violation_renders(self):
        violation = check_dependency_relation(EMPTY_RELATION, QSPEC, QOPS)
        assert "illegal" in str(violation)

    def test_upward_closure(self):
        # Adding pairs to a dependency relation keeps it one.
        fig42 = QUEUE_DEPENDENCY_FIG42.restrict(QOPS)
        bigger = EnumeratedRelation(fig42.pair_set | {(enq(1), enq(2))})
        assert is_dependency_relation(bigger, QSPEC, QOPS)


class TestViews:
    def test_r_closed_full_sequence(self):
        h = (enq(1), enq(2), deq(1))
        assert is_r_closed(h, h, QUEUE_DEPENDENCY_FIG42)

    def test_r_closed_subsequence(self):
        h = (enq(1), enq(2))
        # Enqueues don't depend on each other under Fig 4-2, so either
        # alone is closed.
        assert is_r_closed((enq(1),), h, QUEUE_DEPENDENCY_FIG42)
        assert is_r_closed((enq(2),), h, QUEUE_DEPENDENCY_FIG42)

    def test_not_r_closed_when_dependency_dropped(self):
        h = (enq(1), deq(1))
        # deq(1) depends on deq(1)? No — on enq(2) (different item) no...
        # Under Fig 4-2 deq(1) depends on enq(v') with v' != 1, so here no
        # dependency on enq(1); dropping enq(1) keeps deq(1) closed.
        assert is_r_closed((deq(1),), h, QUEUE_DEPENDENCY_FIG42)
        # But under Fig 4-3, deq(1) depends on deq(1) only; enq(1) depends
        # on enq(2).  Dropping enq(1) from (enq(1), enq(2)) breaks closure
        # for a subsequence containing enq(2).
        h2 = (enq(1), enq(2))
        assert not is_r_closed((enq(2),), h2, QUEUE_DEPENDENCY_FIG43)

    def test_non_subsequence_rejected(self):
        assert not is_r_closed((deq(2),), (enq(1),), QUEUE_DEPENDENCY_FIG42)

    def test_view_includes_needed_operations(self):
        h = (enq(1), enq(2))
        # A Fig 4-2 view for deq(1) must include enq(2) (different item).
        assert is_view((enq(1), enq(2)), h, deq(1), QUEUE_DEPENDENCY_FIG42)
        assert not is_view((enq(1),), h, deq(1), QUEUE_DEPENDENCY_FIG42)

    def test_lemma7_shape(self):
        # If g is a view of h for q and g*q legal, then h*q legal: sample it.
        relation = QUEUE_DEPENDENCY_FIG42
        h = (enq(1), enq(2))
        g = (enq(1), enq(2))
        q = deq(1)
        assert is_view(g, h, q, relation)
        assert QSPEC.is_legal(g + (q,))
        assert QSPEC.is_legal(h + (q,))


class TestMinimality:
    def test_fig42_minimal(self):
        fig42 = QUEUE_DEPENDENCY_FIG42.restrict(QOPS)
        assert is_minimal_dependency_relation(fig42, QSPEC, QOPS)

    def test_fig43_minimal(self):
        fig43 = QUEUE_DEPENDENCY_FIG43.restrict(QOPS)
        assert is_minimal_dependency_relation(fig43, QSPEC, QOPS)

    def test_non_dependency_not_minimal(self):
        assert not is_minimal_dependency_relation(
            EMPTY_RELATION.restrict(QOPS), QSPEC, QOPS
        )

    def test_find_minimal_requires_dependency_input(self):
        with pytest.raises(ValueError):
            find_minimal_dependency_relations(
                EMPTY_RELATION.restrict(QOPS), QSPEC, QOPS
            )

    def test_queue_has_both_paper_minima_below_union(self):
        # Start from the union of the two figures and shrink: both minimal
        # relations of the paper must be reachable.
        union_rel = EnumeratedRelation(
            QUEUE_DEPENDENCY_FIG42.restrict(QOPS).pair_set
            | QUEUE_DEPENDENCY_FIG43.restrict(QOPS).pair_set
        )
        minima = find_minimal_dependency_relations(union_rel, QSPEC, QOPS)
        pair_sets = {m.pair_set for m in minima}
        assert QUEUE_DEPENDENCY_FIG42.restrict(QOPS).pair_set in pair_sets
        assert QUEUE_DEPENDENCY_FIG43.restrict(QOPS).pair_set in pair_sets


class TestLemma4:
    def test_holds_for_dependency_relation(self):
        relation = QUEUE_DEPENDENCY_FIG42
        h = (enq(1),)
        k1 = (enq(2),)
        k2 = (enq(1),)
        assert check_lemma4(relation, QSPEC, h, k1, k2)

    def test_vacuous_when_premises_fail(self):
        relation = QUEUE_DEPENDENCY_FIG42
        assert check_lemma4(relation, QSPEC, (), (deq(1),), (enq(1),))
