"""Unit tests for serial specifications and legality machinery."""

import pytest

from repro.adts import (
    AccountSpec,
    FifoQueueSpec,
    FileSpec,
    SemiQueueSpec,
    credit,
    debit_ok,
    debit_overdraft,
    deq,
    enq,
    ins,
    post,
    read,
    rem,
    write,
)
from repro.core import Invocation
from repro.core.specs import enumerate_legal_sequences


class TestFileSpec:
    def test_initial_read(self):
        spec = FileSpec(initial=0)
        assert spec.is_legal((read(0),))
        assert not spec.is_legal((read(1),))

    def test_read_after_write(self):
        spec = FileSpec()
        assert spec.is_legal((write(5), read(5)))
        assert not spec.is_legal((write(5), read(6)))

    def test_write_always_legal(self):
        spec = FileSpec()
        assert spec.is_legal((write(1), write(2), write(1)))

    def test_results_for(self):
        spec = FileSpec(initial=9)
        states = spec.initial_states()
        assert spec.results_for(states, Invocation("Read")) == [9]

    def test_unknown_operation_illegal(self):
        spec = FileSpec()
        assert not spec.is_legal((Invocation("Zap").with_result("Ok"),))


class TestQueueSpec:
    def test_fifo_order(self):
        spec = FifoQueueSpec()
        assert spec.is_legal((enq(1), enq(2), deq(1), deq(2)))
        assert not spec.is_legal((enq(1), enq(2), deq(2)))

    def test_deq_empty_is_partial(self):
        spec = FifoQueueSpec()
        assert not spec.is_legal((deq(1),))
        assert spec.results_for(spec.initial_states(), Invocation("Deq")) == []

    def test_deq_result_forced(self):
        spec = FifoQueueSpec()
        states = spec.run((enq(7),))
        assert spec.results_for(states, Invocation("Deq")) == [7]

    def test_duplicate_items_allowed(self):
        spec = FifoQueueSpec()
        assert spec.is_legal((enq(1), enq(1), deq(1), deq(1)))


class TestSemiQueueSpec:
    def test_rem_any_item(self):
        spec = SemiQueueSpec()
        assert spec.is_legal((ins(1), ins(2), rem(2)))
        assert spec.is_legal((ins(1), ins(2), rem(1)))

    def test_rem_absent_item_illegal(self):
        spec = SemiQueueSpec()
        assert not spec.is_legal((ins(1), rem(2)))

    def test_rem_empty_is_partial(self):
        spec = SemiQueueSpec()
        assert not spec.is_legal((rem(1),))

    def test_nondeterministic_results(self):
        spec = SemiQueueSpec()
        states = spec.run((ins(1), ins(2)))
        assert sorted(spec.results_for(states, Invocation("Rem"))) == [1, 2]

    def test_multiset_duplicates(self):
        spec = SemiQueueSpec()
        assert spec.is_legal((ins(1), ins(1), rem(1), rem(1)))
        assert not spec.is_legal((ins(1), rem(1), rem(1)))

    def test_state_canonical(self):
        spec = SemiQueueSpec()
        assert spec.run((ins(2), ins(1))) == spec.run((ins(1), ins(2)))


class TestAccountSpec:
    def test_credit_and_debit(self):
        spec = AccountSpec()
        assert spec.is_legal((credit(10), debit_ok(4)))
        assert not spec.is_legal((credit(3), debit_ok(4)))

    def test_overdraft_deterministic(self):
        spec = AccountSpec()
        assert spec.is_legal((debit_overdraft(1),))
        assert not spec.is_legal((debit_ok(1),))
        # Exactly one of the two results is legal in any state.
        assert not spec.is_legal((credit(2), debit_overdraft(1)))

    def test_post_interest_exact(self):
        spec = AccountSpec()
        # 100 * 1.05 = 105, exactly, via Fractions.
        assert spec.is_legal((credit(100), post(5), debit_ok(105)))
        assert not spec.is_legal((credit(100), post(5), debit_ok(106)))

    def test_initial_balance(self):
        spec = AccountSpec(initial=50)
        assert spec.is_legal((debit_ok(50),))


class TestEnumeration:
    def test_enumerates_prefix_closed_tree(self):
        spec = FifoQueueSpec()
        universe = [enq(1), deq(1)]
        sequences = list(enumerate_legal_sequences(spec, universe, 2))
        assert () in sequences
        assert (enq(1),) in sequences
        assert (enq(1), deq(1)) in sequences
        assert (deq(1),) not in sequences
        assert all(spec.is_legal(s) for s in sequences)

    def test_length_bound_respected(self):
        spec = FileSpec()
        universe = [write(0), write(1)]
        sequences = list(enumerate_legal_sequences(spec, universe, 3))
        assert max(len(s) for s in sequences) == 3
        # 1 + 2 + 4 + 8 sequences in the full binary tree.
        assert len(sequences) == 15

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_legal_sequences(FileSpec(), [], -1))


class TestEquivalence:
    def test_equivalent_sequences(self):
        spec = FileSpec()
        assert spec.equivalent((write(1), write(2)), (write(2),))

    def test_inequivalent_sequences(self):
        spec = FileSpec()
        assert not spec.equivalent((write(1),), (write(2),))

    def test_semiqueue_insert_order_irrelevant(self):
        spec = SemiQueueSpec()
        assert spec.equivalent((ins(1), ins(2)), (ins(2), ins(1)))
