"""Tests for Section 3: atomicity, hybrid atomicity, online hybrid atomicity."""

import pytest

from repro.adts import AccountSpec, FifoQueueSpec, FileSpec
from repro.core import (
    HistoryBuilder,
    Invocation,
    is_acceptable,
    is_atomic,
    is_hybrid_atomic,
    is_online_hybrid_atomic,
    is_online_hybrid_atomic_at,
    is_serializable,
    is_serializable_in_order,
    timestamps_respect_precedes,
)

QSPEC = FifoQueueSpec()
SPECS = {"X": QSPEC}


def paper_history():
    """The Section 3.2 queue history (committed: P ts2, Q ts1, R ts5)."""
    return (
        HistoryBuilder("X")
        .operation("P", Invocation("Enq", (1,)), "Ok")
        .operation("Q", Invocation("Enq", (2,)), "Ok")
        .operation("P", Invocation("Enq", (3,)), "Ok")
        .commit("P", 2)
        .commit("Q", 1)
        .operation("R", Invocation("Deq"), 2)
        .operation("R", Invocation("Deq"), 1)
        .commit("R", 5)
        .history()
    )


class TestAcceptability:
    def test_acceptable_serial_history(self):
        h = (
            HistoryBuilder("X")
            .operation("P", Invocation("Enq", (1,)), "Ok")
            .commit("P", 1)
            .operation("Q", Invocation("Deq"), 1)
            .commit("Q", 2)
            .history()
        )
        assert is_acceptable(h, SPECS)

    def test_unacceptable_serial_history(self):
        h = (
            HistoryBuilder("X")
            .operation("P", Invocation("Enq", (1,)), "Ok")
            .commit("P", 1)
            .operation("Q", Invocation("Deq"), 9)
            .commit("Q", 2)
            .history()
        )
        assert not is_acceptable(h, SPECS)

    def test_requires_serial(self):
        with pytest.raises(ValueError):
            is_acceptable(paper_history(), SPECS)

    def test_requires_spec(self):
        h = HistoryBuilder("Y").commit("P", 1).history()
        with pytest.raises(KeyError):
            is_acceptable(h, SPECS)


class TestSerializability:
    def test_paper_history_serializable_in_qpr(self):
        assert is_serializable_in_order(paper_history(), ["Q", "P", "R"], SPECS)

    def test_paper_history_not_serializable_in_pqr(self):
        assert not is_serializable_in_order(paper_history(), ["P", "Q", "R"], SPECS)

    def test_paper_history_serializable(self):
        assert is_serializable(paper_history(), SPECS)

    def test_unserializable_history(self):
        # P dequeues 1, but 2 entered first and was never dequeued.
        h = (
            HistoryBuilder("X")
            .operation("P", Invocation("Enq", (2,)), "Ok")
            .operation("P", Invocation("Enq", (1,)), "Ok")
            .operation("Q", Invocation("Deq"), 1)
            .commit("P", 1)
            .commit("Q", 2)
            .history()
        )
        assert not is_serializable(h, SPECS)


class TestAtomicity:
    def test_paper_history_atomic(self):
        assert is_atomic(paper_history(), SPECS)

    def test_active_transactions_ignored(self):
        h = (
            HistoryBuilder("X")
            .operation("P", Invocation("Enq", (1,)), "Ok")
            .operation("Z", Invocation("Deq"), 1)  # active, never commits
            .commit("P", 1)
            .history()
        )
        assert is_atomic(h, SPECS)

    def test_aborted_transactions_ignored(self):
        h = (
            HistoryBuilder("X")
            .operation("Z", Invocation("Enq", (9,)), "Ok")
            .abort("Z")
            .operation("P", Invocation("Enq", (1,)), "Ok")
            .commit("P", 1)
            .operation("Q", Invocation("Deq"), 1)
            .commit("Q", 2)
            .history()
        )
        assert is_atomic(h, SPECS)


class TestHybridAtomicity:
    def test_paper_history_hybrid_atomic(self):
        assert is_hybrid_atomic(paper_history(), SPECS)

    def test_wrong_timestamps_break_hybrid_atomicity(self):
        # Same events but P gets the smaller timestamp: serialization P-Q-R
        # would have to dequeue 1 first, yet R dequeued 2.
        h = (
            HistoryBuilder("X")
            .operation("P", Invocation("Enq", (1,)), "Ok")
            .operation("Q", Invocation("Enq", (2,)), "Ok")
            .operation("P", Invocation("Enq", (3,)), "Ok")
            .commit("P", 1)
            .commit("Q", 2)
            .operation("R", Invocation("Deq"), 2)
            .operation("R", Invocation("Deq"), 1)
            .commit("R", 5)
            .history()
        )
        assert not is_hybrid_atomic(h, SPECS)
        # But it is still atomic (some other order works).
        assert is_atomic(h, SPECS)


class TestOnlineHybridAtomicity:
    def test_every_prefix_of_paper_history(self):
        for prefix in paper_history().prefixes():
            assert is_online_hybrid_atomic(prefix, SPECS)

    def test_active_transactions_must_fit_any_order(self):
        # P and Q are active with non-commuting enqueues already executed —
        # fine online (either timestamp order can still be chosen).
        h = (
            HistoryBuilder("X")
            .operation("P", Invocation("Enq", (1,)), "Ok")
            .operation("Q", Invocation("Enq", (2,)), "Ok")
            .history()
        )
        assert is_online_hybrid_atomic_at(h, "X", QSPEC)

    def test_violation_detected(self):
        # R dequeues an item enqueued by a still-active transaction: if P
        # later aborts (commit set excluding P), R's dequeue is unfounded.
        h = (
            HistoryBuilder("X")
            .operation("P", Invocation("Enq", (1,)), "Ok")
            .operation("R", Invocation("Deq"), 1)
            .history()
        )
        assert not is_online_hybrid_atomic_at(h, "X", QSPEC)

    def test_file_online_violation_via_timestamps(self):
        # Q read the initial value while P concurrently wrote; if P commits
        # with a smaller timestamp than Q, serialization in TS order fails.
        spec = FileSpec(initial=0)
        h = (
            HistoryBuilder("F")
            .operation("P", Invocation("Write", (1,)), "Ok")
            .operation("Q", Invocation("Read"), 0)
            .history()
        )
        # Online hybrid atomicity quantifies over all orders of active
        # transactions, including P before Q, which is unserializable.
        assert not is_online_hybrid_atomic_at(h, "F", spec)


class TestTimestampConstraint:
    def test_paper_history_respects_precedes(self):
        assert timestamps_respect_precedes(paper_history())

    def test_violation(self):
        h = (
            HistoryBuilder("X")
            .operation("P", Invocation("Enq", (1,)), "Ok")
            .commit("P", 5)
            .operation("Q", Invocation("Enq", (2,)), "Ok")
            .commit("Q", 3)  # Q saw P committed but chose a smaller stamp
            .history()
        )
        assert not timestamps_respect_precedes(h)
