"""Unit tests for the relation algebra."""

from repro.adts import deq, enq, read, write
from repro.core import (
    EMPTY_RELATION,
    TOTAL_RELATION,
    EnumeratedRelation,
    PredicateRelation,
    difference,
    is_symmetric,
    restrict,
    symmetric_closure,
    union,
)


UNIVERSE = [enq(1), enq(2), deq(1), deq(2)]


class TestPredicateRelation:
    def test_membership(self):
        rel = PredicateRelation(lambda q, p: q.name == "Deq" and p.name == "Enq")
        assert rel.related(deq(1), enq(1))
        assert not rel.related(enq(1), deq(1))
        assert (deq(1), enq(2)) in rel

    def test_pairs_and_restrict(self):
        rel = PredicateRelation(lambda q, p: q.name == "Deq" and p.name == "Enq")
        enumerated = restrict(rel, UNIVERSE)
        assert len(enumerated) == 4
        assert enumerated.related(deq(2), enq(1))


class TestEnumeratedRelation:
    def test_set_semantics(self):
        rel = EnumeratedRelation({(deq(1), enq(1))})
        assert rel.related(deq(1), enq(1))
        assert not rel.related(deq(1), enq(2))
        assert len(rel) == 1

    def test_without(self):
        rel = EnumeratedRelation({(deq(1), enq(1)), (deq(2), enq(2))})
        smaller = rel.without((deq(1), enq(1)))
        assert len(smaller) == 1
        assert not smaller.related(deq(1), enq(1))

    def test_equality_and_hash(self):
        a = EnumeratedRelation({(deq(1), enq(1))})
        b = EnumeratedRelation({(deq(1), enq(1))})
        assert a == b
        assert hash(a) == hash(b)


class TestCombinators:
    def test_union_predicates(self):
        left = PredicateRelation(lambda q, p: q.name == "Deq" and p.name == "Deq")
        right = PredicateRelation(lambda q, p: q.name == "Enq" and p.name == "Enq")
        both = union(left, right)
        assert both.related(deq(1), deq(2))
        assert both.related(enq(1), enq(2))
        assert not both.related(deq(1), enq(1))

    def test_union_enumerated_stays_enumerated(self):
        a = EnumeratedRelation({(deq(1), enq(1))})
        b = EnumeratedRelation({(deq(2), enq(2))})
        merged = union(a, b)
        assert isinstance(merged, EnumeratedRelation)
        assert len(merged) == 2

    def test_difference(self):
        total = restrict(TOTAL_RELATION, UNIVERSE)
        empty = difference(total, total)
        assert len(restrict(empty, UNIVERSE)) == 0

    def test_operator_sugar(self):
        a = EnumeratedRelation({(deq(1), enq(1))})
        b = EnumeratedRelation({(deq(1), enq(1)), (deq(2), enq(2))})
        assert restrict(b - a, UNIVERSE).pair_set == {(deq(2), enq(2))}
        assert len(restrict(a | b, UNIVERSE)) == 2


class TestSymmetricClosure:
    def test_closure_is_symmetric(self):
        rel = PredicateRelation(lambda q, p: q.name == "Deq" and p.name == "Enq")
        assert not is_symmetric(rel, UNIVERSE)
        assert is_symmetric(symmetric_closure(rel), UNIVERSE)

    def test_closure_of_enumerated(self):
        rel = EnumeratedRelation({(deq(1), enq(1))})
        closed = symmetric_closure(rel)
        assert closed.related(enq(1), deq(1))
        assert closed.related(deq(1), enq(1))

    def test_closure_contains_original(self):
        rel = PredicateRelation(lambda q, p: q.name == "Deq" and p.name == "Enq")
        closed = symmetric_closure(rel)
        assert restrict(rel, UNIVERSE).pair_set <= restrict(closed, UNIVERSE).pair_set


class TestConstants:
    def test_empty(self):
        assert not EMPTY_RELATION.related(enq(1), enq(1))
        assert len(restrict(EMPTY_RELATION, UNIVERSE)) == 0

    def test_total(self):
        assert TOTAL_RELATION.related(enq(1), deq(2))
        assert len(restrict(TOTAL_RELATION, UNIVERSE)) == 16
