"""Conflict-graph serialization checks."""

from repro.adts import (
    QUEUE_COMMUTATIVITY_CONFLICT,
    QUEUE_CONFLICT_FIG42,
    FifoQueueSpec,
)
from repro.analysis import (
    conflict_graph,
    conflict_serialization_order,
    timestamp_order_consistent,
    topological_order,
)
from repro.core import (
    HistoryBuilder,
    Invocation,
    is_serializable_in_order,
)


SPEC = FifoQueueSpec()


def paper_history():
    return (
        HistoryBuilder("X")
        .operation("P", Invocation("Enq", (1,)), "Ok")
        .operation("Q", Invocation("Enq", (2,)), "Ok")
        .operation("P", Invocation("Enq", (3,)), "Ok")
        .commit("P", 2)
        .commit("Q", 1)
        .operation("R", Invocation("Deq"), 2)
        .operation("R", Invocation("Deq"), 1)
        .commit("R", 5)
        .history()
    )


class TestConflictGraph:
    def test_edges_under_fig42(self):
        edges = conflict_graph(paper_history(), QUEUE_CONFLICT_FIG42)
        # Enqueues don't conflict; both producers precede the consumer.
        assert edges["P"] == {"R"}
        assert edges["Q"] == {"R"}
        assert edges["R"] == set()

    def test_ignores_active_transactions(self):
        h = (
            HistoryBuilder("X")
            .operation("P", Invocation("Enq", (1,)), "Ok")
            .commit("P", 1)
            .operation("Z", Invocation("Enq", (9,)), "Ok")  # never commits
            .history()
        )
        edges = conflict_graph(h, QUEUE_CONFLICT_FIG42)
        assert set(edges) == {"P"}


class TestTopologicalOrder:
    def test_orders_dag(self):
        assert topological_order({"a": {"b"}, "b": {"c"}, "c": set()}) == [
            "a",
            "b",
            "c",
        ]

    def test_detects_cycle(self):
        assert topological_order({"a": {"b"}, "b": {"a"}}) is None

    def test_deterministic_tie_break(self):
        order = topological_order({"b": set(), "a": set(), "c": set()})
        assert order == ["a", "b", "c"]


class TestSerializationOrder:
    def test_timestamp_augmented_order_serializes(self):
        h = paper_history()
        order = conflict_serialization_order(h, QUEUE_CONFLICT_FIG42)
        assert order == ["Q", "P", "R"]
        assert is_serializable_in_order(h.permanent(), order, {"X": SPEC})

    def test_pure_conflict_order_unsound_for_dependency_relations(self):
        # The thesis of the paper, visible in the checker: the pure
        # conflict-graph order may NOT serialize when conflicts are
        # dependency-based (concurrent enqueues are ordered by timestamps,
        # not by the graph).
        h = paper_history()
        order = conflict_serialization_order(
            h, QUEUE_CONFLICT_FIG42, include_timestamp_order=False
        )
        assert order == ["P", "Q", "R"]
        assert not is_serializable_in_order(h.permanent(), order, {"X": SPEC})

    def test_pure_conflict_order_sound_for_commutativity(self):
        # Under the commutativity table, a history the baseline protocol
        # could produce serializes straight from its graph.
        h = (
            HistoryBuilder("X")
            .operation("P", Invocation("Enq", (1,)), "Ok")
            .commit("P", 1)
            .operation("Q", Invocation("Enq", (2,)), "Ok")
            .commit("Q", 2)
            .operation("R", Invocation("Deq"), 1)
            .commit("R", 3)
            .history()
        )
        order = conflict_serialization_order(
            h, QUEUE_COMMUTATIVITY_CONFLICT, include_timestamp_order=False
        )
        assert order is not None
        assert is_serializable_in_order(h.permanent(), order, {"X": SPEC})

    def test_cycle_returns_none(self):
        # Two transactions dequeue the same item in opposite object
        # orders: P before Q at X, Q before P at Y.
        h = (
            HistoryBuilder()
            .operation("I", Invocation("Enq", (1,)), "Ok", obj="X")
            .operation("I", Invocation("Enq", (1,)), "Ok", obj="Y")
            .commit("I", 1, obj="X")
            .commit("I", 1, obj="Y")
            .operation("P", Invocation("Deq"), 1, obj="X")
            .operation("Q", Invocation("Deq"), 1, obj="Y")
            .operation("Q", Invocation("Enq", (5,)), "Ok", obj="X")
            .operation("P", Invocation("Enq", (5,)), "Ok", obj="Y")
            .commit("P", 2, obj="X")
            .commit("P", 2, obj="Y")
            .commit("Q", 3, obj="X")
            .commit("Q", 3, obj="Y")
            .history()
        )
        order = conflict_serialization_order(
            h, QUEUE_CONFLICT_FIG42, include_timestamp_order=False
        )
        assert order is None


class TestTwoPhaseInvariant:
    def test_protocol_histories_consistent(self):
        from repro.core import LockMachine

        machine = LockMachine(SPEC, QUEUE_CONFLICT_FIG42)
        machine.execute("P", Invocation("Enq", (1,)))
        machine.commit("P", 1)
        machine.execute("R", Invocation("Deq"))
        machine.commit("R", 2)
        assert timestamp_order_consistent(machine.history(), QUEUE_CONFLICT_FIG42)

    def test_violation_detected(self):
        # Hand-built: R's conflicting dequeue got a SMALLER timestamp.
        h = (
            HistoryBuilder("X")
            .operation("P", Invocation("Enq", (1,)), "Ok")
            .operation("P", Invocation("Enq", (2,)), "Ok")
            .commit("P", 5)
            .operation("R", Invocation("Deq"), 1)
            .commit("R", 2)
            .history()
        )
        # Deq(1) conflicts with Enq(2) under Fig 4-2 (different items).
        assert not timestamp_order_consistent(h, QUEUE_CONFLICT_FIG42)
