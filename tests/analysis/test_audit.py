"""Audit machinery: every registered type passes; broken bundles fail."""

import pytest

from repro.adts import ADT, get_adt, registry
from repro.adts import deq, enq, make_queue_adt, queue_universe
from repro.analysis import audit_adt
from repro.core import EMPTY_RELATION, PredicateRelation

# Smaller derivation depths for the big-universe extension types.
DEPTHS = {
    "Counter": (2, 2, 2),
    "Set": (2, 2, 2),
    "Directory": (2, 2, 2),
}

DOMAINS = {
    "File": ((0, 1),),
    "BoundedQueue": ((1, 2),),
    "FIFOQueue": ((1, 2),),
    "Stack": ((1, 2),),
    "SemiQueue": ((1, 2),),
    "Account": ((2, 3), (50,)),
    "Counter": ((1, 2), (0, 1, 2)),
    "Set": ((1, 2),),
    "Directory": (("a",), (1, 2)),
}


@pytest.mark.parametrize("name", sorted(DOMAINS))
def test_every_registered_type_passes_audit(name):
    adt = get_adt(name)
    universe = adt.universe(*DOMAINS[name])
    max_h1, max_h2, mc_depth = DEPTHS.get(name, (3, 2, 3))
    report = audit_adt(
        adt, universe, max_h1=max_h1, max_h2=max_h2, mc_depth=mc_depth
    )
    assert report.passed, report.render()


def test_registry_covers_all_domains():
    assert set(registry()) == set(DOMAINS)


def test_minimality_check_for_paper_types():
    adt = get_adt("File")
    universe = adt.universe((0, 1))
    report = audit_adt(adt, universe, check_minimal=True)
    assert report.passed
    assert any("minimal" in f.check for f in report.findings)


class TestBrokenBundlesFail:
    def _broken(self, **overrides):
        base = make_queue_adt()
        fields = dict(
            name=base.name,
            spec=base.spec,
            dependency=base.dependency,
            conflict=base.conflict,
            commutativity_conflict=base.commutativity_conflict,
            is_read=base.is_read,
            universe=base.universe,
            alternative_dependencies={},
        )
        fields.update(overrides)
        return ADT(**fields)

    def test_asymmetric_conflict_caught(self):
        broken = self._broken(conflict=make_queue_adt().dependency)
        report = audit_adt(broken, queue_universe((1, 2)))
        assert not report.passed
        assert any(
            not f.passed and "symmetric" in f.check for f in report.findings
        )

    def test_wrong_dependency_caught(self):
        broken = self._broken(dependency=EMPTY_RELATION)
        report = audit_adt(broken, queue_universe((1, 2)))
        failing = [f for f in report.findings if not f.passed]
        assert any("matches derived" in f.check for f in failing)
        assert any("Definition 3" in f.check for f in failing)

    def test_wrong_commutativity_caught(self):
        too_small = PredicateRelation(
            lambda q, p: q.name == "Deq" and p.name == "Deq"
        )
        broken = self._broken(commutativity_conflict=too_small)
        report = audit_adt(broken, queue_universe((1, 2)))
        assert any(
            not f.passed and "failure-to-commute matches" in f.check
            for f in report.findings
        )

    def test_diff_detail_names_a_pair(self):
        broken = self._broken(dependency=EMPTY_RELATION)
        report = audit_adt(broken, queue_universe((1, 2)))
        finding = next(
            f for f in report.findings if "matches derived" in f.check
        )
        assert "derived has extra" in finding.detail

    def test_render_mentions_failures(self):
        broken = self._broken(dependency=EMPTY_RELATION)
        text = audit_adt(broken, queue_universe((1, 2))).render()
        assert "FAILURES PRESENT" in text
        assert "[FAIL]" in text
