"""Table rendering and relation comparison tests."""

from repro.adts import (
    ACCOUNT_CONFLICT,
    ACCOUNT_COMMUTATIVITY_CONFLICT,
    FILE_DEPENDENCY,
    credit,
    debit_ok,
    debit_overdraft,
    deq,
    enq,
    lookup_ok,
    member,
    post,
    read,
    write,
)
from repro.analysis import (
    Ordering,
    compare_relations,
    concurrency_score,
    render_grid,
    render_relation,
    render_schema_relation,
    schema_of,
)
from repro.core import EMPTY_RELATION, TOTAL_RELATION


FOPS = [read(0), read(1), write(0), write(1)]


class TestSchemaOf:
    def test_symbolic_results_kept(self):
        assert schema_of(debit_ok(2)) == "Debit,Ok"
        assert schema_of(debit_overdraft(2)) == "Debit,Overdraft"

    def test_value_results_collapse(self):
        assert schema_of(deq(1)) == "Deq,v"
        assert schema_of(read(7)) == "Read,v"

    def test_boolean_results(self):
        assert schema_of(member(1, True)) == "Member,True"

    def test_tagged_tuple_results(self):
        assert schema_of(lookup_ok("a", 1)) == "Lookup,Found"


class TestRendering:
    def test_grid_alignment(self):
        grid = render_grid(["col"], [["row", "x"]])
        lines = grid.splitlines()
        assert len(lines) == 3  # header, rule, one row
        assert "col" in lines[0]
        assert "row" in lines[2]

    def test_render_relation_marks_pairs(self):
        text = render_relation(FILE_DEPENDENCY.restrict(FOPS), FOPS)
        assert "X" in text
        assert "[Read(), 0]" in text

    def test_schema_table_conditions(self):
        ops = [credit(2), post(50), debit_ok(2), debit_overdraft(2), debit_ok(3), debit_overdraft(3), credit(3)]
        text = render_schema_relation(ACCOUNT_CONFLICT, ops)
        assert "Debit,Ok" in text
        assert "true" in text

    def test_empty_cells_for_empty_relation(self):
        text = render_relation(EMPTY_RELATION, FOPS)
        assert "X" not in text


class TestComparison:
    def test_equal(self):
        report = compare_relations(TOTAL_RELATION, TOTAL_RELATION, FOPS)
        assert report.ordering is Ordering.EQUAL

    def test_subset_and_superset(self):
        report = compare_relations(EMPTY_RELATION, TOTAL_RELATION, FOPS)
        assert report.ordering is Ordering.SUBSET
        report = compare_relations(TOTAL_RELATION, EMPTY_RELATION, FOPS)
        assert report.ordering is Ordering.SUPERSET
        assert len(report.only_left) == 16

    def test_account_gap_is_the_post_conflicts(self):
        ops = [credit(2), post(50), debit_ok(2), debit_overdraft(2)]
        report = compare_relations(
            ACCOUNT_CONFLICT, ACCOUNT_COMMUTATIVITY_CONFLICT, ops
        )
        assert report.ordering is Ordering.SUBSET
        assert all(
            "Post" in (q.name, p.name) for q, p in report.only_right
        )

    def test_str(self):
        report = compare_relations(EMPTY_RELATION, TOTAL_RELATION, FOPS)
        assert "less restrictive" in str(report)


class TestConcurrencyScore:
    def test_bounds(self):
        assert concurrency_score(EMPTY_RELATION, FOPS) == 1.0
        assert concurrency_score(TOTAL_RELATION, FOPS) == 0.0

    def test_empty_universe(self):
        assert concurrency_score(TOTAL_RELATION, []) == 1.0

    def test_intermediate(self):
        score = concurrency_score(FILE_DEPENDENCY, FOPS)
        assert 0.0 < score < 1.0
