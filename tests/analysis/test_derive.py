"""Figure derivation reports."""

from repro.adts import file_universe, make_file_adt, make_semiqueue_adt, semiqueue_universe
from repro.analysis import derive_commutativity_figure, derive_figure


class TestDeriveFigure:
    def test_file_report(self):
        adt = make_file_adt()
        ops = file_universe((0, 1))
        report = derive_figure(adt, ops, "Figure 4-1", check_minimal=True)
        assert report.matches_paper
        assert report.is_dependency
        assert report.is_minimal

    def test_render_includes_verdicts(self):
        adt = make_file_adt()
        ops = file_universe((0, 1))
        text = derive_figure(adt, ops, "Figure 4-1").render()
        assert "Figure 4-1" in text
        assert "matches paper table : True" in text
        assert "dependency relation : True" in text

    def test_minimality_omitted_by_default(self):
        adt = make_file_adt()
        ops = file_universe((0, 1))
        report = derive_figure(adt, ops, "Figure 4-1")
        assert report.is_minimal is None
        assert "minimal" not in report.render()


class TestDeriveCommutativityFigure:
    def test_semiqueue_mc(self):
        adt = make_semiqueue_adt()
        ops = semiqueue_universe((1, 2))
        report = derive_commutativity_figure(adt, ops, "SemiQueue MC")
        assert report.matches_paper
        assert report.is_dependency  # Theorem 28
