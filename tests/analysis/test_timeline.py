"""Timeline rendering tests."""

from repro.analysis import render_timeline
from repro.core import HistoryBuilder, Invocation


def sample_history():
    return (
        HistoryBuilder("X")
        .operation("P", Invocation("Enq", (1,)), "Ok")
        .operation("Q", Invocation("Enq", (2,)), "Ok")
        .commit("P", 2)
        .commit("Q", 1)
        .operation("R", Invocation("Deq"), 2)
        .abort("R")
        .history()
    )


class TestRenderTimeline:
    def test_columns_per_transaction(self):
        text = render_timeline(sample_history())
        header = text.splitlines()[0]
        for name in ("step", "obj", "P", "Q", "R"):
            assert name in header

    def test_event_cells(self):
        text = render_timeline(sample_history())
        assert "Enq(1)?" in text
        assert "-> 'Ok'" in text
        assert "commit @2" in text
        assert "abort" in text

    def test_one_row_per_event(self):
        h = sample_history()
        text = render_timeline(h)
        # header + rule + one line per event
        assert len(text.splitlines()) == len(h) + 2

    def test_custom_column_order_and_filter(self):
        text = render_timeline(sample_history(), transactions=["R", "Q"])
        header = text.splitlines()[0]
        assert "P" not in header
        assert header.index("R") < header.index("Q")
        assert "Enq(1)?" not in text  # P's events dropped

    def test_empty_history(self):
        from repro.core import History

        text = render_timeline(History([], validate=False))
        assert "step" in text
