"""CLI tests (invoking main() in-process)."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Account" in out
        assert "hybrid" in out
        assert "optimistic" in out
        assert "queue" in out


class TestDerive:
    def test_derive_file(self, capsys):
        assert main(["derive", "File"]) == 0
        out = capsys.readouterr().out
        assert "matches paper table : True" in out
        assert "failure to commute" in out
        assert "concurrency scores" in out

    def test_derive_with_custom_values(self, capsys):
        assert main(["derive", "Set", "--values", "7", "8", "--depth", "2"]) == 0
        out = capsys.readouterr().out
        assert "Member,True" in out

    def test_unknown_adt(self, capsys):
        assert main(["derive", "Blob"]) == 2
        assert "unknown ADT" in capsys.readouterr().err


class TestAudit:
    def test_audit_one_type(self, capsys):
        assert main(["audit", "File"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASS" in out
        assert "[FAIL]" not in out

    def test_audit_unknown_type(self, capsys):
        assert main(["audit", "Blob"]) == 2
        assert "unknown ADT" in capsys.readouterr().err

    def test_audit_with_minimality(self, capsys):
        assert main(["audit", "SemiQueue", "--minimal"]) == 0
        assert "minimal" in capsys.readouterr().out


class TestSimulate:
    def test_simulate_default_protocols(self, capsys):
        assert main(["simulate", "queue", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "hybrid" in out
        assert "serial" in out
        assert "throughput" in out

    def test_simulate_optimistic(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "account",
                    "--protocol",
                    "optimistic",
                    "--duration",
                    "60",
                ]
            )
            == 0
        )
        assert "optimistic" in capsys.readouterr().out

    def test_unknown_workload(self, capsys):
        assert main(["simulate", "blob"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_protocol(self, capsys):
        assert main(["simulate", "queue", "--protocol", "mvcc"]) == 2
        assert "unknown protocol" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_depth_default(self):
        args = build_parser().parse_args(["derive", "File"])
        assert args.depth == 3


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Audit matrix" in out
        assert "all audits pass" in out
        assert "Figure 4-5" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--output", str(target)]) == 0
        assert "Audit matrix" in target.read_text()

    def test_report_splices_artifacts(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "demo.txt").write_text("demo artifact body")
        assert main(["report", "--results", str(results)]) == 0
        out = capsys.readouterr().out
        assert "Benchmark artifacts" in out
        assert "demo artifact body" in out

class TestTrace:
    def test_jsonl_to_stdout_names_conflict_pairs(self, capsys):
        import json

        assert main(["trace", "account", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        records = [json.loads(line) for line in out.splitlines() if line]
        kinds = {record["kind"] for record in records}
        assert {"txn.begin", "txn.invoke", "txn.commit"} <= kinds
        conflicts = [r for r in records if r["kind"] == "lock.conflict"]
        assert conflicts, "seeded account run should conflict"
        for record in conflicts:
            assert record["operation"] and record["held"] and record["relation"]

    def test_jsonl_to_file(self, tmp_path, capsys):
        target = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "trace",
                    "queue",
                    "--duration",
                    "40",
                    "--output",
                    str(target),
                ]
            )
            == 0
        )
        assert "trace written to" in capsys.readouterr().out
        from repro.obs import read_jsonl

        events = read_jsonl(str(target))
        # The trace opens with the object registration the atomicity
        # checker reads the serial spec from, then the first begin.
        assert events and events[0].kind == "obj.create"
        assert any(event.kind == "txn.begin" for event in events)

    def test_spans_format(self, capsys):
        assert (
            main(["trace", "account", "--duration", "60", "--format", "spans"])
            == 0
        )
        out = capsys.readouterr().out
        assert "transaction" in out and "committed" in out

    def test_summary_format(self, capsys):
        assert (
            main(["trace", "account", "--duration", "60", "--format", "summary"])
            == 0
        )
        out = capsys.readouterr().out
        assert "txn.commit" in out and "span(s)" in out

    def test_rejects_optimistic(self, capsys):
        assert main(["trace", "account", "--protocol", "optimistic"]) == 2
        assert "locking" in capsys.readouterr().err


class TestStats:
    def test_human_output(self, capsys):
        assert main(["stats", "account", "--duration", "80"]) == 0
        out = capsys.readouterr().out
        assert "txn.latency" in out
        assert "conflicts by operation pair" in out
        assert "compaction.horizon" in out
        assert "lock tables at the duration cutoff" in out
        assert "waits-for graph" in out

    def test_block_policy_shows_waits(self, capsys):
        assert (
            main(
                [
                    "stats",
                    "account",
                    "--duration",
                    "80",
                    "--wait-policy",
                    "block",
                    "--spans",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "lock.waits" in out
        assert "transaction" in out  # the spans table

    def test_json_output(self, capsys):
        import json

        assert main(["stats", "queue", "--duration", "40", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["txn.committed"] > 0
        assert "txn.latency" in snapshot["histograms"]
        assert "lock_tables" in snapshot and "waits_for" in snapshot
        assert any(
            name.startswith("compaction.horizon[") for name in snapshot["gauges"]
        )


class TestSimulateObservability:
    def test_verbose_prints_breakdowns(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "account",
                    "--protocol",
                    "hybrid",
                    "--duration",
                    "60",
                    "--verbose",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[hybrid]" in out
        assert "conflicts by operation pair" in out
        assert "compaction.horizon" in out

    def test_trace_file_written(self, tmp_path, capsys):
        target = tmp_path / "sim.jsonl"
        assert (
            main(
                [
                    "simulate",
                    "queue",
                    "--protocol",
                    "hybrid",
                    "--duration",
                    "40",
                    "--trace-file",
                    str(target),
                ]
            )
            == 0
        )
        assert "trace written to" in capsys.readouterr().out
        assert target.exists() and target.read_text().strip()


class TestRecoverObservability:
    def seed_wal(self, tmp_path):
        wal_dir = tmp_path / "wals"
        assert (
            main(
                [
                    "simulate",
                    "account",
                    "--protocol",
                    "hybrid",
                    "--duration",
                    "40",
                    "--wal-dir",
                    str(wal_dir),
                ]
            )
            == 0
        )
        return wal_dir / "hybrid"

    def test_verbose_lists_replays(self, tmp_path, capsys):
        logdir = self.seed_wal(tmp_path)
        capsys.readouterr()
        assert main(["recover", str(logdir), "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "wal.replay" in out
        assert "site.recover" in out

    def test_trace_file_round_trips(self, tmp_path, capsys):
        logdir = self.seed_wal(tmp_path)
        target = tmp_path / "recovery.jsonl"
        assert (
            main(["recover", str(logdir), "--trace-file", str(target)]) == 0
        )
        from repro.obs import read_jsonl

        kinds = [event.kind for event in read_jsonl(str(target))]
        assert "wal.replay" in kinds
        assert kinds[-1] == "site.recover"


class TestCheck:
    def test_live_certification(self, capsys):
        assert main(["check", "account", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "certified hybrid atomic" in out
        assert "committed" in out

    def test_live_optimistic(self, capsys):
        assert (
            main(
                [
                    "check",
                    "account",
                    "--protocol",
                    "optimistic",
                    "--duration",
                    "40",
                ]
            )
            == 0
        )
        assert "certified hybrid atomic" in capsys.readouterr().out

    def test_offline_trace_file(self, tmp_path, capsys):
        target = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "simulate",
                    "queue",
                    "--protocol",
                    "hybrid",
                    "--duration",
                    "40",
                    "--trace-file",
                    str(target),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["check", "--trace-file", str(target)]) == 0
        assert "certified hybrid atomic" in capsys.readouterr().out

    def test_json_verdict(self, capsys):
        import json

        assert main(["check", "queue", "--duration", "40", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["verdict"] == "clean"
        assert report["transactions"]["committed"] > 0

    def test_refuted_trace_exits_one(self, tmp_path, capsys):
        from repro.obs import JSONLSink, TraceEvent

        target = tmp_path / "bad.jsonl"
        with JSONLSink(str(target)) as sink:
            sink(TraceEvent(0.0, "txn.begin", {"transaction": "T1"}))
            sink(TraceEvent(1.0, "txn.abort", {"transaction": "T1"}))
            sink(
                TraceEvent(
                    2.0,
                    "txn.commit",
                    {"transaction": "T1", "timestamp": 1, "objects": []},
                )
            )
        assert main(["check", "--trace-file", str(target)]) == 1
        out = capsys.readouterr().out
        assert "REFUTED" in out
        assert "committed after aborting" in out

    def test_usage_errors(self, tmp_path, capsys):
        assert main(["check"]) == 2
        assert "need a workload" in capsys.readouterr().err
        assert (
            main(["check", "queue", "--trace-file", "whatever.jsonl"]) == 2
        )
        assert "not both" in capsys.readouterr().err
        assert (
            main(["check", "--trace-file", str(tmp_path / "missing.jsonl")])
            == 2
        )
        assert "no such trace file" in capsys.readouterr().err
        assert main(["check", "blob"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_simulate_with_check_flag(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "account",
                    "--protocol",
                    "hybrid",
                    "--duration",
                    "40",
                    "--check",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[hybrid]" in out
        assert "certified hybrid atomic" in out


class TestStatsArgumentHandling:
    def test_needs_workload_or_connect(self, capsys):
        assert main(["stats"]) == 2
        assert "workload or --connect" in capsys.readouterr().err

    def test_rejects_both_workload_and_connect(self, capsys):
        assert main(["stats", "account", "--connect", "127.0.0.1:1"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_prometheus_requires_connect(self, capsys):
        assert main(["stats", "account", "--prometheus"]) == 2
        assert "--prometheus needs --connect" in capsys.readouterr().err

    def test_bad_connect_address(self, capsys):
        assert main(["stats", "--connect", "nonsense"]) == 2
        assert "bad --connect address" in capsys.readouterr().err

    def test_unreachable_server_exits_1(self, capsys):
        # Port 1 on localhost: connection refused, reported, not a crash.
        assert main(["stats", "--connect", "127.0.0.1:1"]) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestTopArgumentHandling:
    def test_bad_connect_address(self, capsys):
        assert main(["top", "--connect", "nonsense"]) == 2
        assert "bad --connect address" in capsys.readouterr().err

    def test_unreachable_server_exits_1(self, capsys):
        assert main(["top", "--connect", "127.0.0.1:1"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_nonpositive_iterations_rejected(self, capsys):
        assert (
            main(["top", "--connect", "127.0.0.1:1", "--iterations", "0"]) == 2
        )
        assert "must be positive" in capsys.readouterr().err


class TestAnalyze:
    def make_trace(self, tmp_path):
        from repro.obs import JSONLSink, TraceBus

        path = tmp_path / "trace.jsonl"
        clock = [0.0]
        bus = TraceBus(clock=lambda: clock[0])
        sink = bus.subscribe(JSONLSink(str(path)))
        bus.emit("txn.begin", transaction="t1")
        clock[0] += 2.0
        bus.emit("txn.invoke", transaction="t1", obj="A", operation="Enq")
        bus.emit("txn.respond", transaction="t1", obj="A", result="ok")
        bus.emit("txn.commit", transaction="t1", timestamp=1)
        sink.close()
        return bus, path

    def test_postmortem_output(self, tmp_path, capsys):
        _, path = self.make_trace(tmp_path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== postmortem ==" in out
        assert "1 committed" in out
        assert "no checker violations in trace" in out

    def test_json_output(self, tmp_path, capsys):
        import json

        _, path = self.make_trace(tmp_path)
        assert main(["analyze", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["transactions"]["committed"] == 1
        assert report["slowest"][0]["transaction"] == "t1"

    def test_violation_trace_exits_1(self, tmp_path, capsys):
        from repro.obs import JSONLSink, TraceBus

        path = tmp_path / "bad.jsonl"
        bus = TraceBus(clock=lambda: 0.0)
        sink = bus.subscribe(JSONLSink(str(path)))
        bus.emit("check.violation", rule="r", txn="t1", obj="A")
        sink.close()
        assert main(["analyze", str(path)]) == 1
        assert "VIOLATION" in capsys.readouterr().out

    def test_missing_file_exits_2(self, capsys):
        assert main(["analyze", "/no/such/trace.jsonl"]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_empty_trace_exits_1(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["analyze", str(path)]) == 1
        assert "holds no events" in capsys.readouterr().err


class TestProfile:
    def make_dump(self, tmp_path):
        from repro.obs import SamplingProfiler, write_profile

        profiler = SamplingProfiler(frames=lambda: {})

        class FakeCode:
            co_name = "work"

        class FakeFrame:
            f_code = FakeCode()
            f_globals = {"__name__": "app"}
            f_back = None

        profiler.sample_once(frames={9: FakeFrame()})
        write_profile(str(tmp_path), profiler=profiler)
        return tmp_path

    def test_renders_a_dump_directory(self, tmp_path, capsys):
        dump = self.make_dump(tmp_path)
        assert main(["profile", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "== profile ==" in out
        assert "app.work" in out

    def test_json_output(self, tmp_path, capsys):
        import json

        dump = self.make_dump(tmp_path)
        assert main(["profile", str(dump), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["sampler"]["samples"] == 1

    def test_missing_path_exits_2(self, capsys):
        assert main(["profile", "/no/such/profile"]) == 2
        assert "no such profile" in capsys.readouterr().err

    def test_nonpositive_top_exits_2(self, tmp_path, capsys):
        dump = self.make_dump(tmp_path)
        assert main(["profile", str(dump), "--top", "0"]) == 2
        assert "must be positive" in capsys.readouterr().err

    def test_profileless_directory_exits_2(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path)]) == 2
        assert "cannot load" in capsys.readouterr().err


class TestBenchCompare:
    def artifact(self, tmp_path, name, tps, p99):
        import json

        path = tmp_path / name
        path.write_text(
            json.dumps(
                {
                    "closed_loop": [
                        {
                            "clients": 64,
                            "committed": 100,
                            "stats": {
                                "txn_per_second": tps,
                                "p50_latency_ms": 1.0,
                                "p99_latency_ms": p99,
                            },
                        }
                    ],
                    "certification": {"verdict": "clean"},
                }
            )
        )
        return str(path)

    def test_within_budget_exits_0(self, tmp_path, capsys):
        old = self.artifact(tmp_path, "old.json", 1000.0, 10.0)
        new = self.artifact(tmp_path, "new.json", 950.0, 11.0)
        assert main(["bench", "compare", old, new]) == 0
        assert "within regression budgets" in capsys.readouterr().out

    def test_throughput_regression_exits_1(self, tmp_path, capsys):
        old = self.artifact(tmp_path, "old.json", 1000.0, 10.0)
        new = self.artifact(tmp_path, "new.json", 700.0, 10.0)
        assert main(["bench", "compare", old, new]) == 1
        assert "throughput fell" in capsys.readouterr().out

    def test_p99_regression_exits_1(self, tmp_path, capsys):
        old = self.artifact(tmp_path, "old.json", 1000.0, 10.0)
        new = self.artifact(tmp_path, "new.json", 1000.0, 16.0)
        assert main(["bench", "compare", old, new]) == 1
        assert "p99 inflated" in capsys.readouterr().out

    def test_wrong_arity_exits_2(self, tmp_path, capsys):
        old = self.artifact(tmp_path, "old.json", 1000.0, 10.0)
        assert main(["bench", "compare", old]) == 2
        assert "exactly two artifacts" in capsys.readouterr().err

    def test_missing_artifact_exits_2(self, tmp_path, capsys):
        old = self.artifact(tmp_path, "old.json", 1000.0, 10.0)
        assert main(["bench", "compare", old, "/no/such.json"]) == 2
        assert "no such artifact" in capsys.readouterr().err

    def test_serve_rejects_positional_artifacts(self, tmp_path, capsys):
        old = self.artifact(tmp_path, "old.json", 1000.0, 10.0)
        assert main(["bench", "serve", old]) == 2
        assert "no positional artifacts" in capsys.readouterr().err
