"""CLI tests (invoking main() in-process)."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Account" in out
        assert "hybrid" in out
        assert "optimistic" in out
        assert "queue" in out


class TestDerive:
    def test_derive_file(self, capsys):
        assert main(["derive", "File"]) == 0
        out = capsys.readouterr().out
        assert "matches paper table : True" in out
        assert "failure to commute" in out
        assert "concurrency scores" in out

    def test_derive_with_custom_values(self, capsys):
        assert main(["derive", "Set", "--values", "7", "8", "--depth", "2"]) == 0
        out = capsys.readouterr().out
        assert "Member,True" in out

    def test_unknown_adt(self, capsys):
        assert main(["derive", "Blob"]) == 2
        assert "unknown ADT" in capsys.readouterr().err


class TestAudit:
    def test_audit_one_type(self, capsys):
        assert main(["audit", "File"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASS" in out
        assert "[FAIL]" not in out

    def test_audit_unknown_type(self, capsys):
        assert main(["audit", "Blob"]) == 2
        assert "unknown ADT" in capsys.readouterr().err

    def test_audit_with_minimality(self, capsys):
        assert main(["audit", "SemiQueue", "--minimal"]) == 0
        assert "minimal" in capsys.readouterr().out


class TestSimulate:
    def test_simulate_default_protocols(self, capsys):
        assert main(["simulate", "queue", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "hybrid" in out
        assert "serial" in out
        assert "throughput" in out

    def test_simulate_optimistic(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "account",
                    "--protocol",
                    "optimistic",
                    "--duration",
                    "60",
                ]
            )
            == 0
        )
        assert "optimistic" in capsys.readouterr().out

    def test_unknown_workload(self, capsys):
        assert main(["simulate", "blob"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_protocol(self, capsys):
        assert main(["simulate", "queue", "--protocol", "mvcc"]) == 2
        assert "unknown protocol" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_depth_default(self):
        args = build_parser().parse_args(["derive", "File"])
        assert args.depth == 3


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Audit matrix" in out
        assert "all audits pass" in out
        assert "Figure 4-5" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--output", str(target)]) == 0
        assert "Audit matrix" in target.read_text()

    def test_report_splices_artifacts(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "demo.txt").write_text("demo artifact body")
        assert main(["report", "--results", str(results)]) == 0
        out = capsys.readouterr().out
        assert "Benchmark artifacts" in out
        assert "demo artifact body" in out
