"""Mutation smoke: seed one violation of every rule into a copy of the
real tree and require the analyzer to go red.

This is the CI gate's self-test: a linter that silently stopped firing
would still pass the clean-tree check, so each rule is proven live
against a mutated copy of the exact code it guards.
"""

import os
import shutil

import pytest

from repro.lint import Runner
from repro.lint.cli import main as lint_main

HERE = os.path.dirname(__file__)
SRC = os.path.abspath(os.path.join(HERE, os.pardir, os.pardir, "src", "repro"))

#: rule id -> (relative target file, seeded violation to append).
MUTATIONS = {
    "REP101": (
        os.path.join("obs", "bus.py"),
        "\n\ndef _mutant(tracer):\n"
        '    tracer.emit("not.a.kind")\n',
    ),
    "REP102": (
        os.path.join("adts", "counter.py"),
        "\n\n_MUTANT = EnumeratedRelation({('Inc', 'Dec')}, name='mutant')\n",
    ),
    "REP103": (
        os.path.join("obs", "snapshot.py"),
        "\n\ndef _mutant(machine):\n"
        "    return machine._intentions\n",
    ),
    "REP104": (
        os.path.join("core", "lock_machine.py"),
        "\n\ndef _mutant():\n"
        "    import random\n"
        "    return random.random()\n",
    ),
    "REP105": (
        os.path.join("core", "compaction.py"),
        "\n\ndef _mutant(run):\n"
        "    try:\n"
        "        run()\n"
        "    except Exception:\n"
        "        pass\n",
    ),
    "REP106": (
        os.path.join("distributed", "network.py"),
        "\n\ndef _mutant():\n"
        "    import time\n"
        "    time.sleep(1)\n",
    ),
    # Declare the hybrid conflict table as the commutativity table too:
    # sound for locking, but it disagrees with the derived
    # failure-to-commute relation (Set's Insert/Remove pairs), which the
    # semantic re-derivation must refute.
    "REP107": (
        os.path.join("adts", "set.py"),
        "\n\nCOMPILED_TABLES = {\n"
        '    "CONFLICT": SET_CONFLICT,\n'
        '    "COMMUTATIVITY_CONFLICT": SET_CONFLICT,\n'
        "}\n",
    ),
    # Hand-edit a generated bitset table: the content digest no longer
    # round-trips.
    "REP108": (
        os.path.join("adts", "_compiled", "account.py"),
        "\nCONFLICT_MASKS = CONFLICT_MASKS[:-1] + (0x7F,)\n",
    ),
}


@pytest.fixture()
def tree_copy(tmp_path):
    target = tmp_path / "repro"
    shutil.copytree(SRC, target, ignore=shutil.ignore_patterns("__pycache__"))
    return target


@pytest.mark.parametrize("rule_id", sorted(MUTATIONS))
def test_each_rule_fires_on_a_mutated_tree(tree_copy, rule_id):
    relpath, payload = MUTATIONS[rule_id]
    victim = tree_copy / relpath
    with open(victim, "a", encoding="utf-8") as handle:
        handle.write(payload)
    result = Runner(select=[rule_id]).run([str(tree_copy)])
    assert not result.ok, f"{rule_id} did not fire on its mutation"
    assert any(f.rule == rule_id for f in result.findings)
    assert any(relpath in f.path for f in result.findings)


def test_fully_mutated_tree_exits_nonzero(tree_copy, capsys):
    for relpath, payload in MUTATIONS.values():
        with open(tree_copy / relpath, "a", encoding="utf-8") as handle:
            handle.write(payload)
    assert lint_main([str(tree_copy)]) == 1
    out = capsys.readouterr().out
    for rule_id in MUTATIONS:
        assert rule_id in out
