"""The engine-level rule scoping: allowlist extent is pinned exactly.

REP104/REP106 are scoped via :data:`repro.lint.RULE_SCOPES` — engine
configuration, not per-line ``noqa``.  These tests pin both directions
of the boundary with fixtures: the sanctioned real-I/O modules of the
serving tier are exempt, while its pure modules (framing, sessions)
stay under the full discipline.  They also pin the *shape* of the
configuration so a blanket per-package disable cannot sneak in.
"""

import os

from repro.lint import RULE_SCOPES, Runner, allowlisted, in_scope

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def lint(relpath, select=None):
    return Runner(select=select).run([os.path.join(FIXTURES, relpath)])


def rule_ids(result):
    return sorted({finding.rule for finding in result.findings})


class TestServerAllowlist:
    def test_real_io_edge_is_exempt(self):
        # fixtures/server/server.py matches the /server/server.py
        # allowlist fragment: wall clocks and time.sleep are sanctioned.
        result = lint(
            os.path.join("server", "server.py"), select=["REP104", "REP106"]
        )
        assert result.ok
        assert result.findings == []

    def test_pure_wire_module_stays_checked(self):
        # fixtures/server/protocol.py is inside /server/ scope but NOT
        # allowlisted: both rules must still fire.
        result = lint(
            os.path.join("server", "protocol.py"), select=["REP104", "REP106"]
        )
        assert rule_ids(result) == ["REP104", "REP106"]
        messages = "\n".join(finding.message for finding in result.findings)
        assert "time.time" in messages
        assert "time.sleep" in messages

    def test_scope_predicates_agree_with_runner(self):
        edge = "src/repro/server/server.py"
        pure = "src/repro/server/protocol.py"
        outside = "src/repro/obs/codec.py"
        for rule in ("REP104", "REP106"):
            assert allowlisted(rule, edge)
            assert not in_scope(rule, edge)
            assert in_scope(rule, pure)
            assert not allowlisted(rule, pure)
            assert not in_scope(rule, outside)

    def test_unscoped_rules_see_everything(self):
        # Rules without a RuleScope entry are never path-filtered.
        assert in_scope("REP101", "src/repro/server/server.py")
        assert not allowlisted("REP101", "src/repro/server/server.py")


class TestAllowlistShape:
    def test_allowlist_names_modules_not_directories(self):
        # A directory fragment would exempt arbitrary future code; every
        # entry must name a single module file.
        for rule, scope in RULE_SCOPES.items():
            for fragment in scope.allowlist:
                assert fragment.endswith(".py"), (
                    f"{rule} allowlists {fragment!r}: allowlist entries "
                    "must name modules, not directories"
                )

    def test_session_and_protocol_are_not_exempt(self):
        # The pure serving-tier modules must never creep onto the
        # allowlist — this is the no-blanket-disabling guarantee.
        for rule in ("REP104", "REP106"):
            assert not allowlisted(rule, "src/repro/server/protocol.py")
            assert not allowlisted(rule, "src/repro/server/session.py")
            assert in_scope(rule, "src/repro/server/session.py")

    def test_scoped_rules_cover_the_simulated_layers(self):
        for rule in ("REP104", "REP106"):
            for path in (
                "src/repro/core/machine.py",
                "src/repro/sim/engine.py",
                "src/repro/distributed/site.py",
            ):
                assert in_scope(rule, path), f"{rule} must cover {path}"
