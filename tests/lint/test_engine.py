"""Engine-level behaviour: parsing, schema extraction, suppression scope."""

import os
import textwrap

import pytest

from repro.lint import Project, Runner, all_rules
from repro.obs.events import EVENT_KINDS, EVENT_PAYLOADS


class TestProjectExtraction:
    def test_event_kinds_match_runtime_registry(self):
        # The static extraction and the imported module must agree — the
        # linter reads the file without importing it.
        assert Project().event_kinds == EVENT_KINDS

    def test_event_payloads_match_runtime_schema(self):
        extracted = Project().event_payloads
        assert set(extracted) == set(EVENT_PAYLOADS)
        for kind, keys in EVENT_PAYLOADS.items():
            assert extracted[kind] == keys

    def test_checker_consumption_is_declared(self):
        # Statically, every payload key the oracle reads is in the schema:
        # the REP101 cross-reference the clean-tree run relies on.
        project = Project()
        payloads = project.event_payloads
        for kind, consumed in project.checker_consumes.items():
            assert consumed <= payloads[kind], kind


class TestRunner:
    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError):
            Runner(select=["REP999"])

    def test_all_rules_registered(self):
        assert [cls.id for cls in all_rules()] == [
            "REP101", "REP102", "REP103", "REP104",
            "REP105", "REP106", "REP107", "REP108",
        ]
        for cls in all_rules():
            assert cls.rationale  # every rule states its paper tie-in

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        result = Runner().run([str(bad)])
        assert not result.ok
        assert result.findings == []
        assert len(result.errors) == 1

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            Runner().run([os.path.join("no", "such", "path")])


class TestSuppressionScope:
    def test_noqa_on_first_line_covers_multiline_statement(self, tmp_path):
        source = textwrap.dedent(
            """
            def run(tracer):
                tracer.emit(  # repro: noqa[REP101]
                    "txn.begin",
                    mistyped_key=1,
                )
            """
        )
        path = tmp_path / "multiline.py"
        path.write_text(source)
        result = Runner(select=["REP101"]).run([str(path)])
        assert result.ok
        assert result.suppressed == 1

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        path = tmp_path / "wrong_rule.py"
        path.write_text(
            'def run(tracer):\n'
            '    tracer.emit("txn.bogus")  # repro: noqa[REP105]\n'
        )
        result = Runner(select=["REP101"]).run([str(path)])
        assert not result.ok
        assert result.suppressed == 0

    def test_blanket_noqa_suppresses_everything(self, tmp_path):
        path = tmp_path / "blanket.py"
        path.write_text(
            'def run(tracer):\n'
            '    tracer.emit("txn.bogus")  # repro: noqa\n'
        )
        result = Runner().run([str(path)])
        assert result.ok
        assert result.suppressed == 1
