"""CLI surface: exit codes, JSON output, the clean-tree gate."""

import json
import os

from repro.cli import main as repro_main
from repro.lint import Runner
from repro.lint.cli import main as lint_main

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "fixtures")
SRC = os.path.abspath(os.path.join(HERE, os.pardir, os.pardir, "src", "repro"))


class TestExitCodes:
    def test_clean_path_exits_zero(self, capsys):
        assert lint_main([os.path.join(FIXTURES, "clean.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert lint_main([os.path.join(FIXTURES, "bad_exceptions.py")]) == 1
        out = capsys.readouterr().out
        assert "REP105" in out

    def test_unknown_rule_exits_two(self, capsys):
        code = lint_main(
            ["--select", "REP999", os.path.join(FIXTURES, "clean.py")]
        )
        assert code == 2

    def test_missing_path_exits_two(self, capsys):
        assert lint_main([os.path.join(FIXTURES, "does_not_exist.py")]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "REP101", "REP102", "REP103", "REP104",
            "REP105", "REP106", "REP107", "REP108",
        ):
            assert rule_id in out


class TestRuleFilters:
    BAD = os.path.join(FIXTURES, "bad_exceptions.py")

    def test_select_narrows_to_one_rule(self, capsys):
        assert lint_main(["--select", "REP105", self.BAD]) == 1
        assert "REP105" in capsys.readouterr().out

    def test_select_other_rule_is_clean(self, capsys):
        assert lint_main(["--select", "REP101", self.BAD]) == 0
        assert "clean" in capsys.readouterr().out

    def test_ignore_suppresses_the_finding_rule(self, capsys):
        assert lint_main(["--ignore", "REP105", self.BAD]) == 0
        assert "clean" in capsys.readouterr().out

    def test_ignore_other_rule_keeps_findings(self, capsys):
        assert lint_main(["--ignore", "REP101", self.BAD]) == 1
        assert "REP105" in capsys.readouterr().out

    def test_select_then_ignore_composes(self, capsys):
        code = lint_main(
            ["--select", "REP105", "--ignore", "REP105", self.BAD]
        )
        assert code == 0

    def test_unknown_ignore_exits_two(self, capsys):
        code = lint_main(
            ["--ignore", "REP999", os.path.join(FIXTURES, "clean.py")]
        )
        assert code == 2
        assert "REP999" in capsys.readouterr().err

    def test_runner_rejects_unknown_ignore(self):
        import pytest

        with pytest.raises(ValueError):
            Runner(ignore=["REP000"])


class TestJsonFormat:
    def test_json_report_round_trips(self, capsys):
        code = lint_main(
            ["--format", "json", os.path.join(FIXTURES, "bad_trace_events.py")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["files"] == 1
        assert all(f["rule"] == "REP101" for f in payload["findings"])

    def test_statistics_flag(self, capsys):
        code = lint_main(
            ["--statistics", os.path.join(FIXTURES, "bad_trace_events.py")]
        )
        assert code == 1
        assert "REP101" in capsys.readouterr().out


class TestReproSubcommand:
    def test_repro_lint_subcommand(self, capsys):
        assert repro_main(["lint", os.path.join(FIXTURES, "clean.py")]) == 0
        assert repro_main(["lint", os.path.join(FIXTURES, "bad_exceptions.py")]) == 1


class TestCleanTree:
    def test_source_tree_is_clean(self):
        # The acceptance gate: the analyzer finds nothing left to fix in
        # the shipped package.
        result = Runner().run([SRC])
        assert result.findings == [], "\n".join(
            f.render() for f in result.findings
        )
        assert not result.errors
        assert result.files > 80

    def test_source_tree_via_cli(self, capsys):
        assert lint_main([SRC]) == 0
