"""Each lint rule catches its seeded fixture violation (and nothing else)."""

import os

from repro.lint import Runner

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def lint(relpath, select=None):
    return Runner(select=select).run([os.path.join(FIXTURES, relpath)])


def rule_ids(result):
    return sorted({finding.rule for finding in result.findings})


class TestSeededViolations:
    def test_rep101_trace_event_discipline(self):
        result = lint("bad_trace_events.py")
        assert rule_ids(result) == ["REP101"]
        messages = "\n".join(f.message for f in result.findings)
        assert "txn.bogus" in messages          # unregistered kind
        assert "nonsense_key" in messages       # undeclared payload key
        assert "string literal" in messages     # computed kind
        assert "**" in messages                 # splat hides keys
        assert len(result.findings) == 4

    def test_rep102_relation_symmetry(self):
        result = lint(os.path.join("adts", "bad_symmetry.py"))
        assert rule_ids(result) == ["REP102"]
        messages = "\n".join(f.message for f in result.findings)
        assert "Enq" in messages                # the unmirrored pair
        assert "FIXTURE_CONFLICT" in messages   # unproven conflict relation
        assert len(result.findings) == 2

    def test_rep103_state_encapsulation(self):
        result = lint("bad_encapsulation.py")
        assert rule_ids(result) == ["REP103"]
        messages = "\n".join(f.message for f in result.findings)
        assert "_machines" in messages          # aliasing return
        assert "_intentions" in messages        # foreign mutation
        assert "_committed" in messages         # foreign read
        assert len(result.findings) == 3

    def test_rep104_determinism(self):
        result = lint(os.path.join("core", "bad_determinism.py"))
        assert rule_ids(result) == ["REP104"]
        messages = "\n".join(f.message for f in result.findings)
        assert "random.random" in messages
        assert "time.time" in messages
        # random.Random() with no seed is flagged; the seeded call is not.
        assert len(result.findings) == 3

    def test_rep105_exception_safety(self):
        result = lint("bad_exceptions.py")
        assert rule_ids(result) == ["REP105"]
        messages = "\n".join(f.message for f in result.findings)
        assert "acquire" in messages
        assert "bare" in messages
        assert "open" in messages
        assert len(result.findings) == 4

    def test_rep106_blocking_calls(self):
        result = lint(os.path.join("core", "bad_blocking.py"))
        assert rule_ids(result) == ["REP106"]
        assert "time.sleep" in result.findings[0].message
        assert len(result.findings) == 1


class TestScopeAndSuppression:
    def test_clean_fixture_is_clean(self):
        result = lint("clean.py")
        assert result.ok
        assert result.findings == []

    def test_noqa_suppresses_and_is_counted(self):
        result = lint(os.path.join("core", "noqa_suppressed.py"))
        assert result.ok
        assert result.findings == []
        assert result.suppressed == 1

    def test_path_scoped_rules_ignore_unscoped_copies(self, tmp_path):
        # The same determinism sins outside core/distributed/recovery/sim
        # are not in REP104's scope (analysis and CLI code may read clocks).
        source = open(
            os.path.join(FIXTURES, "core", "bad_determinism.py"),
            encoding="utf-8",
        ).read()
        unscoped = tmp_path / "elsewhere" / "tooling.py"
        unscoped.parent.mkdir()
        unscoped.write_text(source)
        result = Runner(select=["REP104"]).run([str(unscoped)])
        assert result.ok

    def test_select_limits_rules(self):
        result = lint("bad_exceptions.py", select=["REP104"])
        assert result.ok  # REP105 findings exist but were not selected
