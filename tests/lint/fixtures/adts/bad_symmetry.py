"""REP102 fixture: relations that are not symmetric by construction.

Parsed by the lint tests, never imported or executed.
"""

from repro.core.conflict import EnumeratedRelation, PredicateRelation

# Missing the mirrored ("Deq", "Enq") pair.
ASYMMETRIC = EnumeratedRelation({("Enq", "Deq")}, name="asymmetric")


def _predicate(p, q):
    return p.name == "Enq"


# A conflict relation with no symmetry evidence: neither built with
# symmetric_closure(...) nor annotated ``# repro: symmetric``.
FIXTURE_CONFLICT = PredicateRelation(_predicate, name="fixture")
