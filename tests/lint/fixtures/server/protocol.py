"""Allowlist-boundary fixture: a *pure* serving-tier module.

``/server/protocol.py`` is inside the REP104/REP106 include scope but
deliberately NOT on the allowlist — framing is pure, so the wall-clock
read and the blocking call below must both be reported.  Parsed by the
lint tests, never imported or executed.
"""

import time


def timestamp_frame():
    return time.time()  # REP104: wall clock folded into protocol state


def backoff():
    time.sleep(0.1)  # REP106: blocking call in a pure module
