"""Allowlist fixture: the real-I/O edge of the serving tier.

The path fragment ``/server/server.py`` appears on the REP104/REP106
allowlist, so the wall-clock read and the blocking call below must NOT
be reported — this module's job is real sockets and real latency.
Parsed by the lint tests, never imported or executed.
"""

import time


def measure_real_latency():
    started = time.time()  # allowlisted: real wall-clock timing is the job
    time.sleep(0.01)       # allowlisted: real blocking I/O edge
    return time.time() - started
