"""REP103 fixture: aliasing returns and foreign state reaches.

Parsed by the lint tests, never imported or executed.
"""


class Registry:
    def __init__(self):
        self._machines = {}

    def machines(self):
        return self._machines  # aliases internal mutable state


def poke(machine):
    machine._intentions["T1"] = ()  # mutates machine-owned state


def peek(machine):
    return "T1" in machine._committed  # reaches into machine-owned state
