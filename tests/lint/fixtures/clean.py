"""A clean fixture: the analyzer must report nothing here."""


def emit_begin(tracer):
    tracer.emit("txn.begin", transaction="T1", read_only=False)


class Owner:
    def __init__(self):
        self._items = {}

    def items(self):
        return dict(self._items)  # copies before returning


def read_file(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()
