"""REP105 fixture: exception-safety sins.

Parsed by the lint tests, never imported or executed.
"""


def unpaired(lock):
    lock.acquire()  # no try/finally, no with
    lock.do_work()
    lock.release()


def swallow(run):
    try:
        run()
    except Exception:
        pass  # silently swallows the error


def naked(run):
    try:
        run()
    except:  # bare except
        raise


def leak(path):
    handle = open(path)  # not in a with, never closed in a finally
    return handle.read()
