"""REP101 fixture: every trace-event sin in one file.

Parsed by the lint tests, never imported or executed.
"""


def run(tracer, payload):
    tracer.emit("txn.bogus", transaction="T1")  # unregistered kind
    tracer.emit("txn.begin", transaction="T1", nonsense_key=1)  # bad key
    kind = "txn.begin"
    tracer.emit(kind, transaction="T1")  # non-literal kind
    tracer.emit("txn.begin", **payload)  # splat hides the keys
