"""REP104 fixture: naked entropy and wall clocks in a simulated path.

The ``core/`` directory name puts this file in the rule's scope.
Parsed by the lint tests, never imported or executed.
"""

import random
import time


def jitter():
    return random.random() + time.time()  # two violations


def unseeded():
    return random.Random()  # no seed: irreproducible


def seeded(seed):
    return random.Random(f"fixture-{seed}")  # fine: seeded
