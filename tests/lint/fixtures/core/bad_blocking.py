"""REP106 fixture: real blocking calls in a simulated hot path.

The ``core/`` directory name puts this file in the rule's scope.
Parsed by the lint tests, never imported or executed.
"""

import time


def wait_for_site():
    time.sleep(0.1)  # real time has no place in simulated waiting
