"""A seeded violation under an explicit suppression annotation."""

import random


def jitter():
    return random.random()  # repro: noqa[REP104]
