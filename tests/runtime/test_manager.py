"""Transaction manager: lifecycle, atomic commitment, verification hooks."""

import pytest

from repro.adts import make_account_adt, make_file_adt, make_queue_adt
from repro.core import (
    LockConflict,
    ProtocolError,
    SkewedTimestampGenerator,
    TransactionAborted,
    WouldBlock,
    is_hybrid_atomic,
    timestamps_respect_precedes,
)
from repro.protocols import COMMUTATIVITY, HYBRID
from repro.runtime import Status, TransactionManager


def bank(record=False, generator=None):
    manager = TransactionManager(record_history=record, generator=generator)
    manager.create_object("checking", make_account_adt())
    manager.create_object("savings", make_account_adt())
    return manager


class TestLifecycle:
    def test_begin_assigns_unique_names(self):
        manager = bank()
        assert manager.begin().name != manager.begin().name

    def test_duplicate_names_rejected(self):
        manager = bank()
        manager.begin("P")
        with pytest.raises(ValueError):
            manager.begin("P")

    def test_invoke_and_commit(self):
        manager = bank()
        t = manager.begin()
        assert manager.invoke(t, "checking", "Credit", 100) == "Ok"
        assert manager.invoke(t, "checking", "Debit", 40) == "Ok"
        ts = manager.commit(t)
        assert t.status is Status.COMMITTED
        assert t.timestamp == ts

    def test_operations_counted(self):
        manager = bank()
        t = manager.begin()
        manager.invoke(t, "checking", "Credit", 1)
        manager.invoke(t, "savings", "Credit", 2)
        assert t.operations == 2
        assert t.touched == {"checking", "savings"}

    def test_no_steps_after_commit(self):
        manager = bank()
        t = manager.begin()
        manager.invoke(t, "checking", "Credit", 1)
        manager.commit(t)
        with pytest.raises(TransactionAborted):
            manager.invoke(t, "checking", "Credit", 1)
        with pytest.raises(TransactionAborted):
            manager.commit(t)

    def test_abort_releases_locks(self):
        manager = bank()
        t = manager.begin()
        manager.invoke(t, "checking", "Debit", 1)  # Overdraft lock
        manager.abort(t)
        u = manager.begin()
        assert manager.invoke(u, "checking", "Credit", 5) == "Ok"

    def test_foreign_transaction_rejected(self):
        manager = bank()
        other = bank().begin()
        with pytest.raises(ProtocolError):
            manager.invoke(other, "checking", "Credit", 1)


class TestAtomicCommitment:
    def test_commit_reaches_every_touched_object(self):
        # Plain (non-compacting) machines retain committed timestamps, so
        # delivery can be observed directly.
        manager = TransactionManager(compacting=False)
        manager.create_object("checking", make_account_adt())
        manager.create_object("savings", make_account_adt())
        t = manager.begin()
        manager.invoke(t, "checking", "Credit", 10)
        manager.invoke(t, "savings", "Credit", 20)
        ts = manager.commit(t)
        for name in ("checking", "savings"):
            machine = manager.object(name).machine
            assert machine.commit_timestamp(t.name) == ts

    def test_same_timestamp_at_all_objects(self):
        manager = bank(record=True)
        t = manager.begin()
        manager.invoke(t, "checking", "Credit", 10)
        manager.invoke(t, "savings", "Credit", 20)
        manager.commit(t)
        stamps = {
            e.timestamp
            for e in manager.history()
            if type(e).__name__ == "CommitEvent"
        }
        assert len(stamps) == 1

    def test_snapshot_reflects_committed_state(self):
        manager = bank()
        t = manager.begin()
        manager.invoke(t, "checking", "Credit", 100)
        manager.commit(t)
        assert manager.object("checking").snapshot() == 100


class TestCreateObject:
    def test_duplicate_object_rejected(self):
        manager = bank()
        with pytest.raises(ValueError):
            manager.create_object("checking", make_account_adt())

    def test_protocol_selects_conflicts(self):
        manager = TransactionManager()
        manager.create_object("A", make_account_adt(), protocol=COMMUTATIVITY)
        t = manager.begin()
        manager.invoke(t, "A", "Credit", 1)
        u = manager.begin()
        with pytest.raises(LockConflict):
            manager.invoke(u, "A", "Post", 50)  # conflicts under commutativity

    def test_conflict_override(self):
        from repro.core import TOTAL_RELATION

        manager = TransactionManager()
        manager.create_object("A", make_account_adt(), conflict=TOTAL_RELATION)
        t = manager.begin()
        manager.invoke(t, "A", "Credit", 1)
        u = manager.begin()
        with pytest.raises(LockConflict):
            manager.invoke(u, "A", "Credit", 1)


class TestRunTransaction:
    def test_returns_body_value(self):
        manager = bank()
        balance = manager.run_transaction(
            lambda ctx: ctx.invoke("checking", "Credit", 10)
        )
        assert balance == "Ok"

    def test_retries_on_conflict(self):
        manager = bank()
        blocker = manager.begin()
        manager.invoke(blocker, "checking", "Debit", 1)  # holds Overdraft lock

        attempts = []

        def body(ctx):
            attempts.append(1)
            if len(attempts) == 2:
                manager.abort(blocker)  # blocker goes away mid-retry
            return ctx.invoke("checking", "Credit", 5)

        assert manager.run_transaction(body) == "Ok"
        assert len(attempts) >= 2

    def test_gives_up_after_max_attempts(self):
        manager = bank()
        blocker = manager.begin()
        manager.invoke(blocker, "checking", "Debit", 1)
        with pytest.raises(LockConflict):
            manager.run_transaction(
                lambda ctx: ctx.invoke("checking", "Credit", 5), max_attempts=3
            )

    def test_user_exception_aborts(self):
        manager = bank()
        with pytest.raises(RuntimeError):
            manager.run_transaction(lambda ctx: (_ for _ in ()).throw(RuntimeError))
        # Lock must have been released.
        t = manager.begin()
        assert manager.invoke(t, "checking", "Credit", 1) == "Ok"


class TestVerification:
    def test_recorded_history_is_hybrid_atomic(self):
        manager = bank(record=True)
        for i in range(5):
            manager.run_transaction(
                lambda ctx: (
                    ctx.invoke("checking", "Credit", 10),
                    ctx.invoke("savings", "Credit", 5),
                )
            )
        t = manager.begin()
        manager.invoke(t, "checking", "Debit", 25)
        manager.abort(t)
        h = manager.history()
        assert is_hybrid_atomic(h, manager.specs())
        assert timestamps_respect_precedes(h)

    def test_history_requires_recording(self):
        manager = bank(record=False)
        with pytest.raises(ProtocolError):
            manager.history()

    def test_skewed_generator_still_hybrid_atomic(self):
        manager = bank(record=True, generator=SkewedTimestampGenerator(seed=4))
        for i in range(8):
            manager.run_transaction(
                lambda ctx: ctx.invoke("checking", "Credit", 10)
            )
        h = manager.history()
        assert is_hybrid_atomic(h, manager.specs())
        assert timestamps_respect_precedes(h)


class TestWouldBlockPropagation:
    def test_deq_on_empty_queue(self):
        manager = TransactionManager()
        manager.create_object("Q", make_queue_adt())
        t = manager.begin()
        with pytest.raises(WouldBlock):
            manager.invoke(t, "Q", "Deq")
