"""Multiversion read-only transactions (the Section 7.1 generalisation)."""

import pytest

from repro.adts import make_account_adt, make_counter_adt, make_file_adt
from repro.core import (
    ProtocolError,
    SkewedTimestampGenerator,
    is_hybrid_atomic,
)
from repro.runtime import Status, TransactionManager


def counter_manager(record=False):
    manager = TransactionManager(record_history=record)
    manager.create_object("C", make_counter_adt())
    return manager


class TestBasics:
    def test_snapshot_semantics(self):
        manager = counter_manager()
        manager.run_transaction(lambda ctx: ctx.invoke("C", "Inc", 5))
        reader = manager.begin_readonly()
        # An updater commits *after* the reader started ...
        manager.run_transaction(lambda ctx: ctx.invoke("C", "Inc", 100))
        # ... and is invisible at the reader's start timestamp.
        assert manager.invoke(reader, "C", "Read") == 5
        manager.commit(reader)
        assert manager.object("C").snapshot() == 105

    def test_reader_does_not_block_writers(self):
        manager = counter_manager()
        manager.run_transaction(lambda ctx: ctx.invoke("C", "Inc", 1))
        reader = manager.begin_readonly()
        assert manager.invoke(reader, "C", "Read") == 1
        # Under locking, an active Read lock would conflict with Inc; the
        # multiversion reader does not.
        manager.run_transaction(lambda ctx: ctx.invoke("C", "Inc", 1))
        assert manager.invoke(reader, "C", "Read") == 1  # stable snapshot
        manager.commit(reader)

    def test_writers_do_not_block_reader(self):
        manager = counter_manager()
        manager.run_transaction(lambda ctx: ctx.invoke("C", "Inc", 3))
        writer = manager.begin()
        manager.invoke(writer, "C", "Inc", 10)  # active, holds Inc lock
        reader = manager.begin_readonly()
        assert manager.invoke(reader, "C", "Read") == 3  # no lock conflict
        manager.commit(reader)
        manager.commit(writer)

    def test_update_rejected(self):
        manager = counter_manager()
        reader = manager.begin_readonly()
        with pytest.raises(ProtocolError):
            manager.invoke(reader, "C", "Inc", 1)

    def test_requires_monotone_generator(self):
        manager = TransactionManager(generator=SkewedTimestampGenerator(seed=1))
        manager.create_object("C", make_counter_adt())
        with pytest.raises(ProtocolError):
            manager.begin_readonly()

    def test_requires_compacting_objects(self):
        manager = TransactionManager(compacting=False)
        manager.create_object("C", make_counter_adt())
        reader = manager.begin_readonly()
        with pytest.raises(ProtocolError):
            manager.invoke(reader, "C", "Read")

    def test_abort_releases_pins(self):
        manager = counter_manager()
        manager.run_transaction(lambda ctx: ctx.invoke("C", "Inc", 1))
        reader = manager.begin_readonly()
        manager.invoke(reader, "C", "Read")
        manager.abort(reader)
        assert reader.status is Status.ABORTED
        machine = manager.object("C").machine
        assert not machine._pins


class TestPinning:
    def test_pin_holds_horizon(self):
        manager = counter_manager()
        manager.run_transaction(lambda ctx: ctx.invoke("C", "Inc", 1))
        reader = manager.begin_readonly()
        manager.invoke(reader, "C", "Read")
        machine = manager.object("C").machine
        # Updaters committing above the reader's timestamp are retained,
        # not folded, while the pin lives.
        for _ in range(5):
            manager.run_transaction(lambda ctx: ctx.invoke("C", "Inc", 1))
        assert machine.retained_intentions() == 5
        assert manager.invoke(reader, "C", "Read") == 1
        manager.commit(reader)
        assert machine.retained_intentions() == 0  # horizon advanced

    def test_multiple_readers_different_snapshots(self):
        manager = counter_manager()
        manager.run_transaction(lambda ctx: ctx.invoke("C", "Inc", 1))
        early = manager.begin_readonly()
        manager.run_transaction(lambda ctx: ctx.invoke("C", "Inc", 10))
        late = manager.begin_readonly()
        manager.run_transaction(lambda ctx: ctx.invoke("C", "Inc", 100))
        assert manager.invoke(early, "C", "Read") == 1
        assert manager.invoke(late, "C", "Read") == 11
        manager.commit(early)
        manager.commit(late)


class TestVerification:
    def test_history_with_readers_is_hybrid_atomic(self):
        manager = TransactionManager(record_history=True)
        manager.create_object("A", make_account_adt())
        manager.create_object("F", make_file_adt(initial=0))
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 100))
        manager.run_transaction(lambda ctx: ctx.invoke("F", "Write", 3))
        reader = manager.begin_readonly()
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Debit", 40))
        manager.run_transaction(lambda ctx: ctx.invoke("F", "Write", 7))
        assert manager.invoke(reader, "F", "Read") == 3  # snapshot predates
        manager.commit(reader)
        h = manager.history()
        assert is_hybrid_atomic(h, manager.specs())

    def test_object_created_after_reader_rejected(self):
        manager = counter_manager()
        reader = manager.begin_readonly()
        manager.create_object("F", make_file_adt(initial=0))
        with pytest.raises(ProtocolError):
            manager.invoke(reader, "F", "Read")
        manager.commit(reader)
