"""Crash-recovery: committed effects survive, volatile intentions do not."""

import pytest

from repro.adts import make_account_adt, make_queue_adt
from repro.core import TransactionAborted, is_hybrid_atomic
from repro.runtime import Status, TransactionManager


def bank(record=False):
    manager = TransactionManager(record_history=record)
    manager.create_object("A", make_account_adt())
    manager.create_object("Q", make_queue_adt())
    return manager


class TestCrash:
    def test_committed_state_survives(self):
        manager = bank()
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 100))
        manager.crash()
        assert manager.object("A").snapshot() == 100

    def test_uncommitted_intentions_lost(self):
        manager = bank()
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 100))
        t = manager.begin()
        manager.invoke(t, "A", "Debit", 40)
        manager.invoke(t, "Q", "Enq", "receipt")
        victims = manager.crash()
        assert t.name in victims
        assert t.status is Status.ABORTED
        assert manager.object("A").snapshot() == 100  # debit rolled back

    def test_crashed_transaction_unusable(self):
        manager = bank()
        t = manager.begin()
        manager.invoke(t, "A", "Credit", 5)
        manager.crash()
        with pytest.raises(TransactionAborted):
            manager.invoke(t, "A", "Credit", 5)
        with pytest.raises(TransactionAborted):
            manager.commit(t)

    def test_locks_released_by_crash(self):
        manager = bank()
        t = manager.begin()
        manager.invoke(t, "A", "Debit", 1)  # Overdraft lock held
        manager.crash()
        # A new transaction is not blocked by the dead one's locks.
        assert manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 5)) == "Ok"

    def test_readonly_pins_released_by_crash(self):
        manager = bank()
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 1))
        reader = manager.begin_readonly()
        manager.invoke(reader, "A", "Debit", 0) if False else None
        manager.crash()
        assert reader.status is Status.ABORTED
        for managed in manager.objects.values():
            assert not managed.machine._pins

    def test_crash_is_idempotent(self):
        manager = bank()
        manager.crash()
        assert manager.crash() == []

    def test_work_after_crash_continues(self):
        manager = bank(record=True)
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 50))
        t = manager.begin()
        manager.invoke(t, "A", "Credit", 999)
        manager.crash()
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Debit", 20))
        assert manager.object("A").snapshot() == 30
        h = manager.history()
        assert is_hybrid_atomic(h, manager.specs())

    def test_repeated_crashes_random_workload(self):
        import random

        rng = random.Random(5)
        manager = bank(record=True)
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 1000))
        active = []
        for step in range(50):
            roll = rng.random()
            if roll < 0.08:
                manager.crash()
                active.clear()
            elif roll < 0.3 and active:
                manager.commit(active.pop(rng.randrange(len(active))))
            else:
                if len(active) < 3:
                    active.append(manager.begin())
                txn = active[rng.randrange(len(active))]
                from repro.core import LockConflict, WouldBlock

                try:
                    manager.invoke(txn, "A", "Debit", rng.randint(1, 5))
                except (LockConflict, WouldBlock):
                    pass
        manager.crash()
        h = manager.history()
        assert is_hybrid_atomic(h, manager.specs())
