"""Optimistic engine: execution, validation fast/slow paths, verification."""

import pytest

from repro.adts import make_account_adt, make_file_adt, make_queue_adt
from repro.core import (
    ProtocolError,
    TransactionAborted,
    WouldBlock,
    is_hybrid_atomic,
    timestamps_respect_precedes,
)
from repro.runtime import OptimisticTransactionManager, Status, ValidationFailed


def bank(record=False):
    manager = OptimisticTransactionManager(record_history=record)
    manager.create_object("A", make_account_adt())
    return manager


class TestExecution:
    def test_no_locking_between_writers(self):
        # Two transactions freely execute operations that would conflict
        # under any locking protocol.
        manager = bank()
        t = manager.begin()
        u = manager.begin()
        assert manager.invoke(t, "A", "Debit", 1) == "Overdraft"
        assert manager.invoke(u, "A", "Credit", 5) == "Ok"  # no lock refusal

    def test_view_is_snapshot_plus_own_ops(self):
        manager = bank()
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 10))
        t = manager.begin()
        assert manager.invoke(t, "A", "Debit", 10) == "Ok"
        assert manager.invoke(t, "A", "Debit", 1) == "Overdraft"

    def test_would_block_propagates(self):
        manager = OptimisticTransactionManager()
        manager.create_object("Q", make_queue_adt())
        t = manager.begin()
        with pytest.raises(WouldBlock):
            manager.invoke(t, "Q", "Deq")

    def test_lifecycle_guards(self):
        manager = bank()
        t = manager.begin()
        manager.commit(t)
        with pytest.raises(TransactionAborted):
            manager.invoke(t, "A", "Credit", 1)
        with pytest.raises(ProtocolError):
            manager.history()


class TestValidation:
    def test_fast_path_when_independent(self):
        manager = bank()
        t = manager.begin()
        manager.invoke(t, "A", "Credit", 5)
        # A concurrent credit commits first; credits depend on nothing.
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 7))
        manager.commit(t)
        obj = manager.object("A")
        assert obj.failed_validations == 0
        assert obj.snapshot() == 12

    def test_slow_path_replay_succeeds(self):
        manager = bank()
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 100))
        t = manager.begin()
        assert manager.invoke(t, "A", "Debit", 10) == "Ok"
        # Another debit commits first: Debit,Ok depends on Debit,Ok, so the
        # fast path fails — but replay shows 100-20-10 is still fine.
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Debit", 20))
        manager.commit(t)
        obj = manager.object("A")
        assert obj.replay_validations >= 1
        assert obj.failed_validations == 0
        assert obj.snapshot() == 70

    def test_validation_failure_aborts(self):
        manager = bank()
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 10))
        t = manager.begin()
        assert manager.invoke(t, "A", "Debit", 10) == "Ok"
        # A concurrent debit drains the balance and commits first; t's
        # successful debit is no longer legal.
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Debit", 10))
        with pytest.raises(ValidationFailed) as info:
            manager.commit(t)
        assert info.value.obj == "A"
        assert t.status is Status.ABORTED
        assert manager.object("A").snapshot() == 0

    def test_queue_competing_consumers(self):
        manager = OptimisticTransactionManager()
        manager.create_object("Q", make_queue_adt())
        manager.run_transaction(lambda ctx: ctx.invoke("Q", "Enq", 1))
        t = manager.begin()
        u = manager.begin()
        assert manager.invoke(t, "Q", "Deq") == 1
        assert manager.invoke(u, "Q", "Deq") == 1  # same item, no locks
        manager.commit(t)
        with pytest.raises(ValidationFailed):
            manager.commit(u)

    def test_run_transaction_retries_after_validation_failure(self):
        manager = bank()
        manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 10))
        t = manager.begin()
        manager.invoke(t, "A", "Debit", 10)

        def body(ctx):
            return ctx.invoke("A", "Debit", 10)

        # Start a doomed racer inline: commit t in the middle by abusing
        # the retry loop — first attempt of `body` sees balance 10, then t
        # commits, invalidating it; the retry sees balance 0 -> Overdraft.
        results = []

        def racing_body(ctx):
            value = ctx.invoke("A", "Debit", 10)
            results.append(value)
            if len(results) == 1 and t.is_active:
                manager.commit(t)
            return value

        assert manager.run_transaction(racing_body) == "Overdraft"
        assert results == ["Ok", "Overdraft"]


class TestVerification:
    def test_histories_hybrid_atomic(self):
        manager = OptimisticTransactionManager(record_history=True)
        manager.create_object("A", make_account_adt())
        manager.create_object("F", make_file_adt())
        import random

        rng = random.Random(3)
        active = []
        for step in range(60):
            if len(active) >= 3 or (active and rng.random() < 0.4):
                txn = active.pop(rng.randrange(len(active)))
                try:
                    manager.commit(txn)
                except ValidationFailed:
                    pass
            else:
                txn = manager.begin()
                active.append(txn)
                try:
                    if rng.random() < 0.5:
                        manager.invoke(txn, "A", "Debit", rng.randint(1, 3))
                    else:
                        manager.invoke(txn, "F", "Write", rng.randint(0, 2))
                except WouldBlock:
                    pass
        for txn in active:
            try:
                manager.commit(txn)
            except ValidationFailed:
                pass
        h = manager.history()
        assert timestamps_respect_precedes(h)
        assert is_hybrid_atomic(h, manager.specs())
