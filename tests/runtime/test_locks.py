"""Mode-based lock tables (the appendix's lock_tab)."""

import pytest

from repro.adts import (
    ACCOUNT_CONFLICT,
    account_universe,
    credit,
    debit_ok,
    debit_overdraft,
    post,
    queue_universe,
    QUEUE_CONFLICT_FIG42,
)
from repro.runtime.locks import (
    ACCOUNT_LOCK_MODES,
    LockTable,
    ModeClassificationError,
    account_lock_mode,
    mode_table_from_relation,
)


def appendix_table():
    table = LockTable()
    table.define("CREDIT_LOCK", "OVERDRAFT_LOCK")
    table.define("POST_LOCK", "OVERDRAFT_LOCK")
    table.define("DEBIT_LOCK", "DEBIT_LOCK")
    return table


class TestLockTable:
    def test_define_is_symmetric(self):
        table = appendix_table()
        assert table.modes_conflict("CREDIT_LOCK", "OVERDRAFT_LOCK")
        assert table.modes_conflict("OVERDRAFT_LOCK", "CREDIT_LOCK")
        assert not table.modes_conflict("CREDIT_LOCK", "POST_LOCK")

    def test_conflict_checks_other_holders_only(self):
        table = appendix_table()
        table.grant("OVERDRAFT_LOCK", "P")
        assert table.conflict("CREDIT_LOCK", "Q")
        assert not table.conflict("CREDIT_LOCK", "P")  # own lock

    def test_self_conflicting_mode(self):
        table = appendix_table()
        table.grant("DEBIT_LOCK", "P")
        assert table.conflict("DEBIT_LOCK", "Q")
        assert not table.conflict("DEBIT_LOCK", "P")

    def test_release_drops_all(self):
        table = appendix_table()
        table.grant("DEBIT_LOCK", "P")
        table.grant("OVERDRAFT_LOCK", "P")
        table.release("P")
        assert not table.conflict("DEBIT_LOCK", "Q")
        assert not table.conflict("CREDIT_LOCK", "Q")

    def test_counted_grants(self):
        table = appendix_table()
        table.grant("DEBIT_LOCK", "P")
        table.grant("DEBIT_LOCK", "P")
        assert table.holders("DEBIT_LOCK") == ["P"]

    def test_compatible_modes_coexist(self):
        table = appendix_table()
        table.grant("CREDIT_LOCK", "P")
        assert not table.conflict("POST_LOCK", "Q")
        assert not table.conflict("CREDIT_LOCK", "Q")


class TestCompilation:
    def test_account_compiles_to_appendix_table(self):
        universe = account_universe((2, 3), (50,))
        compiled = mode_table_from_relation(
            ACCOUNT_CONFLICT, universe, account_lock_mode
        )
        reference = appendix_table()
        for mode_a in ACCOUNT_LOCK_MODES:
            for mode_b in ACCOUNT_LOCK_MODES:
                assert compiled.modes_conflict(mode_a, mode_b) == (
                    reference.modes_conflict(mode_a, mode_b)
                ), (mode_a, mode_b)

    def test_mode_checks_agree_with_predicate_checks(self):
        universe = account_universe((2, 3), (50,))
        table = mode_table_from_relation(
            ACCOUNT_CONFLICT, universe, account_lock_mode
        )
        # Simulate: P holds a successful debit; mode table and predicate
        # agree on every follow-up request.
        table.grant(account_lock_mode(debit_ok(2)), "P")
        for operation in universe:
            mode_says = table.conflict(account_lock_mode(operation), "Q")
            predicate_says = ACCOUNT_CONFLICT.related(
                operation, debit_ok(2)
            ) or ACCOUNT_CONFLICT.related(debit_ok(2), operation)
            assert mode_says == predicate_says, operation

    def test_lossy_classification_rejected(self):
        # Collapsing Deq's value-sensitive conflicts into one mode mixes
        # conflicting and non-conflicting pairs: strict mode refuses.
        universe = queue_universe((1, 2))
        with pytest.raises(ModeClassificationError):
            mode_table_from_relation(
                QUEUE_CONFLICT_FIG42, universe, lambda op: op.name
            )

    def test_conservative_classification_allowed(self):
        universe = queue_universe((1, 2))
        table = mode_table_from_relation(
            QUEUE_CONFLICT_FIG42, universe, lambda op: op.name, strict=False
        )
        # Conservative: Deq conflicts with Enq at mode level.
        assert table.modes_conflict("Deq", "Enq")
        assert not table.modes_conflict("Enq", "Enq")

    def test_classifier_errors_surface(self):
        with pytest.raises(ValueError):
            account_lock_mode(queue_universe((1,))[0])
