"""Observability overhead guard — "no tracer, no cost".

Every instrumentation site in the LOCK machine, manager and simulator is
guarded by a ``tracer is None`` check, so the disabled path should cost
one attribute load per site.  This script keeps that contract honest
without needing the pre-instrumentation binary:

* **relative guard** — the commit-churn microbenchmark (the same 150
  one-credit transactions as ``bench_machine_micro.py``) must not run
  measurably slower with observability disabled than fully traced.  If
  the disabled path ever approaches traced cost, a guard was dropped.
* **absolute floor** — disabled throughput must clear a floor far below
  any machine we run CI on, catching pathological regressions (an
  accidental per-event allocation on the hot path) outright.
* **idle-bus guard** — a bus with *no* subscribers must also stay within
  the relative tolerance of disabled: ``TraceBus.emit`` returns before
  building an event when nobody listens.
* **checker budget** — the streaming atomicity checker riding a manager
  commit-churn loop must keep throughput above an absolute floor and
  within a (deliberately loose) multiple of the unobserved manager.  The
  oracle re-sorts and re-verifies committed prefixes, so it is allowed to
  be much slower — this bound only catches accidental quadratic blowups.
* **sampler budget** — commit churn with a :class:`SamplingProfiler`
  running must stay within ``SAMPLER_TOLERANCE`` of the unprofiled run.
  The sampler only holds the GIL for the ``sys._current_frames()``
  snapshot ~87 times a second, so the profiled path should be nearly
  free; this guard is what makes "low-overhead" a tested claim instead
  of a docstring adjective.  Plain and profiled repeats interleave so
  machine drift (thermal, noisy neighbours) hits both variants equally.
* **compiled-relation budget** — the compiled bitset conflict table must
  not cost anything over the hand-written predicate it replaced: commit
  churn against a pack of live lock-holders (so every operation pays
  real ``related()`` calls) with the compiled table must stay within
  ``COMPILED_TOLERANCE`` of the same loop on the reference relation.
  The expected direction is compiled *faster*; the guard only catches a
  compiled path that somehow regresses below predicate dispatch.
* **view-cache budget** — the incremental view cache must keep paying:
  commit churn on the plain machine at least ``CACHE_CHURN_FLOOR``×
  faster cached than naive replay, a 200-op single transaction at least
  ``CACHE_SWEEP_FLOOR``× faster, and caching must not slow the
  compacting machine's churn beyond ``CACHE_COMPACTING_TOLERANCE``
  (there the committed prefix is already folded, so the cache only has
  to be ~free, not faster).  Floors are far below the measured margins
  (see ``BENCH_hot_path.json``) to stay robust on loaded CI runners.

Run directly (``PYTHONPATH=src python benchmarks/check_overhead.py``) or
via pytest.  Exits non-zero on violation.
"""

import sys
import time

from repro.adts import make_account_adt
from repro.core import CompactingLockMachine, Invocation, LockMachine
from repro.core.compile import reference_relation
from repro.obs import (
    AtomicityChecker,
    MetricsRegistry,
    RegistrySink,
    SamplingProfiler,
    TraceBus,
)
from repro.runtime import TransactionManager

TRANSACTIONS = 150
REPEATS = 7
# Generous: the seed machine does ~45k txn/s on a laptop-class core; CI
# runners under load still manage several thousand.
FLOOR_TXN_PER_SECOND = 1_000.0
# Disabled must be no slower than traced, with headroom for timer noise.
RELATIVE_TOLERANCE = 1.10
# The checker replays the serial order per commit; keep it merely
# "not pathological": within 15x of the bare manager and above 100 txn/s.
CHECKER_TOLERANCE = 15.0
CHECKER_FLOOR_TXN_PER_SECOND = 100.0
# The view cache's measured margins are ~10x (plain churn) and ~35x
# (200-op sweep); guard at a small fraction of that.
CACHE_CHURN_FLOOR = 2.0
CACHE_SWEEP_FLOOR = 3.0
CACHE_SWEEP_LENGTH = 200
CACHE_COMPACTING_TOLERANCE = 1.5
# ISSUE 8's acceptance bound: the sampling profiler may cost at most 5%.
# Longer churn than the tracer guards so a few samples actually land at
# the default 87Hz and the ratio is measured, not vacuous.
SAMPLER_TOLERANCE = 1.05
SAMPLER_TRANSACTIONS = 600
SAMPLER_REPEATS = 7
# The compiled bitset table's measured margin over the predicate under
# holder-heavy churn is ~1.3-2x; the guard only requires "not slower",
# with headroom for timer noise.
COMPILED_TOLERANCE = 1.10
COMPILED_HOLDERS = 24


def churn(machine, transactions=TRANSACTIONS):
    for index in range(transactions):
        name = f"T{index}"
        machine.execute(name, Invocation("Credit", (1,)))
        machine.commit(name, index + 1)


def best_of(build, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        machine = build()
        started = time.perf_counter()
        churn(machine)
        best = min(best, time.perf_counter() - started)
    return best


def manager_churn(manager, transactions=TRANSACTIONS):
    for _ in range(transactions):
        txn = manager.begin()
        manager.invoke(txn, "A", "Credit", 1)
        manager.commit(txn)


def long_transaction(machine, length=CACHE_SWEEP_LENGTH):
    for _ in range(length):
        machine.execute("T", Invocation("Credit", (1,)))


def best_of_long(build, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        machine = build()
        started = time.perf_counter()
        long_transaction(machine)
        best = min(best, time.perf_counter() - started)
    return best


def churn_with_holders(machine, holders=COMPILED_HOLDERS):
    """Commit churn against live lock-holders: every executed operation
    checks conflicts with each held operation, so the conflict relation's
    lookup cost dominates.  Credits commute, so nothing blocks."""
    held = Invocation("Credit", (2,))
    for index in range(holders):
        machine.execute(f"H{index}", held)
    for index in range(TRANSACTIONS):
        name = f"T{index}"
        machine.execute(name, held)
        machine.commit(name, index + 1)


def best_of_holders(build, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        machine = build()
        started = time.perf_counter()
        churn_with_holders(machine)
        best = min(best, time.perf_counter() - started)
    return best


def sampler_budget(build, repeats=SAMPLER_REPEATS):
    """Best plain vs best profiled churn time, interleaved repeats."""
    plain_best = float("inf")
    profiled_best = float("inf")
    profiler = SamplingProfiler()
    for _ in range(repeats):
        machine = build()
        started = time.perf_counter()
        churn(machine, SAMPLER_TRANSACTIONS)
        plain_best = min(plain_best, time.perf_counter() - started)
        machine = build()
        with profiler:
            started = time.perf_counter()
            churn(machine, SAMPLER_TRANSACTIONS)
            profiled_best = min(profiled_best, time.perf_counter() - started)
    return plain_best, profiled_best


def best_of_manager(build, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        manager = build()
        started = time.perf_counter()
        manager_churn(manager)
        best = min(best, time.perf_counter() - started)
    return best


def main():
    adt = make_account_adt()

    def disabled():
        return CompactingLockMachine(adt.spec, adt.conflict)

    def traced():
        machine = CompactingLockMachine(adt.spec, adt.conflict)
        bus = TraceBus()
        bus.subscribe(RegistrySink(MetricsRegistry()))
        machine.tracer = bus
        return machine

    def idle_bus():
        # Attached bus, zero subscribers: emit() must bail immediately.
        machine = CompactingLockMachine(adt.spec, adt.conflict)
        machine.tracer = TraceBus()
        return machine

    def bare_manager():
        manager = TransactionManager()
        manager.create_object("A", adt)
        return manager

    def checked_manager():
        bus = TraceBus()
        bus.subscribe(AtomicityChecker())
        manager = TransactionManager(tracer=bus)
        manager.create_object("A", adt)
        return manager

    # Warm up bytecode caches before timing either variant.
    churn(disabled())
    manager_churn(bare_manager())

    def plain_cached():
        return LockMachine(adt.spec, adt.conflict)

    def plain_naive():
        return LockMachine(adt.spec, adt.conflict, view_caching=False)

    def compacting_naive():
        return CompactingLockMachine(adt.spec, adt.conflict, view_caching=False)

    def compiled_relation_machine():
        return LockMachine(adt.spec, adt.conflict)

    def predicate_relation_machine():
        return LockMachine(adt.spec, reference_relation(adt.conflict))

    disabled_best = best_of(disabled)
    traced_best = best_of(traced)
    idle_best = best_of(idle_bus)
    manager_best = best_of_manager(bare_manager)
    checked_best = best_of_manager(checked_manager)
    plain_cached_best = best_of(plain_cached)
    plain_naive_best = best_of(plain_naive)
    compacting_naive_best = best_of(compacting_naive)
    sweep_cached_best = best_of_long(plain_cached)
    sweep_naive_best = best_of_long(plain_naive)
    compiled_best = best_of_holders(compiled_relation_machine)
    predicate_best = best_of_holders(predicate_relation_machine)
    unprofiled_best, profiled_best = sampler_budget(disabled)
    disabled_tps = TRANSACTIONS / disabled_best
    traced_tps = TRANSACTIONS / traced_best
    idle_tps = TRANSACTIONS / idle_best
    manager_tps = TRANSACTIONS / manager_best
    checked_tps = TRANSACTIONS / checked_best

    print(f"disabled: {disabled_best:.6f}s best  ({disabled_tps:,.0f} txn/s)")
    print(f"traced:   {traced_best:.6f}s best  ({traced_tps:,.0f} txn/s)")
    print(f"idle bus: {idle_best:.6f}s best  ({idle_tps:,.0f} txn/s)")
    print(f"manager:  {manager_best:.6f}s best  ({manager_tps:,.0f} txn/s)")
    print(f"checked:  {checked_best:.6f}s best  ({checked_tps:,.0f} txn/s)")
    print(
        f"plain churn: cached {plain_cached_best:.6f}s vs naive "
        f"{plain_naive_best:.6f}s ({plain_naive_best / plain_cached_best:.1f}x)"
    )
    print(
        f"compacting churn: cached {disabled_best:.6f}s vs naive "
        f"{compacting_naive_best:.6f}s"
    )
    print(
        f"{CACHE_SWEEP_LENGTH}-op sweep: cached {sweep_cached_best:.6f}s vs "
        f"naive {sweep_naive_best:.6f}s "
        f"({sweep_naive_best / sweep_cached_best:.1f}x)"
    )
    print(
        f"{COMPILED_HOLDERS}-holder churn: compiled {compiled_best:.6f}s vs "
        f"predicate {predicate_best:.6f}s "
        f"({predicate_best / compiled_best:.2f}x)"
    )
    print(
        f"sampler: plain {unprofiled_best:.6f}s vs profiled "
        f"{profiled_best:.6f}s ({profiled_best / unprofiled_best:.3f}x)"
    )

    failures = []
    if disabled_tps < FLOOR_TXN_PER_SECOND:
        failures.append(
            f"disabled throughput {disabled_tps:,.0f} txn/s is below the "
            f"{FLOOR_TXN_PER_SECOND:,.0f} txn/s floor"
        )
    if disabled_best > traced_best * RELATIVE_TOLERANCE:
        failures.append(
            f"disabled path ({disabled_best:.6f}s) is slower than the traced "
            f"path ({traced_best:.6f}s) beyond tolerance — a tracer guard "
            "was probably dropped"
        )
    if idle_best > traced_best * RELATIVE_TOLERANCE:
        failures.append(
            f"idle-bus path ({idle_best:.6f}s) is slower than the traced "
            f"path ({traced_best:.6f}s) beyond tolerance — emit() is doing "
            "work with no subscribers"
        )
    if checked_tps < CHECKER_FLOOR_TXN_PER_SECOND:
        failures.append(
            f"checker-attached throughput {checked_tps:,.0f} txn/s is below "
            f"the {CHECKER_FLOOR_TXN_PER_SECOND:,.0f} txn/s floor"
        )
    if checked_best > manager_best * CHECKER_TOLERANCE:
        failures.append(
            f"checker-attached churn ({checked_best:.6f}s) exceeds "
            f"{CHECKER_TOLERANCE:.0f}x the bare manager ({manager_best:.6f}s)"
            " — the oracle's per-event work has blown up"
        )

    if plain_naive_best < plain_cached_best * CACHE_CHURN_FLOOR:
        failures.append(
            f"plain-machine commit churn cached ({plain_cached_best:.6f}s) is "
            f"not {CACHE_CHURN_FLOOR:.0f}x faster than naive replay "
            f"({plain_naive_best:.6f}s) — the view cache stopped paying"
        )
    if sweep_naive_best < sweep_cached_best * CACHE_SWEEP_FLOOR:
        failures.append(
            f"{CACHE_SWEEP_LENGTH}-op transaction cached "
            f"({sweep_cached_best:.6f}s) is not {CACHE_SWEEP_FLOOR:.0f}x "
            f"faster than naive replay ({sweep_naive_best:.6f}s)"
        )
    if disabled_best > compacting_naive_best * CACHE_COMPACTING_TOLERANCE:
        failures.append(
            f"compacting churn with the cache ({disabled_best:.6f}s) exceeds "
            f"{CACHE_COMPACTING_TOLERANCE:.1f}x the uncached machine "
            f"({compacting_naive_best:.6f}s) — cache maintenance is costing "
            "more than it saves on the folded path"
        )

    if compiled_best > predicate_best * COMPILED_TOLERANCE:
        failures.append(
            f"holder churn on the compiled relation ({compiled_best:.6f}s) "
            f"exceeds {COMPILED_TOLERANCE:.2f}x the predicate relation "
            f"({predicate_best:.6f}s) — the bitset table has stopped paying"
        )

    if profiled_best > unprofiled_best * SAMPLER_TOLERANCE:
        failures.append(
            f"profiled churn ({profiled_best:.6f}s) exceeds "
            f"{SAMPLER_TOLERANCE:.2f}x the unprofiled run "
            f"({unprofiled_best:.6f}s) — the sampler is no longer "
            "low-overhead"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: disabled-path overhead within bounds")
    return 0


def test_overhead_guard():
    assert main() == 0


if __name__ == "__main__":
    sys.exit(main())
