"""Observability overhead guard — "no tracer, no cost".

Every instrumentation site in the LOCK machine, manager and simulator is
guarded by a ``tracer is None`` check, so the disabled path should cost
one attribute load per site.  This script keeps that contract honest
without needing the pre-instrumentation binary:

* **relative guard** — the commit-churn microbenchmark (the same 150
  one-credit transactions as ``bench_machine_micro.py``) must not run
  measurably slower with observability disabled than fully traced.  If
  the disabled path ever approaches traced cost, a guard was dropped.
* **absolute floor** — disabled throughput must clear a floor far below
  any machine we run CI on, catching pathological regressions (an
  accidental per-event allocation on the hot path) outright.

Run directly (``PYTHONPATH=src python benchmarks/check_overhead.py``) or
via pytest.  Exits non-zero on violation.
"""

import sys
import time

from repro.adts import make_account_adt
from repro.core import CompactingLockMachine, Invocation
from repro.obs import MetricsRegistry, RegistrySink, TraceBus

TRANSACTIONS = 150
REPEATS = 7
# Generous: the seed machine does ~45k txn/s on a laptop-class core; CI
# runners under load still manage several thousand.
FLOOR_TXN_PER_SECOND = 1_000.0
# Disabled must be no slower than traced, with headroom for timer noise.
RELATIVE_TOLERANCE = 1.10


def churn(machine, transactions=TRANSACTIONS):
    for index in range(transactions):
        name = f"T{index}"
        machine.execute(name, Invocation("Credit", (1,)))
        machine.commit(name, index + 1)


def best_of(build, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        machine = build()
        started = time.perf_counter()
        churn(machine)
        best = min(best, time.perf_counter() - started)
    return best


def main():
    adt = make_account_adt()

    def disabled():
        return CompactingLockMachine(adt.spec, adt.conflict)

    def traced():
        machine = CompactingLockMachine(adt.spec, adt.conflict)
        bus = TraceBus()
        bus.subscribe(RegistrySink(MetricsRegistry()))
        machine.tracer = bus
        return machine

    # Warm up bytecode caches before timing either variant.
    churn(disabled())

    disabled_best = best_of(disabled)
    traced_best = best_of(traced)
    disabled_tps = TRANSACTIONS / disabled_best
    traced_tps = TRANSACTIONS / traced_best

    print(f"disabled: {disabled_best:.6f}s best  ({disabled_tps:,.0f} txn/s)")
    print(f"traced:   {traced_best:.6f}s best  ({traced_tps:,.0f} txn/s)")

    failures = []
    if disabled_tps < FLOOR_TXN_PER_SECOND:
        failures.append(
            f"disabled throughput {disabled_tps:,.0f} txn/s is below the "
            f"{FLOOR_TXN_PER_SECOND:,.0f} txn/s floor"
        )
    if disabled_best > traced_best * RELATIVE_TOLERANCE:
        failures.append(
            f"disabled path ({disabled_best:.6f}s) is slower than the traced "
            f"path ({traced_best:.6f}s) beyond tolerance — a tracer guard "
            "was probably dropped"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: disabled-path overhead within bounds")
    return 0


def test_overhead_guard():
    assert main() == 0


if __name__ == "__main__":
    sys.exit(main())
