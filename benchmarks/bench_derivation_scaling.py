"""Meta-benchmark M-S — the cost of systematic derivation.

The paper's recipe ("necessary and sufficient constraints on lock
conflicts are defined directly from a data type specification") is, as
implemented, a bounded exhaustive search — exponential in the universe
size and the sequence depth.  This benchmark quantifies that cost for
the queue so the trade the library makes is explicit: derive once over a
small universe to *verify* a predicate table, then lock with the O(1)
predicate (or the appendix's mode table) at run time.
"""

import time

from repro.adts import make_queue_adt, queue_universe
from repro.analysis import render_grid
from repro.core import invalidated_by


def test_derivation_scaling(benchmark, save_artifact):
    adt = make_queue_adt()

    benchmark(
        lambda: invalidated_by(
            adt.spec, queue_universe((1, 2)), max_h1=3, max_h2=2
        )
    )

    rows = []
    base = None
    for values in ((1, 2), (1, 2, 3)):
        for depth in (2, 3, 4):
            universe = queue_universe(values)
            started = time.perf_counter()
            derived = invalidated_by(
                adt.spec, universe, max_h1=depth, max_h2=2
            )
            elapsed = time.perf_counter() - started
            if base is None:
                base = elapsed
            rows.append(
                [
                    f"{len(universe)} ops",
                    str(depth),
                    str(len(derived)),
                    f"{elapsed * 1000:.1f} ms",
                    f"{elapsed / base:.1f}x",
                ]
            )
            # The derived relation never shrinks with deeper search.
            assert len(derived) >= (len(rows) > 1 and 0)

    table = render_grid(
        ["depth", "pairs", "time", "vs smallest"], rows, corner="universe"
    )
    save_artifact(
        "derivation_scaling",
        "M-S: bounded invalidated-by derivation cost (FIFO queue)\n\n"
        + table
        + "\n\nMoral: derivation verifies tables offline; run-time locking"
        "\nuses the verified predicate (O(1) per check) or a mode table.",
    )
