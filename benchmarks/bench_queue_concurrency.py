"""Experiment C-Q — concurrent enqueues (the paper's motivating claim).

Sweeps producer count on a shared FIFO queue under all four protocols.
Expected shape: hybrid (Figure 4-2 conflicts) sustains throughput as
producers scale because enqueues never conflict; commutativity locking
serialises producers, so its throughput flattens and its conflict count
explodes; read/write 2PL is worst.
"""

from conftest import breakdown_data, metrics_table, run_observed

from repro.protocols import ALL_PROTOCOLS, COMMUTATIVITY, HYBRID
from repro.sim import QueueWorkload, compare_protocols, run_experiment

DURATION = 300.0
SEED = 7


def sweep():
    lines = []
    peak = {}
    for producers in (1, 2, 4, 8):
        results = compare_protocols(
            lambda: QueueWorkload(producers=producers, consumers=1,
                                  ops_per_transaction=4),
            ALL_PROTOCOLS,
            duration=DURATION,
            seed=SEED,
        )
        lines.append(f"\nproducers = {producers}")
        lines.append(metrics_table(results))
        peak[producers] = results
    return lines, peak


def test_queue_concurrency(benchmark, save_artifact):
    benchmark(
        lambda: run_experiment(
            QueueWorkload(producers=4, consumers=1),
            HYBRID,
            duration=DURATION,
            seed=SEED,
        )
    )
    lines, peak = sweep()

    # Shape assertions.  The two conflict relations are *incomparable*
    # (Section 4.3), and the simulation shows exactly that: with a single
    # producer, Fig 4-3/commutativity wins (its Deq ignores Enq locks);
    # once producers contend, Fig 4-2/hybrid's conflict-free enqueues take
    # over and the gap widens with producer count.
    low, high = peak[1], peak[8]
    assert low["commutativity"].throughput >= low["hybrid"].throughput
    assert high["hybrid"].throughput > 2 * high["commutativity"].throughput
    assert high["hybrid"].conflicts < high["commutativity"].conflicts
    assert high["commutativity"].throughput >= high["rw-2pl"].throughput

    gap_low = peak[2]["hybrid"].throughput - peak[2]["commutativity"].throughput
    gap_high = high["hybrid"].throughput - high["commutativity"].throughput
    assert gap_high > gap_low  # contention widens the gap (crossover ~2-4)

    # Event-level confirmation of *why* hybrid wins at peak contention:
    # its refusals never pair two enqueues, commutativity's mostly do.
    observed = {
        protocol.name: run_observed(
            QueueWorkload(producers=8, consumers=1, ops_per_transaction=4),
            protocol,
            duration=DURATION,
            seed=SEED,
        )
        for protocol in (HYBRID, COMMUTATIVITY)
    }
    hybrid_pairs = observed["hybrid"][1].conflict_breakdown()
    assert not any(
        pair.count("Enq") == 2 for pair in hybrid_pairs
    ), hybrid_pairs
    assert any(
        pair.count("Enq") == 2
        for pair in observed["commutativity"][1].conflict_breakdown()
    )

    data = breakdown_data(observed)
    data["sweep"] = {
        str(producers): {name: m.as_row() for name, m in row.items()}
        for producers, row in peak.items()
    }
    save_artifact(
        "queue_concurrency",
        "C-Q: FIFO queue producer scaling (duration=300, seed=7)\n"
        + "\n".join(lines),
        data=data,
    )
