"""Experiment F4-4 — Figure 4-4: minimal dependency relation for the
SemiQueue, and the paper's non-determinism comparison.

Derives the table (only removals of the same item depend on each other),
asserts it, and quantifies the claim that "non-deterministic operations
are an important source of concurrency" by comparing SemiQueue and Queue
concurrency scores.
"""

from conftest import certification_data, certified_run

from repro.adts import (
    QUEUE_CONFLICT_FIG42,
    SEMIQUEUE_CONFLICT,
    make_queue_adt,
    make_semiqueue_adt,
    queue_universe,
    semiqueue_universe,
)
from repro.analysis import concurrency_score, derive_figure
from repro.core import invalidated_by
from repro.protocols import HYBRID
from repro.sim import SemiQueueWorkload


def test_fig4_4_semiqueue_dependency(benchmark, save_artifact):
    adt = make_semiqueue_adt()
    universe = semiqueue_universe((1, 2))

    derived = benchmark(
        lambda: invalidated_by(adt.spec, universe, max_h1=3, max_h2=2)
    )

    report = derive_figure(adt, universe, "Figure 4-4: SemiQueue", check_minimal=True)
    assert report.matches_paper
    assert report.is_dependency
    assert report.is_minimal
    assert derived.pair_set == report.derived.pair_set

    semi_score = concurrency_score(SEMIQUEUE_CONFLICT, universe)
    fifo_score = concurrency_score(QUEUE_CONFLICT_FIG42, queue_universe((1, 2)))
    assert semi_score > fifo_score  # the value of non-determinism

    _, cert = certified_run(SemiQueueWorkload(), HYBRID, duration=150.0, seed=1)

    text = report.render() + (
        f"\nconcurrency score   : {semi_score:.3f}"
        f"\nFIFO queue (Fig4-2) : {fifo_score:.3f}  (non-determinism wins)"
        f"\ncertified run       : {cert['verdict']} ({cert['events']} events)"
    )
    save_artifact(
        "fig4_4_semiqueue",
        text,
        data={
            "matches_paper": report.matches_paper,
            "is_dependency": report.is_dependency,
            "is_minimal": report.is_minimal,
            "concurrency_score": semi_score,
            "fifo_concurrency_score": fifo_score,
            "certification": certification_data(cert),
        },
    )
