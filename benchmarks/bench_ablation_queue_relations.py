"""Ablation A-Q — choosing between the queue's two minimal relations.

DESIGN.md calls out the design choice the paper leaves open: a queue may
run the hybrid protocol with either minimal dependency relation.  This
ablation sweeps the producer:consumer ratio under both choices.

Expected shape: Figure 4-2 (conflict-free enqueues, dequeues exclusive)
wins producer-heavy mixes; Figure 4-3 (dequeues free of enqueue locks,
enqueues exclusive) wins consumer-heavy mixes; neither dominates — the
run-time counterpart of the relations being incomparable.
"""

from conftest import metrics_table

from repro.protocols import HYBRID
from repro.sim import QueueWorkload, run_experiment

DURATION = 400.0
SEED = 13


def run(producers, consumers, dependency):
    return run_experiment(
        QueueWorkload(
            producers=producers,
            consumers=consumers,
            ops_per_transaction=3,
            dependency=dependency,
        ),
        HYBRID,
        duration=DURATION,
        seed=SEED,
    )


def test_ablation_queue_relation_choice(benchmark, save_artifact):
    benchmark(lambda: run(4, 1, "fig42"))

    lines = []
    outcomes = {}
    for producers, consumers in ((6, 1), (4, 2), (2, 4), (1, 6)):
        fig42 = run(producers, consumers, "fig42")
        fig43 = run(producers, consumers, "fig43")
        outcomes[(producers, consumers)] = (fig42, fig43)
        lines.append(f"\nproducers:consumers = {producers}:{consumers}")
        lines.append(
            metrics_table(
                {"hybrid/fig4-2": fig42, "hybrid/fig4-3": fig43},
                fields=("committed", "conflicts", "blocks", "throughput"),
            )
        )

    # Neither choice dominates: 4-2 wins the producer-heavy end, 4-3 the
    # consumer-heavy end.
    heavy_producers = outcomes[(6, 1)]
    heavy_consumers = outcomes[(1, 6)]
    assert heavy_producers[0].throughput > heavy_producers[1].throughput
    assert heavy_consumers[1].throughput > heavy_consumers[0].throughput

    save_artifact(
        "ablation_queue_relations",
        "A-Q: hybrid protocol with Fig 4-2 vs Fig 4-3 conflicts "
        "(duration=400, seed=13)\n" + "\n".join(lines),
    )
