"""Ablation A-W — retry/backoff vs block-and-wake lock scheduling.

The protocol leaves the waiting discipline open ("the invocation is later
retried").  This ablation compares the two classic choices on a hot
account under commutativity conflicts (the most lock-hungry typed table),
and confirms hybrid's dominance is robust to the scheduling choice.

Expected shape: blocking wastes no backoff time, so it commits more and
refuses fewer locks, at the cost of real deadlocks (detected and resolved
by aborting the requester); hybrid beats commutativity under either
policy.
"""

from conftest import breakdown_data, metrics_table, run_observed

from repro.protocols import COMMUTATIVITY, HYBRID
from repro.sim import ClientParams
from repro.sim import AccountWorkload

DURATION = 300.0
SEED = 2


def run(protocol, policy):
    return run_observed(
        AccountWorkload(clients=6, accounts=1, post_p=0.2),
        protocol,
        duration=DURATION,
        seed=SEED,
        params=ClientParams(wait_policy=policy),
    )


def test_wait_policies(benchmark, save_artifact):
    benchmark(lambda: run(COMMUTATIVITY, "block"))

    observed = {
        f"{protocol.name}/{policy}": run(protocol, policy)
        for protocol in (HYBRID, COMMUTATIVITY)
        for policy in ("retry", "block")
    }
    rows = {name: metrics for name, (metrics, _) in observed.items()}

    # Blocking beats polling for the lock-hungry table ...
    assert (
        rows["commutativity/block"].throughput
        > rows["commutativity/retry"].throughput
    )
    # ... and exhibits genuine deadlocks, resolved by aborts.
    assert rows["commutativity/block"].deadlocks > 0
    assert rows["commutativity/retry"].deadlocks == 0
    # Hybrid's win is robust to the scheduling policy.
    for policy in ("retry", "block"):
        assert (
            rows[f"hybrid/{policy}"].throughput
            > rows[f"commutativity/{policy}"].throughput
        )

    # The block policy's refusals surface as waits, not polling retries.
    block_registry = observed["commutativity/block"][1]
    assert block_registry.counter("lock.waits").value > 0
    assert block_registry.counter("lock.deadlocks").value == (
        rows["commutativity/block"].deadlocks
    )

    save_artifact(
        "wait_policies",
        "A-W: lock-wait scheduling ablation on a hot account "
        "(clients=6, post share=0.2, duration=300, seed=2)\n\n"
        + metrics_table(
            rows,
            fields=(
                "committed",
                "conflicts",
                "deadlocks",
                "throughput",
                "mean_latency",
                "abort_rate",
            ),
        ),
        data=breakdown_data(observed),
    )
