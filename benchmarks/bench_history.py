"""Bench history: one headline line per run, append-only.

``repro bench compare OLD.json NEW.json`` answers "did this change
regress the serving tier?" for a single pair; this script keeps the
longitudinal record.  Each invocation reads a benchmark artifact,
extracts its headline numbers, and appends one JSON line to
``benchmarks/results/history.jsonl``.  Headlines dispatch on the
artifact name: ``BENCH_serve.json`` rows carry the peak-concurrency
throughput, p50/p99 and certification verdict (the same row ``compare``
judges); ``BENCH_machine_micro.json`` rows carry the plain-machine
hybrid churn rate and the compiled-relation speedups, so the conflict
compiler's margin is tracked over time too.  The log is append-only on
purpose: a rewritten history is no history at all.

Run directly::

    PYTHONPATH=src python benchmarks/bench_history.py BENCH_serve.json
    PYTHONPATH=src python benchmarks/bench_history.py BENCH_machine_micro.json
    PYTHONPATH=src python benchmarks/bench_history.py --show 10

or via pytest, which exercises the append/show round trip in a temp
directory without touching the committed log.
"""

import argparse
import datetime
import json
import sys
from pathlib import Path

from repro.server.bench import headline

HISTORY_PATH = Path(__file__).parent / "results" / "history.jsonl"


def machine_micro_headline(data):
    """Headline row for a ``BENCH_machine_micro.json`` artifact."""
    hybrid = data["results"]["plain machine/hybrid"]
    row = {
        "kind": "machine_micro",
        "smoke": data.get("smoke", False),
        "txn_per_second": hybrid["txn_per_second"],
        "transactions": data["transactions"],
    }
    micro = data.get("relation_micro")
    if isinstance(micro, dict):
        row["compiled_over_memoised"] = micro["calls"]["compiled_over_memoised"]
        row["compiled_over_predicate"] = micro["churn"][
            "compiled_over_predicate"
        ]
    return row


def headline_for(artifact_name, data):
    """The headline extractor for an artifact, dispatched by name."""
    if artifact_name == "BENCH_machine_micro.json":
        return machine_micro_headline(data)
    if artifact_name == "BENCH_shard.json":
        from repro.server.shardbench import shard_headline

        return shard_headline(data)
    return headline(data)


def record(artifact_path, history_path=HISTORY_PATH):
    """Append one artifact's headline row to the history log.

    Returns the row written.  Raises ``OSError`` / ``ValueError`` /
    ``KeyError`` on unreadable or malformed artifacts — callers decide
    whether that is fatal (the CLI does; tests catch).
    """
    artifact_path = Path(artifact_path)
    data = json.loads(artifact_path.read_text())
    row = {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "artifact": artifact_path.name,
        **headline_for(artifact_path.name, data),
    }
    history_path = Path(history_path)
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with open(history_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    return row


def load_history(history_path=HISTORY_PATH):
    """All recorded rows, oldest first (empty list when no log yet)."""
    history_path = Path(history_path)
    if not history_path.is_file():
        return []
    rows = []
    with open(history_path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def render_history(rows, last=10):
    """Terminal table of the most recent ``last`` rows."""
    if not rows:
        return "(no history recorded yet)"
    lines = []
    for row in rows[-last:]:
        smoke = " smoke" if row.get("smoke") else ""
        if row.get("kind") == "shard":
            lines.append(
                f"{row['recorded_at']}  {row['txn_per_second']:>9,.0f} txn/s  "
                f"shard pool @{row['workers']} workers  "
                f"{row['speedup_vs_baseline']:.2f}x vs append  "
                f"{row['fsyncs_per_txn']:.2f} fsync/txn  "
                f"{row['verdict']}{smoke}"
            )
            continue
        if row.get("kind") == "machine_micro":
            compiled = row.get("compiled_over_memoised")
            margin = (
                f"compiled/memo {compiled:.2f}x"
                if compiled is not None
                else "no relation micro"
            )
            lines.append(
                f"{row['recorded_at']}  {row['txn_per_second']:>9,.0f} txn/s  "
                f"machine-micro hybrid churn  {margin}{smoke}"
            )
            continue
        lines.append(
            f"{row['recorded_at']}  {row['txn_per_second']:>9,.0f} txn/s  "
            f"p50 {row['p50_latency_ms']:>7.2f}ms  "
            f"p99 {row['p99_latency_ms']:>7.2f}ms  "
            f"@{row['clients']} clients  {row['verdict']}{smoke}"
        )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "artifacts", nargs="*", help="BENCH_serve.json artifact(s) to record"
    )
    parser.add_argument(
        "--history",
        default=str(HISTORY_PATH),
        help="history log to append to (default: benchmarks/results/history.jsonl)",
    )
    parser.add_argument(
        "--show",
        type=int,
        default=None,
        metavar="N",
        help="print the last N recorded rows (after any appends)",
    )
    args = parser.parse_args(argv)
    if not args.artifacts and args.show is None:
        parser.print_usage(sys.stderr)
        return 2
    for artifact in args.artifacts:
        try:
            row = record(artifact, history_path=args.history)
        except (OSError, ValueError, KeyError) as failure:
            print(f"FAIL {artifact}: {failure}", file=sys.stderr)
            return 1
        if row.get("kind") == "machine_micro":
            print(
                f"recorded {row['artifact']}: "
                f"{row['txn_per_second']:,.0f} txn/s hybrid churn"
            )
        elif row.get("kind") == "shard":
            print(
                f"recorded {row['artifact']}: "
                f"{row['txn_per_second']:,.0f} txn/s "
                f"@ {row['workers']} shard workers "
                f"({row['speedup_vs_baseline']:.2f}x vs append, "
                f"{row['verdict']})"
            )
        else:
            print(
                f"recorded {row['artifact']}: "
                f"{row['txn_per_second']:,.0f} txn/s "
                f"@ {row['clients']} clients ({row['verdict']})"
            )
    if args.show is not None:
        print(render_history(load_history(args.history), last=args.show))
    return 0


def test_history_round_trip(tmp_path):
    """Append + reload + render against a synthetic artifact."""
    artifact = tmp_path / "BENCH_serve.json"
    artifact.write_text(
        json.dumps(
            {
                "smoke": True,
                "closed_loop": [
                    {
                        "clients": 4,
                        "committed": 10,
                        "stats": {
                            "txn_per_second": 100.0,
                            "p50_latency_ms": 1.0,
                            "p99_latency_ms": 2.0,
                        },
                    },
                    {
                        "clients": 64,
                        "committed": 640,
                        "stats": {
                            "txn_per_second": 1500.0,
                            "p50_latency_ms": 3.0,
                            "p99_latency_ms": 9.0,
                        },
                    },
                ],
                "certification": {"verdict": "clean"},
            }
        )
    )
    log = tmp_path / "history.jsonl"
    first = record(artifact, history_path=log)
    assert first["clients"] == 64, "headline must pick peak concurrency"
    assert first["txn_per_second"] == 1500.0
    record(artifact, history_path=log)
    rows = load_history(log)
    assert len(rows) == 2, "the log must append, not overwrite"
    rendered = render_history(rows, last=1)
    assert "1,500 txn/s" in rendered
    assert "clean smoke" in rendered
    assert main([str(artifact), "--history", str(log), "--show", "3"]) == 0
    assert len(load_history(log)) == 3
    assert main(["--history", str(log)]) == 2, "no artifact and no --show"


def test_machine_micro_history_row(tmp_path):
    """The machine-micro artifact records its own headline shape."""
    artifact = tmp_path / "BENCH_machine_micro.json"
    artifact.write_text(
        json.dumps(
            {
                "smoke": False,
                "transactions": 150,
                "results": {
                    "plain machine/hybrid": {
                        "elapsed_seconds": 0.005,
                        "txn_per_second": 30000.0,
                    }
                },
                "relation_micro": {
                    "calls": {"compiled_over_memoised": 1.8},
                    "churn": {"compiled_over_predicate": 1.4},
                },
            }
        )
    )
    log = tmp_path / "history.jsonl"
    row = record(artifact, history_path=log)
    assert row["kind"] == "machine_micro"
    assert row["txn_per_second"] == 30000.0
    assert row["compiled_over_memoised"] == 1.8
    rendered = render_history(load_history(log))
    assert "machine-micro" in rendered
    assert "1.80x" in rendered
    assert main([str(artifact), "--history", str(log)]) == 0


def test_shard_history_row(tmp_path):
    """The shard-pool artifact records its own headline shape."""
    artifact = tmp_path / "BENCH_shard.json"
    artifact.write_text(
        json.dumps(
            {
                "smoke": True,
                "scaling": [
                    {"workers": 1, "txn_per_second": 1400.0},
                    {"workers": 4, "txn_per_second": 4200.0},
                ],
                "speedup_vs_baseline": 3.0,
                "depth_sweep": [
                    {"batch_depth": 1, "fsyncs_per_txn": 1.0},
                    {"batch_depth": 16, "fsyncs_per_txn": 0.07},
                ],
                "certification": {"verdict": "clean"},
            }
        )
    )
    log = tmp_path / "history.jsonl"
    row = record(artifact, history_path=log)
    assert row["kind"] == "shard"
    assert row["workers"] == 4, "headline must pick the top worker row"
    assert row["txn_per_second"] == 4200.0
    assert row["speedup_vs_baseline"] == 3.0
    assert row["fsyncs_per_txn"] == 0.07
    rendered = render_history(load_history(log))
    assert "shard pool @4 workers" in rendered
    assert "3.00x vs append" in rendered
    assert main([str(artifact), "--history", str(log)]) == 0


if __name__ == "__main__":
    sys.exit(main())
