"""Extension experiment X-R — multiversion read-only transactions.

Section 7.1: the general form of hybrid atomicity chooses timestamps for
read-only transactions at *start* (static atomicity, as in multiversion
protocols) so they read a consistent snapshot without locks.  This
benchmark runs an analytical reader that scans every counter while
writers stream increments:

* reader as an ordinary locking transaction — every scan acquires Read
  locks that conflict with the writers' increments, so writers pile up
  lock refusals while the reader lives (and vice versa);
* reader as a multiversion read-only transaction — zero conflicts in
  either direction, at the cost of retaining committed intentions while
  the snapshot is pinned.

Expected shape: writer conflicts drop to zero with the multiversion
reader; the pinned-retention peak is bounded by writer traffic during one
reader's lifetime.
"""

from repro.adts import make_counter_adt
from repro.core import LockConflict
from repro.runtime import TransactionManager

COUNTERS = 4
ROUNDS = 12
WRITES_PER_ROUND = 6


def build_manager():
    manager = TransactionManager()
    for index in range(COUNTERS):
        manager.create_object(f"C{index}", make_counter_adt())
    for index in range(COUNTERS):
        manager.run_transaction(lambda ctx, i=index: ctx.invoke(f"C{i}", "Inc", 1))
    return manager


def run(readonly: bool):
    """Interleave a scanning reader with writer traffic; count conflicts.

    A writer blocked by the reader's Read lock gives up after one refusal
    (the lock cannot clear until the reader commits); skipped writes are
    counted, so snapshot totals can only be asserted in multiversion mode.
    """
    manager = build_manager()
    writer_conflicts = 0
    reader_conflicts = 0
    retained_peak = 0
    totals = []
    for _ in range(ROUNDS):
        reader = (
            manager.begin_readonly() if readonly else manager.begin()
        )
        total = 0
        # Scan half the counters, let writers in, scan the rest.
        for index in range(COUNTERS):
            if index == COUNTERS // 2:
                for w in range(WRITES_PER_ROUND):
                    target = f"C{w % COUNTERS}"
                    writer = manager.begin()
                    try:
                        manager.invoke(writer, target, "Inc", 1)
                    except LockConflict:
                        writer_conflicts += 1
                        manager.abort(writer)
                        continue
                    manager.commit(writer)
            try:
                total += manager.invoke(reader, f"C{index}", "Read")
            except LockConflict:
                reader_conflicts += 1
        retained_peak = max(
            retained_peak,
            sum(
                managed.machine.retained_intentions()
                for managed in manager.objects.values()
            ),
        )
        totals.append(total)
        manager.commit(reader)
    return writer_conflicts, reader_conflicts, retained_peak, totals


def test_readonly_transactions(benchmark, save_artifact):
    ro_writer, ro_reader, ro_retained, ro_totals = benchmark(lambda: run(True))
    lk_writer, lk_reader, lk_retained, lk_totals = run(False)

    # The multiversion reader conflicts with nothing.
    assert ro_writer == 0 and ro_reader == 0
    # The locking reader induces real lock traffic.
    assert lk_writer > 0
    # Snapshot consistency: every multiversion scan sums a single
    # consistent state even though writers ran mid-scan.
    writes_before_round = [COUNTERS + WRITES_PER_ROUND * i for i in range(ROUNDS)]
    assert ro_totals == writes_before_round
    # The price: retained intentions while pinned (bounded by one round's
    # writer traffic).
    assert 0 < ro_retained <= WRITES_PER_ROUND

    save_artifact(
        "readonly_transactions",
        "X-R: analytical scans vs writer stream "
        f"({COUNTERS} counters, {ROUNDS} rounds, "
        f"{WRITES_PER_ROUND} writes interleaved mid-scan per round)\n\n"
        f"{'reader mode':>14}  {'writer lock refusals':>21}  "
        f"{'reader lock refusals':>21}  {'retained-intentions peak':>25}\n"
        f"{'locking':>14}  {lk_writer:>21}  {lk_reader:>21}  {lk_retained:>25}\n"
        f"{'multiversion':>14}  {ro_writer:>21}  {ro_reader:>21}  {ro_retained:>25}\n"
        "\nmultiversion scan totals per round (each a consistent snapshot): "
        + ", ".join(str(t) for t in ro_totals),
    )
