"""Experiment F4-1 — Figure 4-1: minimal dependency relation for File.

Regenerates the table by deriving invalidated-by from the File serial
specification over a finite universe, asserts it equals the paper's
parametric table (a read depends on a write exactly when the values
differ; writes depend on nothing), verifies Definition 3 and minimality,
and records the schema-level rendering.  The benchmark measures the
derivation itself — the paper's "necessary and sufficient constraints on
lock conflicts are defined directly from a data type specification".
"""

from repro.adts import file_universe, make_file_adt
from repro.analysis import concurrency_score, derive_figure
from repro.core import invalidated_by


def test_fig4_1_file_dependency(benchmark, save_artifact):
    adt = make_file_adt()
    universe = file_universe((0, 1))

    derived = benchmark(
        lambda: invalidated_by(adt.spec, universe, max_h1=3, max_h2=2)
    )

    report = derive_figure(adt, universe, "Figure 4-1: File", check_minimal=True)
    assert report.matches_paper
    assert report.is_dependency
    assert report.is_minimal
    assert derived.pair_set == report.derived.pair_set

    text = report.render() + (
        f"\nconcurrency score   : {concurrency_score(adt.conflict, universe):.3f}"
    )
    save_artifact("fig4_1_file", text)
