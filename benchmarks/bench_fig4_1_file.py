"""Experiment F4-1 — Figure 4-1: minimal dependency relation for File.

Regenerates the table by deriving invalidated-by from the File serial
specification over a finite universe, asserts it equals the paper's
parametric table (a read depends on a write exactly when the values
differ; writes depend on nothing), verifies Definition 3 and minimality,
and records the schema-level rendering.  The benchmark measures the
derivation itself — the paper's "necessary and sufficient constraints on
lock conflicts are defined directly from a data type specification".
"""

from conftest import certification_data, certified_run

from repro.adts import file_universe, make_file_adt
from repro.analysis import concurrency_score, derive_figure
from repro.core import invalidated_by
from repro.protocols import HYBRID
from repro.sim import FileWorkload


def test_fig4_1_file_dependency(benchmark, save_artifact):
    adt = make_file_adt()
    universe = file_universe((0, 1))

    derived = benchmark(
        lambda: invalidated_by(adt.spec, universe, max_h1=3, max_h2=2)
    )

    report = derive_figure(adt, universe, "Figure 4-1: File", check_minimal=True)
    assert report.matches_paper
    assert report.is_dependency
    assert report.is_minimal
    assert derived.pair_set == report.derived.pair_set

    # Certify a simulated run driven by the derived relation: the online
    # oracle replays the trace and confirms it hybrid atomic end to end.
    _, cert = certified_run(FileWorkload(), HYBRID, duration=150.0, seed=1)

    score = concurrency_score(adt.conflict, universe)
    text = report.render() + (
        f"\nconcurrency score   : {score:.3f}"
        f"\ncertified run       : {cert['verdict']} ({cert['events']} events)"
    )
    save_artifact(
        "fig4_1_file",
        text,
        data={
            "matches_paper": report.matches_paper,
            "is_dependency": report.is_dependency,
            "is_minimal": report.is_minimal,
            "concurrency_score": score,
            "certification": certification_data(cert),
        },
    )
