"""Experiment F4-5 — Figure 4-5: minimal dependency relation for Account.

The paper's richest table: lock modes chosen by operation *results*
(successful debits vs overdrafts).  The benchmark derives it, asserts it
equals the paper's entries, confirms its symmetric closure is exactly the
appendix's Avalon lock table, and verifies minimality.
"""

from conftest import certification_data, certified_run

from repro.adts import (
    ACCOUNT_CONFLICT,
    account_universe,
    credit,
    debit_ok,
    debit_overdraft,
    make_account_adt,
    post,
)
from repro.analysis import concurrency_score, derive_figure
from repro.core import invalidated_by
from repro.protocols import HYBRID
from repro.sim import AccountWorkload


def test_fig4_5_account_dependency(benchmark, save_artifact):
    adt = make_account_adt()
    universe = account_universe((2, 3), (50,))

    derived = benchmark(
        lambda: invalidated_by(adt.spec, universe, max_h1=3, max_h2=2)
    )

    report = derive_figure(adt, universe, "Figure 4-5: Account", check_minimal=True)
    assert report.matches_paper
    assert report.is_dependency
    assert report.is_minimal
    assert derived.pair_set == report.derived.pair_set

    # The appendix's lock table, exactly:
    #   locks.define(CREDIT_LOCK, OVERDRAFT_LOCK);
    #   locks.define(POST_LOCK,   OVERDRAFT_LOCK);
    #   locks.define(DEBIT_LOCK,  DEBIT_LOCK);
    assert ACCOUNT_CONFLICT.related(credit(2), debit_overdraft(3))
    assert ACCOUNT_CONFLICT.related(post(50), debit_overdraft(3))
    assert ACCOUNT_CONFLICT.related(debit_ok(2), debit_ok(3))
    assert not ACCOUNT_CONFLICT.related(credit(2), debit_ok(3))
    assert not ACCOUNT_CONFLICT.related(post(50), debit_ok(3))
    assert not ACCOUNT_CONFLICT.related(post(50), credit(3))

    _, cert = certified_run(AccountWorkload(), HYBRID, duration=150.0, seed=1)

    score = concurrency_score(ACCOUNT_CONFLICT, universe)
    text = report.render() + (
        "\nsymmetric closure == appendix lock table "
        "(CREDIT-OVERDRAFT, POST-OVERDRAFT, DEBIT-DEBIT): True"
        f"\nconcurrency score   : {score:.3f}"
        f"\ncertified run       : {cert['verdict']} ({cert['events']} events)"
    )
    save_artifact(
        "fig4_5_account",
        text,
        data={
            "matches_paper": report.matches_paper,
            "is_dependency": report.is_dependency,
            "is_minimal": report.is_minimal,
            "concurrency_score": score,
            "certification": certification_data(cert),
        },
    )
