"""Experiment F4-2 — Figure 4-2: first minimal dependency relation for the
FIFO Queue (the invalidated-by relation).

Derives the table mechanically, asserts equality with the paper's entries
(Deq(v) depends on Enq(v') when v != v' and on Deq(v') when v == v';
enqueues depend on nothing — the relation that admits concurrent
enqueues), and verifies Definition 3 plus minimality.
"""

from conftest import certification_data, certified_run

from repro.adts import QUEUE_DEPENDENCY_FIG42, make_queue_adt, queue_universe
from repro.analysis import concurrency_score, derive_figure
from repro.core import invalidated_by
from repro.protocols import HYBRID
from repro.sim import QueueWorkload


def test_fig4_2_queue_dependency(benchmark, save_artifact):
    adt = make_queue_adt()
    universe = queue_universe((1, 2))

    derived = benchmark(
        lambda: invalidated_by(adt.spec, universe, max_h1=3, max_h2=2)
    )

    report = derive_figure(adt, universe, "Figure 4-2: FIFO Queue", check_minimal=True)
    assert report.matches_paper
    assert report.is_dependency
    assert report.is_minimal
    assert derived.pair_set == QUEUE_DEPENDENCY_FIG42.restrict(universe).pair_set

    # The headline entry: enqueues never depend on anything.
    from repro.adts import deq, enq

    assert not any(
        derived.related(enq(v), p) for v in (1, 2) for p in universe
    )

    _, cert = certified_run(QueueWorkload(), HYBRID, duration=150.0, seed=1)

    score = concurrency_score(adt.conflict, universe)
    text = report.render() + (
        f"\nconcurrency score   : {score:.3f}"
        f"\ncertified run       : {cert['verdict']} ({cert['events']} events)"
    )
    save_artifact(
        "fig4_2_queue",
        text,
        data={
            "matches_paper": report.matches_paper,
            "is_dependency": report.is_dependency,
            "is_minimal": report.is_minimal,
            "concurrency_score": score,
            "certification": certification_data(cert),
        },
    )
