"""Extension experiment X-Q — quorum-consensus availability (paper §7.2, [8]).

"The constraints on the availability realizable by quorum consensus
replication can be expressed in terms of dependency relations."  This
benchmark compares three quorum assignments for a 5-way replicated
Account under increasing replica failures:

* **majority** — uniform 3/3 quorums (the untyped baseline);
* **read/write** — Gifford quorums with every Account operation a write;
* **credit-biased type-specific** — derived from Figure 4-5: Credit and
  Post depend on nothing, so they run with an *empty initial quorum* and
  a final quorum of 2, pushing the debit side's initial quorum to 4.

Expected shape: with 3 of 5 replicas down, majority/read-write lose every
operation while the type-specific assignment keeps deposits and interest
postings flowing; the price is debit availability (tolerates only 1
failure).  Dependency relations make the trade *explicit and checkable*.
"""

from repro.adts import account_universe, make_account_adt
from repro.analysis import render_grid
from repro.replication import (
    QuorumAssignment,
    QuorumSpec,
    ReplicatedTransactionManager,
    Unavailable,
)

REPLICAS = 5
NAMES = ["Credit", "Post", "Debit"]


def assignments():
    majority = QuorumAssignment.majority(REPLICAS, NAMES)
    read_write = QuorumAssignment.read_write(
        REPLICAS, lambda name: False, NAMES
    )
    biased = QuorumAssignment(
        REPLICAS,
        {
            "Credit": QuorumSpec(0, 2),
            "Post": QuorumSpec(0, 2),
            "Debit": QuorumSpec(4, 2),
        },
    )
    return {"majority": majority, "read-write": read_write, "type-specific": biased}


def measure(assignment, failed, check=False):
    """Try one op of each kind with ``failed`` replicas down.

    With ``check=True`` the streaming oracle rides along (a fresh bus and
    checker per call — every manager reuses transaction names) and the
    committed sub-history is asserted hybrid atomic; returns
    ``(outcome, report)`` then.
    """
    tracer = None
    checker = None
    if check:
        from repro.obs import AtomicityChecker, TraceBus

        tracer = TraceBus()
        checker = tracer.subscribe(AtomicityChecker(emit_to=tracer))
    manager = ReplicatedTransactionManager(tracer=tracer)
    manager.create_object("A", make_account_adt(), assignment)
    manager.run_transaction(lambda ctx: ctx.invoke("A", "Credit", 100))
    manager.object("A").fail_replicas(failed)
    outcome = {}
    for op, args in (("Credit", (5,)), ("Post", (5,)), ("Debit", (5,))):
        try:
            manager.run_transaction(lambda ctx: ctx.invoke("A", op, *args))
            outcome[op] = "up"
        except Unavailable:
            outcome[op] = "-"
    if check:
        report = checker.report()
        assert report["ok"], checker.render_report()
        return outcome, report
    return outcome


def test_replication_availability(benchmark, save_artifact):
    adt = make_account_adt()
    universe = account_universe()
    table = assignments()
    for name, assignment in table.items():
        assert assignment.is_valid(adt.dependency, universe), name

    benchmark(lambda: measure(table["type-specific"], 2))

    lines = []
    grids = {}
    certifications = {}
    for name, assignment in table.items():
        rows = []
        for failed in range(REPLICAS):
            outcome, cert = measure(assignment, failed, check=True)
            certifications[f"{name}/failed={failed}"] = {
                "verdict": cert["verdict"],
                "events": cert["events"],
                "violations": cert["violations"],
            }
            rows.append(
                [str(failed)] + [outcome[op] for op in NAMES]
            )
        grids[name] = {
            int(r[0]): dict(zip(NAMES, r[1:])) for r in rows
        }
        lines.append(f"\nassignment = {name}")
        lines.append(render_grid(NAMES, rows, corner="failed"))

    # Shape: with 3 failures only the type-specific assignment still
    # serves credits and postings; with 2 everything uniform still works.
    assert grids["type-specific"][3]["Credit"] == "up"
    assert grids["type-specific"][3]["Post"] == "up"
    assert grids["majority"][3]["Credit"] == "-"
    assert grids["read-write"][3]["Credit"] == "-"
    # The price: debits die one failure earlier than under majority.
    assert grids["type-specific"][2]["Debit"] == "-"
    assert grids["majority"][2]["Debit"] == "up"

    save_artifact(
        "replication_availability",
        "X-Q: Account availability under replica failures "
        f"({REPLICAS} replicas; 'up' = operation committable; every "
        "configuration's committed history certified hybrid atomic)\n"
        + "\n".join(lines),
        data={
            "availability": grids,
            "certifications": certifications,
        },
    )
