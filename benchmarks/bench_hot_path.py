"""Hot-path benchmark — incremental view caching vs naive replay.

The LOCK machine's response check used to replay a transaction's whole
view (committed prefix + own intentions) through the specification per
operation; it now advances a cached view state-set by one ``spec.step``
per appended operation.  This benchmark quantifies that change and writes
two machine-readable artifacts (validated by ``bench_schema.py``):

* ``BENCH_hot_path.json`` — the intentions-list length sweep (ops/sec and
  p50/p99 per-op latency, cached vs naive, with speedups), commit-churn
  throughput for the plain and compacting machines, relation-memo
  enumeration rates, and a checker-certified manager churn run.
* ``BENCH_machine_micro.json`` — the machine × protocol commit-churn grid
  (the ``bench_machine_micro.py`` numbers, in a schema'd envelope), plus
  the compiled-relation micro-benchmark: ``related()`` call rates for the
  compiled bitset table vs the memoised predicate (warm — the
  pre-compiler default) vs a bare un-memoised predicate, and commit
  churn against a pack of live lock-holding transactions so every
  executed operation pays real conflict checks.  The schema enforces the
  compiler's acceptance floor: compiled must not be slower than the warm
  memo.

Run directly::

    PYTHONPATH=src python benchmarks/bench_hot_path.py [--smoke] [--output-dir DIR]

``--smoke`` shrinks repeats and sweep lengths for CI; the full run's
artifacts are committed at the repository root.  Every run is certified:
the manager-churn section drives a :class:`repro.obs.AtomicityChecker`
and the script fails if the oracle reports a violation.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.adts import make_account_adt
from repro.core import CompactingLockMachine, Invocation, LockMachine
from repro.core.compile import (
    compile_relation,
    default_universe,
    reference_relation,
)
from repro.core.conflict import CompiledRelation, PredicateRelation
from repro.obs import AtomicityChecker, TraceBus
from repro.protocols import ALL_PROTOCOLS
from repro.runtime import TransactionManager

SCHEMA_VERSION = 1
REPO_ROOT = Path(__file__).resolve().parents[1]

SWEEP_LENGTHS = (25, 50, 100, 200, 400)
SMOKE_SWEEP_LENGTHS = (25, 50, 200)
CHURN_TRANSACTIONS = 150
CERTIFIED_TRANSACTIONS = 100
MEMO_ROUNDS = 200
SMOKE_MEMO_ROUNDS = 20
RELATION_ROUNDS = 2000
SMOKE_RELATION_ROUNDS = 200
#: Live lock-holding transactions the relation-churn rows run against:
#: every executed operation checks conflicts with each holder's held
#: operation, so the relation lookup dominates instead of vanishing.
RELATION_HOLDERS = 24


def _percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1, int(len(sorted_values) * fraction))
    return sorted_values[index]


def _latency_stats(latencies, elapsed):
    ranked = sorted(latencies)
    return {
        "operations": len(latencies),
        "elapsed_seconds": elapsed,
        "ops_per_second": len(latencies) / elapsed,
        "p50_latency_us": _percentile(ranked, 0.50) * 1e6,
        "p99_latency_us": _percentile(ranked, 0.99) * 1e6,
    }


def long_transaction(machine, length):
    """One transaction appending ``length`` operations; per-op latency."""
    latencies = []
    started = time.perf_counter()
    for _ in range(length):
        before = time.perf_counter()
        machine.execute("T", Invocation("Credit", (1,)))
        latencies.append(time.perf_counter() - before)
    return latencies, time.perf_counter() - started


def sweep_intentions_length(adt, lengths, repeats):
    """Cached vs naive single-transaction sweep over intentions lengths.

    The naive machine replays the whole view per response check, so its
    per-op cost grows with the intentions list; the cached machine does
    one ``spec.step``.  Best-of-``repeats`` per variant.
    """
    rows = []
    for length in lengths:
        best = {}
        for key, view_caching in (("cached", True), ("naive", False)):
            stats = None
            for _ in range(repeats):
                machine = LockMachine(
                    adt.spec, adt.conflict, view_caching=view_caching
                )
                latencies, elapsed = long_transaction(machine, length)
                candidate = _latency_stats(latencies, elapsed)
                if stats is None or candidate["elapsed_seconds"] < stats["elapsed_seconds"]:
                    stats = candidate
            best[key] = stats
        rows.append(
            {
                "length": length,
                "cached": best["cached"],
                "naive": best["naive"],
                "speedup": best["naive"]["elapsed_seconds"]
                / best["cached"]["elapsed_seconds"],
            }
        )
    return rows


def churn(machine, transactions=CHURN_TRANSACTIONS):
    for index in range(transactions):
        name = f"T{index}"
        machine.execute(name, Invocation("Credit", (1,)))
        machine.commit(name, index + 1)


def best_of(build, repeats, transactions=CHURN_TRANSACTIONS):
    best = float("inf")
    for _ in range(repeats):
        machine = build()
        started = time.perf_counter()
        churn(machine, transactions)
        best = min(best, time.perf_counter() - started)
    return best


def commit_churn(adt, repeats):
    """Sequential one-op transactions: the many-small-transactions shape."""
    variants = {
        "plain_cached": lambda: LockMachine(adt.spec, adt.conflict),
        "plain_naive": lambda: LockMachine(
            adt.spec, adt.conflict, view_caching=False
        ),
        "compacting_cached": lambda: CompactingLockMachine(adt.spec, adt.conflict),
        "compacting_naive": lambda: CompactingLockMachine(
            adt.spec, adt.conflict, view_caching=False
        ),
    }
    results = {}
    for name, build in variants.items():
        elapsed = best_of(build, repeats)
        results[name] = {
            "transactions": CHURN_TRANSACTIONS,
            "elapsed_seconds": elapsed,
            "txn_per_second": CHURN_TRANSACTIONS / elapsed,
        }
    return results


def relation_memo(adt, rounds):
    """Pair-grid enumeration: memoised relation vs a cold one per round.

    ``Relation.pairs`` memoises per (instance, universe); building a
    fresh un-memoised relation each round re-pays the |U|² predicate
    grid, which is what the bounded derivations used to do on every
    restriction.
    """
    universe = adt.universe()
    warm_relation = PredicateRelation(adt.conflict.related, name="warm")
    warm_relation.pairs(universe)  # populate the memo before timing
    started = time.perf_counter()
    for _ in range(rounds):
        warm_relation.pairs(universe)
    warm = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(rounds):
        PredicateRelation(
            adt.conflict.related, name="cold", memoize=False
        ).pairs(universe)
    cold = time.perf_counter() - started
    return {
        "universe_size": len(universe),
        "rounds": rounds,
        "warm_enumerations_per_second": rounds / warm,
        "cold_enumerations_per_second": rounds / cold,
        "warm_over_cold": cold / warm,
    }


def _compiled_conflict(adt):
    """The ADT's compiled conflict table (compiled on the fly when the
    factory fell back to the hand-written relation, e.g. a fresh checkout
    before the first ``repro compile``)."""
    conflict = adt.conflict
    if isinstance(conflict, CompiledRelation):
        return conflict
    return compile_relation(conflict, default_universe(adt))


def churn_with_holders(
    machine, holders=RELATION_HOLDERS, transactions=CHURN_TRANSACTIONS
):
    """Commit churn with ``holders`` transactions holding live locks.

    The holders execute one in-universe ``Credit`` each and never finish,
    so every subsequent operation's lock acquisition walks all held
    operations through ``conflict.related`` — the access pattern the
    conflict-relation compiler targets.  Credits commute under the hybrid
    table, so nothing blocks and the loop measures pure relation cost.
    """
    held = Invocation("Credit", (2,))
    for index in range(holders):
        machine.execute(f"H{index}", held)
    for index in range(transactions):
        name = f"T{index}"
        machine.execute(name, held)
        machine.commit(name, index + 1)


def relation_micro(adt, rounds, repeats):
    """Compiled bitset vs predicate ``related()``: call rates and churn.

    ``calls`` times raw ``related()`` over the full compiled-universe
    pair grid: the compiled bitset table, the memoised predicate *warm*
    (the pre-compiler hot-path default), and a bare un-memoised
    predicate (what every cold pair used to pay).  ``churn`` runs the
    holder-heavy commit loop on a plain LOCK machine with the compiled
    table vs the hand-written reference.  Best-of-``repeats`` per
    variant.
    """
    compiled = _compiled_conflict(adt)
    # The memoised variant is the reference relation itself — the exact
    # object the machine's hot path used before the compiler — with its
    # internal per-pair memos warmed.
    memoised = reference_relation(compiled)
    bare = PredicateRelation(memoised.related, name="bare", memoize=False)
    pairs = [(q, p) for q in compiled.universe for p in compiled.universe]
    for q, p in pairs:  # warm every memo before timing
        compiled.related(q, p)
        memoised.related(q, p)
        bare.related(q, p)

    def call_rate(relation):
        best = float("inf")
        related = relation.related
        for _ in range(repeats):
            started = time.perf_counter()
            for _ in range(rounds):
                for q, p in pairs:
                    related(q, p)
            best = min(best, time.perf_counter() - started)
        return rounds * len(pairs) / best

    compiled_rate = call_rate(compiled)
    memoised_rate = call_rate(memoised)
    bare_rate = call_rate(bare)

    churn_rows = {"holders": RELATION_HOLDERS}
    for key, relation in (("compiled", compiled), ("predicate", memoised)):
        best = float("inf")
        for _ in range(max(repeats, 3)):
            machine = LockMachine(adt.spec, relation)
            started = time.perf_counter()
            churn_with_holders(machine)
            best = min(best, time.perf_counter() - started)
        churn_rows[key] = {
            "transactions": CHURN_TRANSACTIONS,
            "elapsed_seconds": best,
            "txn_per_second": CHURN_TRANSACTIONS / best,
        }
    churn_rows["compiled_over_predicate"] = (
        churn_rows["compiled"]["txn_per_second"]
        / churn_rows["predicate"]["txn_per_second"]
    )
    return {
        "universe_size": len(compiled.universe),
        "rounds": rounds,
        "calls": {
            "compiled_calls_per_second": compiled_rate,
            "memoised_warm_calls_per_second": memoised_rate,
            "predicate_calls_per_second": bare_rate,
            "compiled_over_memoised": compiled_rate / memoised_rate,
        },
        "churn": churn_rows,
    }


def certified_churn(adt, transactions=CERTIFIED_TRANSACTIONS):
    """Manager commit churn with the streaming atomicity oracle attached.

    The benchmark numbers are only worth reporting if the run they came
    from is hybrid atomic — the checker certifies it online and its
    verdict is embedded in the artifact.
    """
    bus = TraceBus()
    checker = bus.subscribe(AtomicityChecker(emit_to=bus))
    manager = TransactionManager(tracer=bus)
    manager.create_object("A", adt)
    started = time.perf_counter()
    for _ in range(transactions):
        txn = manager.begin()
        manager.invoke(txn, "A", "Credit", 1)
        manager.commit(txn)
    elapsed = time.perf_counter() - started
    report = checker.report()
    if not report["ok"]:
        raise AssertionError(checker.render_report())
    return {
        "transactions": transactions,
        "elapsed_seconds": elapsed,
        "txn_per_second": transactions / elapsed,
        "certification": {
            "verdict": report["verdict"],
            "ok": report["ok"],
            "events": report["events"],
            "transactions": report["transactions"],
            "violations": report["violations"],
        },
    }


def machine_micro_grid(adt, repeats):
    """The ``bench_machine_micro`` grid: machine × protocol churn rates."""
    results = {}
    for label, build in (
        ("plain machine", lambda c: LockMachine(adt.spec, c)),
        ("compacting machine", lambda c: CompactingLockMachine(adt.spec, c)),
    ):
        for protocol in ALL_PROTOCOLS:
            conflict = protocol.conflict_for(adt)
            elapsed = min(
                _timed_churn(build, conflict) for _ in range(repeats)
            )
            results[f"{label}/{protocol.name}"] = {
                "elapsed_seconds": elapsed,
                "txn_per_second": CHURN_TRANSACTIONS / elapsed,
            }
    return results


def _timed_churn(build, conflict):
    machine = build(conflict)
    started = time.perf_counter()
    churn(machine)
    return time.perf_counter() - started


def run_benchmarks(smoke=False, output_dir=REPO_ROOT):
    adt = make_account_adt()
    lengths = SMOKE_SWEEP_LENGTHS if smoke else SWEEP_LENGTHS
    repeats = 1 if smoke else 3
    memo_rounds = SMOKE_MEMO_ROUNDS if smoke else MEMO_ROUNDS
    relation_rounds = SMOKE_RELATION_ROUNDS if smoke else RELATION_ROUNDS

    # Warm up bytecode caches before any timing.
    churn(LockMachine(adt.spec, adt.conflict), 30)

    hot_path = {
        "schema_version": SCHEMA_VERSION,
        "smoke": smoke,
        "adt": adt.name,
        "sweep": sweep_intentions_length(adt, lengths, repeats),
        "commit_churn": commit_churn(adt, repeats),
        "relation_memo": relation_memo(adt, memo_rounds),
        "certified_churn": certified_churn(adt),
    }
    machine_micro = {
        "schema_version": SCHEMA_VERSION,
        "smoke": smoke,
        "transactions": CHURN_TRANSACTIONS,
        "results": machine_micro_grid(adt, repeats),
        "relation_micro": relation_micro(adt, relation_rounds, repeats),
    }

    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    artifacts = {
        "BENCH_hot_path.json": hot_path,
        "BENCH_machine_micro.json": machine_micro,
    }
    for name, data in artifacts.items():
        (output_dir / name).write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )
    return hot_path, machine_micro


def render_summary(hot_path, machine_micro=None):
    lines = ["hot path: cached vs naive single-transaction sweep"]
    for row in hot_path["sweep"]:
        lines.append(
            f"  n={row['length']:>4}: cached {row['cached']['ops_per_second']:>10,.0f} op/s"
            f" (p99 {row['cached']['p99_latency_us']:>8,.1f}us) | naive"
            f" {row['naive']['ops_per_second']:>10,.0f} op/s"
            f" (p99 {row['naive']['p99_latency_us']:>8,.1f}us) |"
            f" {row['speedup']:>6.1f}x"
        )
    chn = hot_path["commit_churn"]
    lines.append(
        "commit churn: "
        + ", ".join(
            f"{name} {entry['txn_per_second']:,.0f} txn/s"
            for name, entry in sorted(chn.items())
        )
    )
    memo = hot_path["relation_memo"]
    lines.append(
        f"relation memo: warm {memo['warm_enumerations_per_second']:,.0f}"
        f" vs cold {memo['cold_enumerations_per_second']:,.0f} enum/s"
        f" ({memo['warm_over_cold']:.0f}x)"
    )
    cert = hot_path["certified_churn"]
    lines.append(
        f"certified churn: {cert['txn_per_second']:,.0f} txn/s, verdict"
        f" {cert['certification']['verdict']!r}"
    )
    if machine_micro and "relation_micro" in machine_micro:
        micro = machine_micro["relation_micro"]
        calls = micro["calls"]
        lines.append(
            f"relation calls: compiled {calls['compiled_calls_per_second']:,.0f}"
            f" vs warm memo {calls['memoised_warm_calls_per_second']:,.0f}"
            f" vs bare {calls['predicate_calls_per_second']:,.0f} calls/s"
            f" (compiled/memo {calls['compiled_over_memoised']:.2f}x)"
        )
        churn_rows = micro["churn"]
        lines.append(
            f"relation churn ({churn_rows['holders']} holders): compiled"
            f" {churn_rows['compiled']['txn_per_second']:,.0f} vs predicate"
            f" {churn_rows['predicate']['txn_per_second']:,.0f} txn/s"
            f" ({churn_rows['compiled_over_predicate']:.2f}x)"
        )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink sweep lengths and repeats for CI smoke runs",
    )
    parser.add_argument(
        "--output-dir",
        default=str(REPO_ROOT),
        help="directory for BENCH_*.json artifacts (default: repo root)",
    )
    args = parser.parse_args(argv)
    hot_path, machine_micro = run_benchmarks(
        smoke=args.smoke, output_dir=args.output_dir
    )
    from bench_schema import validate_artifact

    validate_artifact("BENCH_hot_path.json", hot_path)
    validate_artifact("BENCH_machine_micro.json", machine_micro)
    print(render_summary(hot_path, machine_micro))
    return 0


def test_hot_path_smoke(tmp_path, save_artifact):
    """Smoke-sized run under pytest: artifacts validate, oracle certifies,
    and the cache clears a conservative speedup floor at length 200."""
    from bench_schema import validate_artifact

    hot_path, machine_micro = run_benchmarks(smoke=True, output_dir=tmp_path)
    validate_artifact("BENCH_hot_path.json", hot_path)
    validate_artifact("BENCH_machine_micro.json", machine_micro)
    longest = max(hot_path["sweep"], key=lambda row: row["length"])
    assert longest["length"] >= 200
    assert longest["speedup"] >= 2.0
    assert hot_path["certified_churn"]["certification"]["ok"]
    micro = machine_micro["relation_micro"]
    assert micro["calls"]["compiled_over_memoised"] >= 1.0
    save_artifact(
        "hot_path_smoke",
        render_summary(hot_path, machine_micro),
        data=hot_path,
    )


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    sys.exit(main())
