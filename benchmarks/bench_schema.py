"""Hand-rolled schema validation for the BENCH_*.json artifacts.

CI's perf-smoke job regenerates the artifacts and validates them here
before uploading; the committed copies at the repository root are checked
by the same code.  Deliberately dependency-free (no ``jsonschema``): a
schema is a nested dict of ``key -> checker`` where a checker is a type,
a tuple of types, a nested schema dict, or a callable returning an error
string (or None).  Extra keys are rejected so stale fields can't linger
unnoticed.

Run directly::

    python benchmarks/bench_schema.py BENCH_hot_path.json [BENCH_machine_micro.json ...]
"""

import json
import sys
from pathlib import Path

NUMBER = (int, float)


def positive(value):
    if not isinstance(value, NUMBER) or isinstance(value, bool) or value <= 0:
        return f"expected a positive number, got {value!r}"
    return None


def non_negative_int(value):
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        return f"expected a non-negative integer, got {value!r}"
    return None


def non_negative_or_null(value):
    """A median phase latency: >= 0, or null when no span carried it."""
    if value is None:
        return None
    if not isinstance(value, NUMBER) or isinstance(value, bool) or value < 0:
        return f"expected a non-negative number or null, got {value!r}"
    return None


def string_or_null(value):
    if value is None or isinstance(value, str):
        return None
    return f"expected a string or null, got {value!r}"


def non_negative(value):
    if not isinstance(value, NUMBER) or isinstance(value, bool) or value < 0:
        return f"expected a non-negative number, got {value!r}"
    return None


def fraction(value):
    if (
        not isinstance(value, NUMBER)
        or isinstance(value, bool)
        or not 0.0 <= value <= 1.0
    ):
        return f"expected a fraction in [0, 1], got {value!r}"
    return None


LATENCY_STATS = {
    "operations": non_negative_int,
    "elapsed_seconds": positive,
    "ops_per_second": positive,
    "p50_latency_us": positive,
    "p99_latency_us": positive,
}

CHURN_STATS = {
    "transactions": non_negative_int,
    "elapsed_seconds": positive,
    "txn_per_second": positive,
}

SWEEP_ROW = {
    "length": non_negative_int,
    "cached": LATENCY_STATS,
    "naive": LATENCY_STATS,
    "speedup": positive,
}

#: The atomicity checker's embedded verdict (shared by every benchmark
#: that certifies the run its numbers came from).
CERTIFICATION = {
    "verdict": str,
    "ok": bool,
    "events": non_negative_int,
    "transactions": {
        "total": non_negative_int,
        "committed": non_negative_int,
        "aborted": non_negative_int,
        "active": non_negative_int,
    },
    "violations": list,
}

HOT_PATH_SCHEMA = {
    "schema_version": non_negative_int,
    "smoke": bool,
    "adt": str,
    "sweep": [SWEEP_ROW],
    "commit_churn": {
        "plain_cached": CHURN_STATS,
        "plain_naive": CHURN_STATS,
        "compacting_cached": CHURN_STATS,
        "compacting_naive": CHURN_STATS,
    },
    "relation_memo": {
        "universe_size": non_negative_int,
        "rounds": non_negative_int,
        "warm_enumerations_per_second": positive,
        "cold_enumerations_per_second": positive,
        "warm_over_cold": positive,
    },
    "certified_churn": {
        "transactions": non_negative_int,
        "elapsed_seconds": positive,
        "txn_per_second": positive,
        "certification": CERTIFICATION,
    },
}

SERVE_TXN_STATS = {
    "transactions": non_negative_int,
    "elapsed_seconds": positive,
    "txn_per_second": positive,
    "p50_latency_ms": positive,
    "p99_latency_ms": positive,
}

SERVE_CLOSED_ROW = {
    "clients": positive,
    "committed": non_negative_int,
    # error-code -> count; the code set is the protocol's, not the schema's.
    "errors": dict,
    "stats": SERVE_TXN_STATS,
}

SERVE_OPEN_ROW = {
    "offered_txn_per_second": positive,
    "pool": positive,
    "offered": non_negative_int,
    "committed": non_negative_int,
    "errors": dict,
    "stats": SERVE_TXN_STATS,
}

SERVE_SCHEMA = {
    "schema_version": non_negative_int,
    "smoke": bool,
    "adt": str,
    "config": {
        "workers": positive,
        "queue_limit": positive,
        "objects": positive,
        "ops_per_txn": positive,
        "duration_seconds": positive,
    },
    "max_concurrent_clients": positive,
    "closed_loop": [SERVE_CLOSED_ROW],
    "open_loop": [SERVE_OPEN_ROW],
    "server": {
        "connections": non_negative_int,
        "requests": non_negative_int,
        "busy": non_negative_int,
        "errors": non_negative_int,
        "transactions_committed": non_negative_int,
        "transactions_aborted": non_negative_int,
    },
    "drain": {
        "sessions": non_negative_int,
        "finished": non_negative_int,
        "aborted": non_negative_int,
    },
    # End-to-end span breakdown from the replayed trace: where a
    # committed transaction's wall time went, by wire phase.
    "span_breakdown": {
        "committed_spans": non_negative_int,
        "with_trace": non_negative_int,
        "median_phase_ms": {
            "client": non_negative_or_null,
            "queue": non_negative_or_null,
            "execute": non_negative_or_null,
            "respond": non_negative_or_null,
        },
    },
    # Critical-path attribution over the committed spans (milliseconds):
    # which phase gated each transaction, the per-phase p50/p99 budget,
    # and the coz-lite what-if estimates.
    "critical_path": {
        "spans": non_negative_int,
        "attributed": non_negative_int,
        "attributed_fraction": fraction,
        # phase -> gated-span count; the phase key set is the profiler's.
        "gating": dict,
        # phase -> {p50, p99, total}; checked structurally below.
        "phase_budget": dict,
        "total": {"p50": non_negative, "p99": non_negative},
        # phase -> {p99_without, p99_drop}; checked structurally below.
        "what_if": dict,
    },
    # Blocked time attributed to (object, op-pair, relation) triples —
    # the conflict-relation compiler's target list.
    "contention": {
        "events": non_negative_int,
        "blocked_time": non_negative,
        "pairs": non_negative_int,
        "rows": list,
    },
    # Flight-recorder status at the end of the run (the drain trigger
    # guarantees at least one dump).
    "flight": {
        "dumps": non_negative_int,
        "last_reason": string_or_null,
        "last_path": string_or_null,
        "retained": non_negative_int,
        "seen": non_negative_int,
        "dropped_events": non_negative_int,
        "profile_snapshots": non_negative_int,
    },
    "certification": CERTIFICATION,
}

#: Compiled-relation micro-benchmark: raw ``related()`` call rates for
#: the bitset table vs the memoised predicate (warm) vs a bare
#: un-memoised predicate, plus holder-heavy commit churn compiled vs the
#: hand-written reference relation.
RELATION_MICRO = {
    "universe_size": non_negative_int,
    "rounds": non_negative_int,
    "calls": {
        "compiled_calls_per_second": positive,
        "memoised_warm_calls_per_second": positive,
        "predicate_calls_per_second": positive,
        "compiled_over_memoised": positive,
    },
    "churn": {
        "holders": non_negative_int,
        "compiled": CHURN_STATS,
        "predicate": CHURN_STATS,
        "compiled_over_predicate": positive,
    },
}

MACHINE_MICRO_SCHEMA = {
    "schema_version": non_negative_int,
    "smoke": bool,
    "transactions": non_negative_int,
    # "results" is checked structurally below: the machine/protocol key
    # set depends on the registered protocols, not the schema.
    "results": dict,
    "relation_micro": RELATION_MICRO,
}

#: One shard-pool measurement row: a worker/durability configuration
#: driven at a fixed pipe-batch submission depth, with the fsync count
#: taken from the shard WALs' own counters.
SHARD_ROW = {
    "workers": positive,
    "durability": str,
    "batch_depth": positive,
    "transactions": non_negative_int,
    "elapsed_seconds": positive,
    "txn_per_second": positive,
    "fsyncs": non_negative_int,
    "fsyncs_per_txn": non_negative,
}

SHARD_SCHEMA = {
    "schema_version": non_negative_int,
    "smoke": bool,
    "adt": str,
    "config": {
        "ops_per_txn": positive,
        "txns_per_worker": positive,
        "batch_depth": positive,
    },
    # One worker, one durable write per WAL append: the honest
    # denominator for the headline speedup.
    "baseline": SHARD_ROW,
    # Group-commit worker sweep at the same submission depth.
    "scaling": [SHARD_ROW],
    "speedup_vs_baseline": positive,
    # fsync amortisation as the submission depth grows (1 worker).
    "depth_sweep": [SHARD_ROW],
    "cross_shard": {
        "workers": positive,
        "transactions": non_negative_int,
        "elapsed_seconds": positive,
        "txn_per_second": positive,
    },
    "certification": CERTIFICATION,
}

ARTIFACT_SCHEMAS = {
    "BENCH_hot_path.json": HOT_PATH_SCHEMA,
    "BENCH_machine_micro.json": MACHINE_MICRO_SCHEMA,
    "BENCH_serve.json": SERVE_SCHEMA,
    "BENCH_shard.json": SHARD_SCHEMA,
}


def _check(checker, value, path, errors):
    if isinstance(checker, dict):
        if not isinstance(value, dict):
            errors.append(f"{path}: expected an object, got {type(value).__name__}")
            return
        for key in checker:
            if key not in value:
                errors.append(f"{path}.{key}: missing")
        for key in value:
            if key not in checker:
                errors.append(f"{path}.{key}: unexpected key")
        for key, sub in checker.items():
            if key in value:
                _check(sub, value[key], f"{path}.{key}", errors)
    elif isinstance(checker, list):
        if not isinstance(value, list) or not value:
            errors.append(f"{path}: expected a non-empty array")
            return
        for index, item in enumerate(value):
            _check(checker[0], item, f"{path}[{index}]", errors)
    elif isinstance(checker, (type, tuple)):
        if checker is bool:
            ok = isinstance(value, bool)
        else:
            ok = isinstance(value, checker) and not isinstance(value, bool)
        if not ok:
            errors.append(
                f"{path}: expected {checker!r}, got {type(value).__name__}"
            )
    else:  # callable checker
        message = checker(value)
        if message:
            errors.append(f"{path}: {message}")


def validate_artifact(name, data):
    """Validate one artifact dict against its schema; raises ValueError."""
    schema = ARTIFACT_SCHEMAS.get(name)
    if schema is None:
        raise ValueError(f"no schema registered for {name!r}")
    errors = []
    _check(schema, data, name, errors)
    if name == "BENCH_machine_micro.json" and isinstance(data.get("results"), dict):
        if not data["results"]:
            errors.append(f"{name}.results: must not be empty")
        for key, row in data["results"].items():
            _check(
                {"elapsed_seconds": positive, "txn_per_second": positive},
                row,
                f"{name}.results[{key}]",
                errors,
            )
        # The compiler's acceptance floor: the compiled bitset table must
        # not be slower than the warm memoised predicate it replaced.
        micro = data.get("relation_micro")
        if isinstance(micro, dict):
            ratio = micro.get("calls", {}).get("compiled_over_memoised")
            if isinstance(ratio, NUMBER) and ratio < 1.0:
                errors.append(
                    f"{name}.relation_micro.calls.compiled_over_memoised: "
                    f"compiled related() is slower than the warm memoised "
                    f"predicate ({ratio:.3f}x, floor 1.0)"
                )
    if name == "BENCH_serve.json" and not errors:
        # Structural floors the type checks can't express: the sweep must
        # reach 64 concurrent connections, commit work there, and carry a
        # passing certification (numbers from an uncertified run are
        # worthless).
        floor = data["max_concurrent_clients"]
        if floor < 64:
            errors.append(
                f"{name}.max_concurrent_clients: sweep must reach 64 "
                f"concurrent clients, got {floor}"
            )
        top = next(
            (row for row in data["closed_loop"] if row["clients"] == floor),
            None,
        )
        if top is None:
            errors.append(
                f"{name}.closed_loop: no row at {floor} clients"
            )
        elif top["committed"] <= 0:
            errors.append(
                f"{name}.closed_loop: nothing committed at {floor} clients"
            )
        if data["certification"]["ok"] is not True:
            errors.append(f"{name}.certification.ok: served run must certify")
        breakdown = data["span_breakdown"]
        if breakdown["committed_spans"] <= 0:
            errors.append(
                f"{name}.span_breakdown: no committed spans in the trace"
            )
        elif breakdown["with_trace"] <= 0:
            errors.append(
                f"{name}.span_breakdown: no span carried a client trace id "
                "(wire trace propagation broken)"
            )
        if data["flight"]["dumps"] < 1:
            errors.append(
                f"{name}.flight: the drain trigger must leave at least "
                "one flight dump"
            )
        critical = data["critical_path"]
        for phase, row in critical["phase_budget"].items():
            _check(
                {"p50": non_negative, "p99": non_negative, "total": non_negative},
                row,
                f"{name}.critical_path.phase_budget[{phase}]",
                errors,
            )
        for phase, row in critical["what_if"].items():
            _check(
                {"p99_without": non_negative, "p99_drop": non_negative},
                row,
                f"{name}.critical_path.what_if[{phase}]",
                errors,
            )
        # The profiler must explain the run: ≥95% of committed spans get
        # a gating phase, and the hot-object debit mix must have fed the
        # contention profiler at least one blocked interval.
        if breakdown["committed_spans"] > 0:
            if critical["attributed_fraction"] < 0.95:
                errors.append(
                    f"{name}.critical_path: only "
                    f"{critical['attributed_fraction']:.1%} of spans got a "
                    "gating phase (floor: 95%)"
                )
            if data["contention"]["events"] < 1:
                errors.append(
                    f"{name}.contention: no blocked events attributed — "
                    "the hot-object debit mix should conflict"
                )
    if name == "BENCH_shard.json" and not errors:
        # The sharding tentpole's acceptance floors: the merged sharded
        # run must certify, group commit at the top worker count must
        # beat the durable-per-append baseline (>= 2.5x in a full run;
        # smoke gets headroom for noisy shared runners), and fsyncs/txn
        # must amortise below one at submission depth >= 4.
        if data["certification"]["ok"] is not True:
            errors.append(f"{name}.certification.ok: sharded run must certify")
        floor = 1.5 if data["smoke"] else 2.5
        speedup = data["speedup_vs_baseline"]
        if isinstance(speedup, NUMBER) and speedup < floor:
            errors.append(
                f"{name}.speedup_vs_baseline: group commit is only "
                f"{speedup:.2f}x the per-append baseline (floor {floor}x)"
            )
        amortised = [
            row["fsyncs_per_txn"]
            for row in data["depth_sweep"]
            if isinstance(row.get("batch_depth"), NUMBER)
            and row["batch_depth"] >= 4
            and isinstance(row.get("fsyncs_per_txn"), NUMBER)
        ]
        if not amortised or min(amortised) >= 1.0:
            errors.append(
                f"{name}.depth_sweep: fsyncs/txn never dropped below 1.0 "
                "at submission depth >= 4 (group commit not amortising)"
            )
    if errors:
        raise ValueError("\n".join(errors))


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for argument in argv:
        path = Path(argument)
        try:
            validate_artifact(path.name, json.loads(path.read_text()))
        except (OSError, ValueError) as failure:
            print(f"FAIL {path}: {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"ok {path}")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
