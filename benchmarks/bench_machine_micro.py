"""Meta-benchmark M-M — raw machine throughput (library performance).

Microbenchmarks of the implementation itself (not the paper's claims):
operations per second through ``LockMachine.execute`` under each
protocol's conflict relation, with and without Section 6 compaction.

Expected shape: the compacting machine is *faster* on commit-heavy
streams — the plain machine replays an ever-growing committed prefix to
build each view, while the compacting machine replays a folded version —
and the conflict relation choice costs little (conflict checks scan only
active intentions).
"""

import time

from repro.adts import make_account_adt
from repro.core import CompactingLockMachine, Invocation, LockMachine
from repro.protocols import ALL_PROTOCOLS, HYBRID


def churn(machine, transactions=150):
    """`transactions` sequential one-credit transactions."""
    for index in range(transactions):
        name = f"T{index}"
        machine.execute(name, Invocation("Credit", (1,)))
        machine.commit(name, index + 1)


def test_machine_micro(benchmark, save_artifact):
    adt = make_account_adt()

    benchmark(
        lambda: churn(CompactingLockMachine(adt.spec, adt.conflict))
    )

    rows = []
    timings = {}
    for label, build in (
        ("plain machine", lambda c: LockMachine(adt.spec, c)),
        ("compacting machine", lambda c: CompactingLockMachine(adt.spec, c)),
    ):
        for protocol in ALL_PROTOCOLS:
            conflict = protocol.conflict_for(adt)
            machine = build(conflict)
            started = time.perf_counter()
            churn(machine)
            elapsed = time.perf_counter() - started
            timings[(label, protocol.name)] = elapsed
            rows.append(
                f"{label:>20} | {protocol.name:>14} | "
                f"{150 / elapsed:>10.0f} txn/s"
            )

    # Compaction pays for itself on commit churn under every protocol.
    for protocol in ALL_PROTOCOLS:
        assert (
            timings[("compacting machine", protocol.name)]
            < timings[("plain machine", protocol.name)]
        ), protocol.name

    save_artifact(
        "machine_micro",
        "M-M: sequential commit churn, 150 one-op transactions (Account)\n\n"
        + "\n".join(rows)
        + "\n\nthe plain machine replays a linearly growing committed prefix"
        "\nper view; the compacting machine replays a folded version.",
        data={
            f"{label}/{protocol}": {
                "elapsed_seconds": elapsed,
                "txn_per_second": 150 / elapsed,
            }
            for (label, protocol), elapsed in timings.items()
        },
    )
