"""Experiment H3-2 — the Section 3.2/3.4 worked queue history.

Replays the paper's example through the LOCK machine (commutativity-based
protocols reject it — concurrent enqueues), checks all three atomicity
levels and online hybrid atomicity of every prefix, and benchmarks the
full replay + verification pipeline.
"""

import pytest

from repro.adts import (
    QUEUE_COMMUTATIVITY_CONFLICT,
    QUEUE_CONFLICT_FIG42,
    FifoQueueSpec,
)
from repro.core import (
    Invocation,
    LockConflict,
    LockMachine,
    is_atomic,
    is_hybrid_atomic,
    is_online_hybrid_atomic,
)

SPEC = FifoQueueSpec()


def replay():
    machine = LockMachine(SPEC, QUEUE_CONFLICT_FIG42)
    machine.execute("P", Invocation("Enq", (1,)))
    machine.execute("Q", Invocation("Enq", (2,)))
    machine.execute("P", Invocation("Enq", (3,)))
    machine.commit("P", 2)
    machine.commit("Q", 1)
    assert machine.execute("R", Invocation("Deq")) == 2
    assert machine.execute("R", Invocation("Deq")) == 1
    machine.commit("R", 5)
    return machine.history()


def test_paper_history_replay(benchmark, save_artifact):
    history = benchmark(replay)
    specs = {"X": SPEC}
    assert is_atomic(history, specs)
    assert is_hybrid_atomic(history, specs)
    for prefix in history.prefixes():
        assert is_online_hybrid_atomic(prefix, specs)

    # A commutativity-based protocol cannot accept this history: the
    # concurrent enqueues conflict.
    machine = LockMachine(SPEC, QUEUE_COMMUTATIVITY_CONFLICT)
    machine.execute("P", Invocation("Enq", (1,)))
    with pytest.raises(LockConflict):
        machine.execute("Q", Invocation("Enq", (2,)))

    save_artifact(
        "paper_history",
        "Section 3.2 history accepted by the hybrid protocol "
        "(serialization order Q-P-R by timestamps):\n"
        + "\n".join(str(e) for e in history.events)
        + "\n\natomic: True\nhybrid atomic: True\n"
        "every prefix online hybrid atomic: True\n"
        "accepted by commutativity-based locking: False "
        "(concurrent Enqs conflict)",
    )
