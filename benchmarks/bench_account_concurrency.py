"""Experiment C-A — banking mix: Figure 4-5 vs Figure 7-1 at run time.

Sweeps the interest-posting share of a banking workload on one hot
account.  Under hybrid locking Post conflicts only with overdrafts
(rare), so throughput barely moves; under commutativity locking Post
conflicts with everything except Post, so throughput degrades as the
posting share grows.
"""

from conftest import breakdown_data, metrics_table, run_observed

from repro.protocols import ALL_PROTOCOLS, COMMUTATIVITY, HYBRID
from repro.sim import AccountWorkload, compare_protocols, run_experiment

DURATION = 300.0
SEED = 11


def make_workload(post_p):
    return AccountWorkload(
        clients=6,
        accounts=1,
        ops_per_transaction=3,
        credit_p=(1 - post_p) * 0.6,
        post_p=post_p,
        max_amount=20,
    )


def sweep():
    lines = []
    results_by_share = {}
    for post_p in (0.0, 0.2, 0.4):
        results = compare_protocols(
            lambda: make_workload(post_p),
            ALL_PROTOCOLS,
            duration=DURATION,
            seed=SEED,
        )
        lines.append(f"\nPost share = {post_p:.1f}")
        lines.append(metrics_table(results))
        results_by_share[post_p] = results
    return lines, results_by_share


def test_account_concurrency(benchmark, save_artifact):
    benchmark(
        lambda: run_experiment(
            make_workload(0.2), HYBRID, duration=DURATION, seed=SEED
        )
    )
    lines, results = sweep()

    for post_p, row in results.items():
        assert row["hybrid"].throughput >= row["commutativity"].throughput
        assert row["hybrid"].conflicts <= row["commutativity"].conflicts
        assert row["hybrid"].throughput >= row["rw-2pl"].throughput
    # Without posts the two type-specific tables coincide on this mix.
    no_posts = results[0.0]
    assert (
        no_posts["hybrid"].throughput == no_posts["commutativity"].throughput
    )
    # With posts the gap opens, and grows with the posting share.
    assert (
        results[0.4]["hybrid"].throughput
        > 3 * results[0.4]["commutativity"].throughput
    )
    assert (
        results[0.2]["commutativity"].throughput
        > results[0.4]["commutativity"].throughput
    )
    # Commutativity can even fall below untyped rw-2pl here: partial lock
    # acquisition (concurrent credits) plus posts waiting on all of them
    # thrashes, while rw-2pl serialises cleanly — locking less is not
    # always winning unless, like Fig 4-5, the conflicts are rare.
    assert (
        results[0.4]["rw-2pl"].throughput
        > results[0.4]["commutativity"].throughput
    )

    # Event-level view at the hottest mix: hybrid's refusals should name
    # only the rare Debit/overdraft pairs, never Post × Credit.
    observed = {
        protocol.name: run_observed(
            make_workload(0.4), protocol, duration=DURATION, seed=SEED
        )
        for protocol in (HYBRID, COMMUTATIVITY)
    }
    hybrid_pairs = observed["hybrid"][1].conflict_breakdown()
    assert not any(
        "Post" in pair and "Credit" in pair for pair in hybrid_pairs
    ), hybrid_pairs
    assert any(
        "Post" in pair for pair in observed["commutativity"][1].conflict_breakdown()
    )

    data = breakdown_data(observed)
    data["sweep"] = {
        str(post_p): {name: m.as_row() for name, m in row.items()}
        for post_p, row in results.items()
    }
    save_artifact(
        "account_concurrency",
        "C-A: banking mix on one hot account (duration=300, seed=11)\n"
        + "\n".join(lines),
        data=data,
    )
