"""Extension experiment X-R — durability under fail-stop site crashes.

The LOCK machine's intentions lists double as a redo log (§5.1: "the
intentions list is kept in stable storage"), and the §6 horizon bounds
how much of that log a version snapshot lets recovery skip.  This
benchmark runs the multi-site bank while a seeded crash plan fail-stops
sites with total volatile loss; each victim is rebuilt from its
checkpoint (when enabled) plus write-ahead-log replay.

Reproduction checks: every crashed site recovers within the run and its
recovered committed state-set matches the pre-crash snapshot (asserted
inside the event loop by ``CrashPlan.install(verify=True)``); the global
history recorded across crashes stays hybrid atomic and keeps satisfying
the §3.3 timestamp constraint.  Expected shape: replayed records drop
sharply once periodic horizon checkpoints truncate the logs, and
throughput degrades gracefully as the crash rate rises.
"""

from conftest import certification_data

from repro.core import is_hybrid_atomic, timestamps_respect_precedes
from repro.distributed import run_distributed_experiment

DURATION = 300.0
SEED = 7
CRASH_SEED = 3


def crashy_run(rate, checkpoint_every=0.0, record=False, tracer=None):
    return run_distributed_experiment(
        site_count=3,
        clients=5,
        duration=DURATION,
        seed=SEED,
        crash_rate=rate,
        crash_seed=CRASH_SEED,
        checkpoint_every=checkpoint_every,
        record=record,
        tracer=tracer,
    )


def certified_crashy_run(rate, checkpoint_every=0.0, record=False):
    """One crashy run with the streaming oracle attached (fresh checker
    per run — transaction names repeat across configurations)."""
    from repro.obs import AtomicityChecker, TraceBus

    bus = TraceBus()
    checker = bus.subscribe(AtomicityChecker(emit_to=bus))
    run = crashy_run(rate, checkpoint_every, record=record, tracer=bus)
    report = checker.report()
    assert report["ok"], checker.render_report()
    return run, report


def test_recovery(benchmark, save_artifact):
    benchmark(lambda: crashy_run(0.02))

    header = (
        f"{'crash rate':>10} {'ckpt every':>10} {'crashes':>8} "
        f"{'recovered':>9} {'replayed':>9} {'recovery s':>10} "
        f"{'committed':>10} {'aborted':>8}"
    )
    lines = [header]
    replayed_by_config = {}
    certifications = {}
    for rate in (0.01, 0.02, 0.04):
        for checkpoint_every in (0.0, 25.0):
            run, cert = certified_crashy_run(rate, checkpoint_every, record=True)
            certifications[f"rate={rate} ckpt={checkpoint_every}"] = (
                certification_data(cert)
            )
            m = run.metrics

            # Every planned crash recovered, in-run, via replay.
            assert m.crashes > 0
            assert m.recoveries == m.crashes
            assert len(run.recovery_reports) == m.recoveries
            assert all(r.recovered_objects for r in run.recovery_reports)
            if checkpoint_every > 0:
                assert any(r.from_checkpoint for r in run.recovery_reports)

            # The post-crash global history is still hybrid atomic.
            history = run.history()
            assert is_hybrid_atomic(history, run.specs())
            assert timestamps_respect_precedes(history)

            replayed_by_config[(rate, checkpoint_every)] = m.replayed_records
            lines.append(
                f"{rate:>10.2f} {checkpoint_every or '-':>10} "
                f"{m.crashes:>8} {m.recoveries:>9} "
                f"{m.replayed_records:>9} {m.recovery_time:>10.3f} "
                f"{m.committed:>10} {m.aborted:>8}"
            )

    # Checkpoints truncate the log: replay shrinks at every crash rate.
    for rate in (0.01, 0.02, 0.04):
        assert replayed_by_config[(rate, 25.0)] < replayed_by_config[(rate, 0.0)]

    save_artifact(
        "recovery",
        "X-R: fail-stop crashes + checkpoint/WAL-replay recovery, 3 sites, "
        f"5 clients (duration={DURATION}, seed={SEED}, "
        f"crash_seed={CRASH_SEED})\n\n" + "\n".join(lines) + "\n\n"
        "every victim recovered in-run; recovered committed state-sets "
        "verified against pre-crash snapshots; post-crash histories hybrid "
        "atomic: True; every run certified by the streaming oracle",
        data={
            "replayed_records": {
                f"rate={rate} ckpt={ckpt}": count
                for (rate, ckpt), count in sorted(replayed_by_config.items())
            },
            "certifications": certifications,
        },
    )
