"""Experiment C-S — non-determinism as a source of concurrency.

Runs the same producer/consumer shape on the FIFO Queue (deterministic,
Fig 4-2 conflicts) and on the SemiQueue (non-deterministic removal,
Fig 4-4 conflicts).  Expected shape: the SemiQueue out-performs the queue
for consumers (removals of distinct items do not conflict and are free of
enqueue locks), and on the SemiQueue hybrid and commutativity locking
tie — the concurrency there comes from the weaker specification, exactly
the paper's point.
"""

from conftest import metrics_table

from repro.protocols import COMMUTATIVITY, HYBRID
from repro.sim import (
    QueueWorkload,
    SemiQueueWorkload,
    compare_protocols,
    run_experiment,
)

DURATION = 300.0
SEED = 5


def test_semiqueue_concurrency(benchmark, save_artifact):
    benchmark(
        lambda: run_experiment(
            SemiQueueWorkload(producers=3, consumers=3),
            HYBRID,
            duration=DURATION,
            seed=SEED,
        )
    )

    semi = compare_protocols(
        lambda: SemiQueueWorkload(producers=3, consumers=3),
        [HYBRID, COMMUTATIVITY],
        duration=DURATION,
        seed=SEED,
    )
    fifo = compare_protocols(
        lambda: QueueWorkload(producers=3, consumers=3),
        [HYBRID, COMMUTATIVITY],
        duration=DURATION,
        seed=SEED,
    )

    # Non-determinism beats determinism under either protocol.
    assert semi["hybrid"].throughput > fifo["hybrid"].throughput
    assert semi["commutativity"].throughput > fifo["commutativity"].throughput
    # On the SemiQueue the two protocols coincide (identical tables).
    assert semi["hybrid"].as_row() == semi["commutativity"].as_row()

    save_artifact(
        "semiqueue_concurrency",
        "C-S: SemiQueue vs FIFO Queue, 3 producers + 3 consumers "
        "(duration=300, seed=5)\n"
        "\nSemiQueue:\n" + metrics_table(semi)
        + "\n\nFIFO Queue (Fig 4-2 conflicts):\n" + metrics_table(fifo),
    )
