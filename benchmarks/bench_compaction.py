"""Experiment C-C — Section 6 compaction: bounded state under churn.

Feeds a long committed-transaction churn through the plain LOCK machine
and the compacting machine.  Expected shape: the plain machine's retained
intentions grow linearly without bound; the compacting machine's stay
O(active transactions).  A second scenario uses skewed (out-of-commit-
order) timestamps, which delay the horizon but never unbounded-ly.
"""

from repro.adts import ACCOUNT_CONFLICT, AccountSpec
from repro.analysis import render_grid
from repro.core import (
    CompactingLockMachine,
    Invocation,
    LockMachine,
    SkewedTimestampGenerator,
)


def churn(machine, transactions, stamp_of):
    """`transactions` sequential credit transactions; returns size samples."""
    samples = []
    for index in range(transactions):
        name = f"T{index}"
        machine.execute(name, Invocation("Credit", (1,)))
        machine.commit(name, stamp_of(index))
        if (index + 1) % 50 == 0:
            retained = sum(
                len(machine.intentions(t))
                for t in (f"T{i}" for i in range(index + 1))
            )
            samples.append((index + 1, retained))
    return samples


def test_compaction_bounds_state(benchmark, save_artifact):
    spec = AccountSpec()

    def run_compacting():
        machine = CompactingLockMachine(spec, ACCOUNT_CONFLICT)
        return churn(machine, 200, lambda i: i + 1)

    compacting_samples = benchmark(run_compacting)

    plain = LockMachine(spec, ACCOUNT_CONFLICT)
    plain_samples = churn(plain, 200, lambda i: i + 1)

    # Plain grows linearly; compacting stays at zero retained intentions.
    assert plain_samples[-1][1] == 200
    assert all(size == 0 for _, size in compacting_samples)

    # Horizon semantics: a long-running "laggard" transaction pins the
    # horizon at its bound (it might still commit with a small timestamp),
    # so committed churn behind it cannot be forgotten; the moment the
    # laggard completes, the horizon jumps and the backlog collapses —
    # a sawtooth bounded by the laggard's lifetime, not by history length.
    sawtooth = []
    machine = CompactingLockMachine(spec, ACCOUNT_CONFLICT)
    stamp = iter(range(1, 10_000))
    for round_index in range(5):
        laggard = f"laggard{round_index}"
        machine.execute(laggard, Invocation("Credit", (1,)))
        for i in range(20):
            name = f"churn{round_index}_{i}"
            machine.execute(name, Invocation("Credit", (1,)))
            machine.commit(name, next(stamp))
        before = machine.retained_intentions()
        machine.commit(laggard, next(stamp))
        after = machine.retained_intentions()
        sawtooth.append((before, after))
    assert all(before >= 20 for before, _ in sawtooth)
    assert all(after == 0 for _, after in sawtooth)

    rows = [
        [str(n), str(plain), str(comp)]
        for (n, plain), (_, comp) in zip(plain_samples, compacting_samples)
    ]
    table = render_grid(
        ["plain retained ops", "compacting retained ops"], rows, corner="txns"
    )
    save_artifact(
        "compaction",
        "C-C: retained intentions-list operations under commit churn\n\n"
        + table
        + "\n\nlaggard sawtooth (retained before/after the laggard commits,"
        " 20 committed\ntransactions pinned behind it per round): "
        + ", ".join(f"{b}->{a}" for b, a in sawtooth),
        data={
            "plain_retained": [list(sample) for sample in plain_samples],
            "compacting_retained": [list(s) for s in compacting_samples],
            "laggard_sawtooth": [list(pair) for pair in sawtooth],
        },
    )
