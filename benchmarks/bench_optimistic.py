"""Extension experiment X-O — optimistic vs hybrid locking engines.

The paper's Discussion points out that dependency relations also drive
*optimistic* type-specific concurrency control ([9]): execute without
locks, certify at commit.  This benchmark runs both engines (same
dependency tables, same workloads, same simulator knobs) across a
consumer-contention sweep on the FIFO queue.

Expected shape: optimistic throughput leads under this cost model
(refused locks cost per-step backoff, failed certifications only cost the
one commit), but its *wasted work* — validation failures — grows with
contention, while the locking engine wastes time in backoff/retry
(conflicts) instead.  Both engines produce hybrid atomic histories; the
trade is where the waste lands.
"""

from conftest import metrics_table

from repro.protocols import HYBRID, OPTIMISTIC
from repro.sim import QueueWorkload, run_experiment

DURATION = 400.0
SEED = 4


def test_optimistic_vs_locking(benchmark, save_artifact):
    benchmark(
        lambda: run_experiment(
            QueueWorkload(producers=2, consumers=3, ops_per_transaction=3),
            OPTIMISTIC,
            duration=DURATION,
            seed=SEED,
        )
    )

    lines = []
    failures = []
    for consumers in (1, 3, 6):
        workload = lambda: QueueWorkload(
            producers=3, consumers=consumers, ops_per_transaction=3
        )
        locking = run_experiment(workload(), HYBRID, duration=DURATION, seed=SEED)
        optimistic = run_experiment(
            workload(), OPTIMISTIC, duration=DURATION, seed=SEED
        )
        lines.append(f"\nconsumers = {consumers}")
        lines.append(
            metrics_table(
                {"hybrid-locking": locking, "optimistic": optimistic},
                fields=(
                    "committed",
                    "conflicts",
                    "validation_failures",
                    "throughput",
                    "abort_rate",
                ),
            )
        )
        failures.append(optimistic.validation_failures)
        # Same guarantee, different waste profile.
        assert locking.validation_failures == 0
        assert optimistic.conflicts == 0

    # Validation failures grow with consumer contention.
    assert failures[0] < failures[1] < failures[2]

    save_artifact(
        "optimistic_vs_locking",
        "X-O: optimistic certification vs hybrid locking on the FIFO queue\n"
        "(producers=3, duration=400, seed=4)\n" + "\n".join(lines),
    )
