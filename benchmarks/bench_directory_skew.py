"""Extension experiment X-K — keyed dependency relations as free per-key
locking (Directory under Zipf key skew).

The Directory's derived dependency relation never relates operations on
different keys, so the hybrid protocol behaves like per-key locking with
result-aware modes *for free* — no lock manager special-casing, just the
type's specification.  Untyped read/write 2PL locks the whole object.

Expected shape: with uniform keys, hybrid's throughput is a multiple of
rw-2PL's; as Zipf skew concentrates traffic on a hot key, hybrid's
advantage shrinks toward (but stays above) the untyped baseline, whose
throughput is flat — it was already fully serialised.
"""

from conftest import metrics_table

from repro.protocols import HYBRID, TWO_PHASE_RW
from repro.sim import DirectoryWorkload, run_experiment

DURATION = 250.0
SEED = 3


def test_directory_key_skew(benchmark, save_artifact):
    benchmark(
        lambda: run_experiment(
            DirectoryWorkload(skew=1.0), HYBRID, duration=DURATION, seed=SEED
        )
    )

    lines = []
    series = {}
    for skew in (0.0, 1.0, 2.0, 3.0):
        hybrid = run_experiment(
            DirectoryWorkload(skew=skew), HYBRID, duration=DURATION, seed=SEED
        )
        rw = run_experiment(
            DirectoryWorkload(skew=skew), TWO_PHASE_RW, duration=DURATION, seed=SEED
        )
        series[skew] = (hybrid, rw)
        lines.append(f"\nzipf skew = {skew:.1f}")
        lines.append(
            metrics_table(
                {"hybrid (per-key)": hybrid, "rw-2pl (whole-object)": rw},
                fields=("committed", "conflicts", "throughput", "abort_rate"),
            )
        )

    # Hybrid dominates at every skew; rw-2pl is flat; hybrid degrades
    # monotonically toward it as the keyspace collapses.
    for skew, (hybrid, rw) in series.items():
        assert hybrid.throughput > rw.throughput, skew
    assert series[0.0][0].throughput > 2 * series[0.0][1].throughput
    throughputs = [series[s][0].throughput for s in (0.0, 1.0, 2.0, 3.0)]
    assert throughputs == sorted(throughputs, reverse=True)
    rw_line = [series[s][1].throughput for s in (0.0, 1.0, 2.0, 3.0)]
    assert max(rw_line) - min(rw_line) < 0.1 * max(rw_line)

    save_artifact(
        "directory_skew",
        "X-K: Directory under Zipf key skew, 6 clients, 16 keys "
        f"(duration={DURATION}, seed={SEED})\n" + "\n".join(lines),
    )
