"""Benchmark-suite helpers.

Every benchmark regenerates one of the paper's artifacts (a figure table
or a concurrency claim), asserts the reproduction checks, and saves the
rendered output under ``benchmarks/results/`` so the numbers behind
EXPERIMENTS.md can be re-created with::

    pytest benchmarks/ --benchmark-only
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_artifact():
    """Write a named artifact to benchmarks/results/ and echo it."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return _save


def metrics_table(results, fields=("committed", "conflicts", "throughput", "mean_latency", "abort_rate")):
    """Render a {protocol: Metrics} mapping as an aligned text table."""
    from repro.analysis import render_grid

    rows = []
    for name, metrics in results.items():
        row = metrics.as_row()
        rows.append([name] + [str(row[f]) for f in fields])
    return render_grid(list(fields), rows, corner="protocol")
