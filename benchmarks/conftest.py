"""Benchmark-suite helpers.

Every benchmark regenerates one of the paper's artifacts (a figure table
or a concurrency claim), asserts the reproduction checks, and saves the
rendered output under ``benchmarks/results/`` so the numbers behind
EXPERIMENTS.md can be re-created with::

    pytest benchmarks/ --benchmark-only
"""

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_artifact():
    """Write a named artifact to benchmarks/results/ and echo it.

    ``data`` (optional) additionally writes ``<name>.json`` next to the
    text artifact — the machine-readable twin EXPERIMENTS.md tooling and
    downstream analysis read instead of re-parsing the table.
    """

    def _save(name: str, text: str, data=None) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        if data is not None:
            (RESULTS_DIR / f"{name}.json").write_text(
                json.dumps(data, indent=2, sort_keys=True, default=repr) + "\n"
            )
        print(f"\n=== {name} ===\n{text}\n")

    return _save


def run_observed(workload, protocol, **kwargs):
    """``run_experiment`` with a metrics registry attached.

    Returns ``(metrics, registry)`` — the registry carries the
    event-derived conflict breakdown (by operation pair) and compaction
    gauges that benchmark JSON artifacts report.
    """
    from repro.obs import MetricsRegistry
    from repro.sim import run_experiment

    registry = MetricsRegistry()
    metrics = run_experiment(workload, protocol, registry=registry, **kwargs)
    return metrics, registry


def certified_run(workload, protocol, **kwargs):
    """``run_experiment`` with the streaming atomicity checker attached.

    Returns ``(metrics, report)`` where ``report`` is the checker's
    verdict dict; asserts the run certified clean, so every benchmark
    that uses this helper doubles as an end-to-end oracle check.
    """
    from repro.obs import AtomicityChecker, TraceBus
    from repro.sim import run_experiment

    bus = TraceBus()
    checker = bus.subscribe(AtomicityChecker(emit_to=bus))
    metrics = run_experiment(workload, protocol, tracer=bus, **kwargs)
    report = checker.report()
    assert report["ok"], checker.render_report()
    return metrics, report


def certification_data(report):
    """The JSON-artifact verdict block for a checker report."""
    return {
        "verdict": report["verdict"],
        "ok": report["ok"],
        "events": report["events"],
        "transactions": report["transactions"],
        "violations": report["violations"],
    }


def breakdown_data(results):
    """JSON-ready rows from a {protocol: (Metrics, registry)} mapping."""
    data = {}
    for name, (metrics, registry) in results.items():
        data[name] = {
            "metrics": metrics.as_row(),
            "conflicts_by_pair": registry.conflict_breakdown(),
            "gauges": {
                gauge_name: gauge.value
                for gauge_name, gauge in sorted(registry.gauges.items())
            },
        }
    return data


def metrics_table(results, fields=("committed", "conflicts", "throughput", "mean_latency", "abort_rate")):
    """Render a {protocol: Metrics} mapping as an aligned text table."""
    from repro.analysis import render_grid

    rows = []
    for name, metrics in results.items():
        row = metrics.as_row()
        rows.append([name] + [str(row[f]) for f in fields])
    return render_grid(list(fields), rows, corner="protocol")
