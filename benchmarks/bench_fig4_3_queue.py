"""Experiment F4-3 — Figure 4-3: second minimal dependency relation for
the FIFO Queue, and Theorem 17's necessity direction.

Figure 4-3 is not the invalidated-by relation, so it cannot be derived by
that recipe; instead the benchmark (a) machine-verifies it as a minimal
dependency relation (the mechanical analogue of the paper's claim that
the queue has *two* distinct minimal relations), (b) shows the two
figures' conflict closures are incomparable, and (c) demonstrates
Theorem 17: dropping a required pair admits a non-hybrid-atomic history.
"""

from conftest import certification_data, certified_run

from repro.adts import (
    QUEUE_CONFLICT_FIG42,
    QUEUE_CONFLICT_FIG43,
    QUEUE_DEPENDENCY_FIG43,
    FifoQueueSpec,
    make_queue_adt,
    queue_universe,
)
from repro.protocols import HYBRID
from repro.sim import QueueWorkload
from repro.analysis import (
    Ordering,
    compare_relations,
    concurrency_score,
    render_schema_relation,
)
from repro.core import (
    EMPTY_RELATION,
    Invocation,
    LockMachine,
    is_dependency_relation,
    is_hybrid_atomic,
    is_minimal_dependency_relation,
)


def test_fig4_3_queue_dependency(benchmark, save_artifact):
    adt = make_queue_adt("fig43")
    universe = queue_universe((1, 2))
    enumerated = QUEUE_DEPENDENCY_FIG43.restrict(universe)

    ok = benchmark(
        lambda: is_dependency_relation(enumerated, adt.spec, universe)
    )
    assert ok
    assert is_minimal_dependency_relation(enumerated, adt.spec, universe)

    comparison = compare_relations(
        QUEUE_CONFLICT_FIG42, QUEUE_CONFLICT_FIG43, universe
    )
    assert comparison.ordering is Ordering.INCOMPARABLE

    _, cert = certified_run(
        QueueWorkload(dependency="fig43"), HYBRID, duration=150.0, seed=1
    )

    score = concurrency_score(QUEUE_CONFLICT_FIG43, universe)
    lines = [
        "Figure 4-3: FIFO Queue (second minimal dependency relation)",
        "",
        render_schema_relation(enumerated, universe),
        "",
        "dependency relation : True",
        "minimal             : True",
        f"vs Figure 4-2       : {comparison}",
        f"concurrency score   : {score:.3f}",
        f"certified run       : {cert['verdict']} ({cert['events']} events)",
    ]
    save_artifact(
        "fig4_3_queue",
        "\n".join(lines),
        data={
            "is_dependency": True,
            "is_minimal": True,
            "vs_fig4_2": str(comparison),
            "concurrency_score": score,
            "certification": certification_data(cert),
        },
    )


def test_theorem17_necessity(benchmark, save_artifact):
    """An empty conflict relation (not a dependency relation) produces a
    history accepted by LOCK that is not hybrid atomic."""
    spec = FifoQueueSpec()

    def run():
        machine = LockMachine(spec, EMPTY_RELATION)
        machine.execute("T", Invocation("Enq", (1,)))
        machine.execute("T", Invocation("Enq", (2,)))
        machine.commit("T", 1)
        machine.execute("Q", Invocation("Deq"))   # takes 1
        machine.execute("R", Invocation("Deq"))   # also takes 1: no conflict!
        machine.commit("Q", 2)
        machine.commit("R", 3)
        return machine.history()

    h = benchmark(run)
    assert not is_hybrid_atomic(h, {"X": spec})
    save_artifact(
        "theorem17_necessity",
        "Theorem 17 witness (conflict relation = empty, not a dependency "
        "relation):\n"
        + "\n".join(str(e) for e in h.events)
        + "\n\nhybrid atomic: False (both Q and R dequeued item 1)",
    )
