"""Experiment F7-1 — Figure 7-1: the failure-to-commute relation for
Account, and Section 7.1's dominance claim.

Derives failure-to-commute (Definitions 25-26) from the Account
specification, asserts it equals the paper's table, checks Theorem 28
(it is a dependency relation), and verifies the key comparison: the
hybrid conflicts of Figure 4-5 are a strict subset — the extra pairs are
exactly Post vs Credit/Debit.
"""

from conftest import certification_data, certified_run

from repro.adts import (
    ACCOUNT_COMMUTATIVITY_CONFLICT,
    ACCOUNT_CONFLICT,
    account_universe,
    make_account_adt,
)
from repro.analysis import (
    Ordering,
    compare_relations,
    concurrency_score,
    derive_commutativity_figure,
)
from repro.core import failure_to_commute
from repro.protocols import COMMUTATIVITY
from repro.sim import AccountWorkload


def test_fig7_1_account_commutativity(benchmark, save_artifact):
    adt = make_account_adt()
    universe = account_universe((2, 3), (50,))

    derived = benchmark(
        lambda: failure_to_commute(adt.spec, universe, max_h=3)
    )

    report = derive_commutativity_figure(
        adt, universe, "Figure 7-1: Account failure-to-commute", max_h=3
    )
    assert report.matches_paper
    assert report.is_dependency  # Theorem 28
    assert derived.pair_set == report.derived.pair_set

    comparison = compare_relations(ACCOUNT_CONFLICT, derived, universe)
    assert comparison.ordering is Ordering.SUBSET
    extra = sorted({(q.name, p.name) for q, p in comparison.only_right})
    assert all("Post" in pair for pair in extra)

    # Certify a run under the commutativity-based protocol itself.
    _, cert = certified_run(
        AccountWorkload(), COMMUTATIVITY, duration=150.0, seed=1
    )

    hybrid_score = concurrency_score(ACCOUNT_CONFLICT, universe)
    commute_score = concurrency_score(ACCOUNT_COMMUTATIVITY_CONFLICT, universe)
    text = report.render() + (
        f"\nhybrid (Fig 4-5) vs commutativity: {comparison}"
        f"\nextra commutativity conflicts    : {extra}"
        f"\nconcurrency score (hybrid)       : {hybrid_score:.3f}"
        f"\nconcurrency score (commutativity): {commute_score:.3f}"
        f"\ncertified run (commutativity)    : {cert['verdict']}"
        f" ({cert['events']} events)"
    )
    save_artifact(
        "fig7_1_account_commute",
        text,
        data={
            "matches_paper": report.matches_paper,
            "is_dependency": report.is_dependency,
            "extra_commutativity_conflicts": extra,
            "concurrency_score_hybrid": hybrid_score,
            "concurrency_score_commutativity": commute_score,
            "certification": certification_data(cert),
        },
    )
