#!/usr/bin/env python3
"""A replicated account that keeps taking deposits through failures.

The paper's Discussion points at quorum-consensus replication for ADTs
([8]): quorum choices are constrained by the *dependency relation*, not
by read/write classification.  For an Account (Figure 4-5), Credit and
Post depend on nothing, so they can run with an empty initial quorum and
a small final quorum — deposits keep flowing while most replicas are
down; only debits (which depend on credits, posts and debits) need a
large read quorum.

Run:  python examples/replicated_bank.py
"""

from repro.adts import account_universe, make_account_adt
from repro.replication import (
    QuorumAssignment,
    QuorumSpec,
    ReplicatedTransactionManager,
    Unavailable,
)


def main() -> None:
    adt = make_account_adt()
    # 5 replicas; blind deposits (iq=0, fq=2); heavyweight debits (iq=4).
    assignment = QuorumAssignment(
        5,
        {
            "Credit": QuorumSpec(0, 2),
            "Post": QuorumSpec(0, 2),
            "Debit": QuorumSpec(4, 2),
        },
    )
    violations = assignment.validate(adt.dependency, account_universe())
    print("dependency-constraint violations:", violations or "none")

    manager = ReplicatedTransactionManager()
    manager.create_object("vault", make_account_adt(), assignment)
    vault = manager.object("vault")

    def credit(amount):
        return manager.run_transaction(lambda ctx: ctx.invoke("vault", "Credit", amount))

    def debit(amount):
        return manager.run_transaction(lambda ctx: ctx.invoke("vault", "Debit", amount))

    credit(500)
    print("seeded 500; balance:", vault.snapshot())

    print("\n-- 3 of 5 replicas fail --")
    vault.fail_replicas(3)
    credit(100)
    print("deposit of 100 accepted with 2 live replicas")
    try:
        debit(50)
    except Unavailable as exc:
        print("withdrawal refused (needs 4 live):", exc)

    print("\n-- replicas recover --")
    vault.recover_all()
    print("withdraw 600 ->", debit(600))
    print("final balance:", vault.snapshot())
    assert vault.snapshot() == 0
    print("no deposit was lost: quorum intersection guaranteed visibility")


if __name__ == "__main__":
    main()
