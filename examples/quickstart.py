#!/usr/bin/env python3
"""Quickstart: hybrid atomic transactions over typed objects.

Creates a bank account and a work queue, runs a few transactions through
the transaction manager (hybrid locking, commit timestamps, automatic
retry), and shows the result-aware locking that makes the hybrid protocol
special: a credit proceeds concurrently with an in-flight successful
debit, because Figure 4-5's conflict table only makes credits wait for
*overdrafts*.

Run:  python examples/quickstart.py
"""

from repro import LockConflict, TransactionManager
from repro.adts import make_account_adt, make_queue_adt


def main() -> None:
    manager = TransactionManager()
    manager.create_object("checking", make_account_adt())
    manager.create_object("jobs", make_queue_adt())

    # --- Simple transactions with automatic retry -----------------------
    manager.run_transaction(lambda ctx: ctx.invoke("checking", "Credit", 100))
    result = manager.run_transaction(
        lambda ctx: (
            ctx.invoke("checking", "Debit", 30),
            ctx.invoke("jobs", "Enq", "pay-invoice"),
        )
    )
    print("transfer steps returned:", result)
    print("checking balance:", manager.object("checking").snapshot())

    # --- Result-aware locking -------------------------------------------
    # A transaction holding a *successful* debit lock ...
    debitor = manager.begin("debitor")
    print("debit 50 ->", manager.invoke(debitor, "checking", "Debit", 50))

    # ... does not block a concurrent credit (Credit/Debit-Ok compatible):
    creditor = manager.begin("creditor")
    print("concurrent credit ->", manager.invoke(creditor, "checking", "Credit", 5))
    manager.commit(creditor)
    manager.commit(debitor)

    # But an *overdraft* does conflict with credits:
    overdrafter = manager.begin("overdrafter")
    print("debit 10**6 ->", manager.invoke(overdrafter, "checking", "Debit", 10**6))
    blocked = manager.begin("blocked")
    try:
        manager.invoke(blocked, "checking", "Credit", 1)
    except LockConflict as exc:
        print("credit refused while overdraft pending:", exc)
    manager.abort(overdrafter)
    manager.abort(blocked)

    # --- Queue consumption ----------------------------------------------
    job = manager.run_transaction(lambda ctx: ctx.invoke("jobs", "Deq"))
    print("dequeued job:", job)
    print("final balance:", manager.object("checking").snapshot())


if __name__ == "__main__":
    main()
