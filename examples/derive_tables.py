#!/usr/bin/env python3
"""Regenerate every dependency/conflict table in the paper from scratch.

For each type this derives the invalidated-by relation (Definitions 8-9)
and the failure-to-commute relation (Definitions 25-26) directly from the
serial specification, renders them in the paper's row-depends-on-column
style, and reports whether each matches the published figure, is a
dependency relation (Definition 3), and how the protocols compare.

Run:  python examples/derive_tables.py
"""

from repro.adts import (
    account_universe,
    counter_universe,
    directory_universe,
    file_universe,
    make_account_adt,
    make_counter_adt,
    make_directory_adt,
    make_file_adt,
    make_queue_adt,
    make_semiqueue_adt,
    make_set_adt,
    queue_universe,
    semiqueue_universe,
    set_universe,
)
from repro.analysis import (
    compare_relations,
    concurrency_score,
    derive_commutativity_figure,
    derive_figure,
    render_schema_relation,
)

FIGURES = [
    ("Figure 4-1: File", make_file_adt, lambda: file_universe((0, 1)), {}),
    ("Figure 4-2: FIFO Queue", make_queue_adt, lambda: queue_universe((1, 2)), {}),
    ("Figure 4-4: SemiQueue", make_semiqueue_adt, lambda: semiqueue_universe((1, 2)), {}),
    ("Figure 4-5: Account", make_account_adt, lambda: account_universe((2, 3), (50,)), {}),
    ("Extension: Counter", make_counter_adt, lambda: counter_universe((1, 2), (0, 1, 2)), dict(max_h1=2)),
    ("Extension: Set", make_set_adt, lambda: set_universe((1, 2)), dict(max_h1=2)),
    ("Extension: Directory", make_directory_adt, lambda: directory_universe(("a",), (1, 2)), dict(max_h1=2)),
]


def main() -> None:
    for title, factory, universe_factory, kwargs in FIGURES:
        adt = factory()
        universe = universe_factory()
        report = derive_figure(adt, universe, title, **kwargs)
        print(report.render())
        mc = derive_commutativity_figure(
            adt, universe, f"{adt.name}: failure to commute", max_h=3
        )
        comparison = compare_relations(adt.conflict, mc.derived, universe)
        print()
        print(f"commutativity table matches predicate : {mc.matches_paper}")
        print(f"hybrid vs commutativity conflicts     : {comparison}")
        print(
            f"concurrency scores                    : hybrid "
            f"{concurrency_score(adt.conflict, universe):.3f}, commutativity "
            f"{concurrency_score(adt.commutativity_conflict, universe):.3f}"
        )
        print("\n" + "=" * 72 + "\n")

    # The queue's second minimal relation (Figure 4-3) is special: it is
    # not invalidated-by, so show it separately.
    queue = make_queue_adt("fig43")
    universe = queue_universe((1, 2))
    print("Figure 4-3: FIFO Queue (second minimal dependency relation)\n")
    print(render_schema_relation(queue.dependency.restrict(universe), universe))


if __name__ == "__main__":
    main()
