#!/usr/bin/env python3
"""A narrated walkthrough of the paper's worked example (Section 3.2).

Replays the FIFO-queue history through the LOCK machine step by step,
renders it as a timeline, shows why the commutativity baseline rejects
the same interleaving, and demonstrates Theorem 17's necessity direction
by weakening the conflict relation until serializability breaks.

Run:  python examples/paper_walkthrough.py
"""

from repro import Invocation, LockMachine, is_hybrid_atomic, is_online_hybrid_atomic
from repro.adts import (
    QUEUE_COMMUTATIVITY_CONFLICT,
    QUEUE_CONFLICT_FIG42,
    FifoQueueSpec,
)
from repro.analysis import render_timeline
from repro.core import EMPTY_RELATION, LockConflict


def hybrid_run() -> None:
    print("=" * 68)
    print("1. The Section 3.2 history under the hybrid protocol (Fig 4-2)")
    print("=" * 68)
    spec = FifoQueueSpec()
    machine = LockMachine(spec, QUEUE_CONFLICT_FIG42)
    machine.execute("P", Invocation("Enq", (1,)))
    machine.execute("Q", Invocation("Enq", (2,)))   # concurrent enqueue!
    machine.execute("P", Invocation("Enq", (3,)))
    machine.commit("P", 2)   # P commits FIRST but with the LARGER stamp
    machine.commit("Q", 1)
    first = machine.execute("R", Invocation("Deq"))
    second = machine.execute("R", Invocation("Deq"))
    machine.commit("R", 5)
    history = machine.history()
    print(render_timeline(history))
    print()
    print(f"R dequeued {first} then {second}: Q's item first — the commit")
    print("timestamps (Q@1 < P@2), not the arrival order, decide.")
    print("hybrid atomic:", is_hybrid_atomic(history, {"X": spec}))
    print(
        "every prefix online hybrid atomic:",
        all(is_online_hybrid_atomic(p, {"X": spec}) for p in history.prefixes()),
    )
    print()


def commutativity_rejects() -> None:
    print("=" * 68)
    print("2. The commutativity baseline cannot accept this interleaving")
    print("=" * 68)
    spec = FifoQueueSpec()
    machine = LockMachine(spec, QUEUE_COMMUTATIVITY_CONFLICT)
    machine.execute("P", Invocation("Enq", (1,)))
    try:
        machine.execute("Q", Invocation("Enq", (2,)))
    except LockConflict as exc:
        print("Q's concurrent enqueue is refused:", exc)
    print("(enqueues do not commute, so commutativity locking serialises")
    print(" producers; the hybrid protocol does not need them to commute,")
    print(" only to be independent — Definition 3.)")
    print()


def theorem17() -> None:
    print("=" * 68)
    print("3. Theorem 17: drop the conflicts and serializability breaks")
    print("=" * 68)
    spec = FifoQueueSpec()
    machine = LockMachine(spec, EMPTY_RELATION)
    machine.execute("T", Invocation("Enq", (1,)))
    machine.commit("T", 1)
    a = machine.execute("Q", Invocation("Deq"))
    b = machine.execute("R", Invocation("Deq"))   # no conflict -> same item!
    machine.commit("Q", 2)
    machine.commit("R", 3)
    history = machine.history()
    print(render_timeline(history))
    print()
    print(f"Q and R both dequeued item {a} == {b}: with an empty conflict")
    print("relation the machine accepts a history that no serial queue")
    print("could produce.")
    print("hybrid atomic:", is_hybrid_atomic(history, {"X": spec}))


def main() -> None:
    hybrid_run()
    commutativity_rejects()
    theorem17()


if __name__ == "__main__":
    main()
