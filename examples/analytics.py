#!/usr/bin/env python3
"""Consistent analytics with multiversion read-only transactions.

An inventory service keeps per-warehouse stock counters and a catalogue
directory.  Operational transactions move stock around; an analyst runs
long scans that must see a *consistent* snapshot — totals must balance —
without stalling operations.  This is the Section 7.1 generalisation of
hybrid atomicity: read-only transactions take their serialization
timestamp at start and read versions, so they neither block nor get
blocked.

Run:  python examples/analytics.py
"""

import random

from repro import LockConflict, TransactionManager, WouldBlock
from repro.adts import make_counter_adt, make_directory_adt

WAREHOUSES = ["east", "west", "north"]
INITIAL_STOCK = 100


def move_stock(manager, source, target, amount):
    """Move stock between warehouses; refuse if the source runs dry."""

    def body(ctx):
        if ctx.invoke(source, "Dec", amount) == "Floor":
            return False
        ctx.invoke(target, "Inc", amount)
        return True

    return manager.run_transaction(body)


def analyst_scan(manager):
    """One consistent scan: per-warehouse stock plus the catalogue entry."""
    reader = manager.begin_readonly()
    stock = {w: manager.invoke(reader, w, "Read") for w in WAREHOUSES}
    sku = manager.invoke(reader, "catalogue", "Lookup", "sku-1")
    manager.commit(reader)
    return stock, sku


def main() -> None:
    rng = random.Random(7)
    manager = TransactionManager()
    for warehouse in WAREHOUSES:
        manager.create_object(warehouse, make_counter_adt())
    manager.create_object("catalogue", make_directory_adt())

    def seed(ctx):
        for warehouse in WAREHOUSES:
            ctx.invoke(warehouse, "Inc", INITIAL_STOCK)
        ctx.invoke("catalogue", "Bind", "sku-1", "widget")

    manager.run_transaction(seed)

    total_expected = INITIAL_STOCK * len(WAREHOUSES)
    moves = refusals = 0
    for round_index in range(10):
        # Operational traffic ...
        for _ in range(8):
            source, target = rng.sample(WAREHOUSES, 2)
            try:
                if move_stock(manager, source, target, rng.randint(1, 40)):
                    moves += 1
                else:
                    refusals += 1
            except (LockConflict, WouldBlock):
                pass
        # ... and a consistent scan between batches.
        stock, sku = analyst_scan(manager)
        total = sum(stock.values())
        marker = "OK " if total == total_expected else "BAD"
        print(
            f"[scan {round_index}] {marker} total={total:4d} "
            + " ".join(f"{w}={stock[w]:3d}" for w in WAREHOUSES)
            + f"  sku-1={sku}"
        )
        assert total == total_expected, "scan saw a torn state!"

    print(f"\nmoves={moves} dry-source refusals={refusals}")
    print("every scan balanced — snapshots are consistent by construction")


if __name__ == "__main__":
    main()
