#!/usr/bin/env python3
"""Producer/consumer pipelines: the paper's motivating scenario.

Several producers enqueue on one FIFO queue.  Enqueues do not commute, so
commutativity-based locking serialises the producers; the hybrid protocol
(Figure 4-2 conflicts) lets them run concurrently and uses commit
timestamps to decide the dequeue order.  This script runs the comparison
in the discrete-event simulator and prints the throughput series, then
demonstrates the timestamp-ordering effect directly.

Run:  python examples/producer_consumer.py
"""

from repro import COMMUTATIVITY, HYBRID, TWO_PHASE_RW, TransactionManager
from repro.adts import make_queue_adt
from repro.sim import QueueWorkload, compare_protocols


def simulated_comparison() -> None:
    print("Throughput (committed transactions / simulated time unit)")
    print(f"{'producers':>10} {'hybrid':>10} {'commutativity':>14} {'rw-2pl':>10}")
    for producers in (1, 2, 4, 8):
        results = compare_protocols(
            lambda: QueueWorkload(producers=producers, consumers=1),
            [HYBRID, COMMUTATIVITY, TWO_PHASE_RW],
            duration=300,
            seed=7,
        )
        print(
            f"{producers:>10}"
            f" {results['hybrid'].throughput:>10.3f}"
            f" {results['commutativity'].throughput:>14.3f}"
            f" {results['rw-2pl'].throughput:>10.3f}"
        )
    print()


def timestamp_ordering_demo() -> None:
    """Two producers enqueue concurrently; the consumer sees them in
    commit order, not invocation order."""
    manager = TransactionManager()
    manager.create_object("pipe", make_queue_adt())

    fast = manager.begin("fast-producer")
    slow = manager.begin("slow-producer")
    manager.invoke(slow, "pipe", "Enq", "slow-item")  # invoked first ...
    manager.invoke(fast, "pipe", "Enq", "fast-item")
    manager.commit(fast)   # ... but fast commits first (smaller timestamp)
    manager.commit(slow)

    consumer = manager.begin("consumer")
    first = manager.invoke(consumer, "pipe", "Deq")
    second = manager.invoke(consumer, "pipe", "Deq")
    manager.commit(consumer)
    print("concurrent enqueues drained in commit-timestamp order:")
    print("  1st dequeue:", first)
    print("  2nd dequeue:", second)
    assert (first, second) == ("fast-item", "slow-item")


def main() -> None:
    simulated_comparison()
    timestamp_ordering_demo()


if __name__ == "__main__":
    main()
