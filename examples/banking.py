#!/usr/bin/env python3
"""A small bank built on hybrid atomic Accounts (the appendix scenario).

Maintains several accounts, runs a randomized day of traffic — deposits,
withdrawals (with overdraft refusal), transfers, and end-of-day interest
posting — while recording the global history, then verifies the run is
hybrid atomic against the serial specifications.  Balances are exact
rational numbers (Fractions), never floats.

Run:  python examples/banking.py
"""

import random
from fractions import Fraction

from repro import (
    LockConflict,
    SkewedTimestampGenerator,
    TransactionManager,
    WouldBlock,
    is_hybrid_atomic,
)
from repro.adts import make_account_adt

ACCOUNTS = ["alice", "bob", "carol"]


def deposit(manager, account, amount):
    return manager.run_transaction(lambda ctx: ctx.invoke(account, "Credit", amount))


def withdraw(manager, account, amount):
    def body(ctx):
        return ctx.invoke(account, "Debit", amount)

    return manager.run_transaction(body)


def transfer(manager, source, target, amount):
    def body(ctx):
        if ctx.invoke(source, "Debit", amount) == "Overdraft":
            return False
        ctx.invoke(target, "Credit", amount)
        return True

    return manager.run_transaction(body)


def post_interest(manager, percent):
    def body(ctx):
        for account in ACCOUNTS:
            ctx.invoke(account, "Post", percent)

    manager.run_transaction(body)


def main() -> None:
    rng = random.Random(2026)
    # Skewed timestamps exercise the interesting merge-by-timestamp paths.
    manager = TransactionManager(
        record_history=True, generator=SkewedTimestampGenerator(seed=2026)
    )
    for account in ACCOUNTS:
        manager.create_object(account, make_account_adt())

    for account in ACCOUNTS:
        deposit(manager, account, 1000)

    deposits = withdrawals = refused = transfers = 0
    for _ in range(60):
        action = rng.random()
        account = rng.choice(ACCOUNTS)
        try:
            if action < 0.4:
                deposit(manager, account, rng.randint(1, 200))
                deposits += 1
            elif action < 0.75:
                if withdraw(manager, account, rng.randint(1, 400)) == "Overdraft":
                    refused += 1
                else:
                    withdrawals += 1
            else:
                target = rng.choice([a for a in ACCOUNTS if a != account])
                if transfer(manager, account, target, rng.randint(1, 300)):
                    transfers += 1
        except (LockConflict, WouldBlock):
            pass  # gave up after retries; transaction was aborted cleanly

    post_interest(manager, 5)

    print(f"deposits={deposits} withdrawals={withdrawals} "
          f"refused-overdrafts={refused} transfers={transfers}")
    total = Fraction(0)
    for account in ACCOUNTS:
        balance = manager.object(account).snapshot()
        total += balance
        print(f"  {account:>6}: {float(balance):10.2f}")
    print(f"  total : {float(total):10.2f}")

    history = manager.history()
    print(f"\nrecorded events: {len(history)}")
    print("hybrid atomic  :", is_hybrid_atomic(history, manager.specs()))


if __name__ == "__main__":
    main()
