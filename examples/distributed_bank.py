#!/usr/bin/env python3
"""A multi-site bank: cross-site transfers under simulated network latency.

Accounts live at three sites connected by a latency-simulating network.
Clients act as their own two-phase-commit coordinators; commit timestamps
come from Lamport clocks piggybacked on the PREPARE votes (the paper's
§3.3 mechanism).  A site crashes every 25 time units; 2PC turns its
in-flight transactions into clean aborts.  At the end, the globally
recorded interleaving is checked hybrid atomic.

Run:  python examples/distributed_bank.py
"""

from repro.core import is_hybrid_atomic, timestamps_respect_precedes
from repro.distributed import run_distributed_experiment


def main() -> None:
    run = run_distributed_experiment(
        site_count=3,
        accounts_per_site=2,
        clients=6,
        max_spread=3,
        duration=300,
        seed=42,
        record=True,
        crash_every=25.0,
    )

    m = run.metrics
    print(f"committed={m.committed} aborted={m.aborted} "
          f"conflicts={m.conflicts} mean-latency={m.mean_latency:.2f}")
    print("network traffic:", dict(run.network.sent))

    for name, site in sorted(run.sites.items()):
        balances = {obj: float(site.snapshot(obj)) for obj in site.objects()}
        print(f"  {name}: clock={site.clock.now:4d} " +
              " ".join(f"{obj}={bal:9.2f}" for obj, bal in balances.items()))

    history = run.history()
    print(f"\nrecorded events          : {len(history)}")
    print("timestamp constraint ok  :", timestamps_respect_precedes(history))
    print("globally hybrid atomic   :", is_hybrid_atomic(history, run.specs()))


if __name__ == "__main__":
    main()
