"""Sites: object homes with local clocks and two-phase-commit handlers.

Each site owns some hybrid atomic objects (compacting LOCK machines) and
a Lamport logical clock.  The clock advances past every commit timestamp
the site observes, so a site's clock is always an upper bound on the
timestamps of transactions committed there — the value the coordinator
needs for the §3.3 constraint.

Message handlers (invoked via the simulated network):

* ``handle_invoke`` — execute an operation under the hybrid protocol and
  reply ``("ok", result)``, ``("conflict",)`` or ``("block",)``;
* ``handle_prepare`` — 2PC vote: ``("yes", clock)`` (the clock rides the
  vote — "algorithms that piggyback timestamp information on the
  messages of a commit protocol"), or ``("no",)`` when the transaction
  was lost to a crash;
* ``handle_commit`` / ``handle_abort`` — deliver the completion to every
  local object the transaction touched.

``crash`` fail-stops the site's volatile state: active transactions are
aborted locally and remembered as tombstones so a later PREPARE is
answered ``no`` — the coordinator then aborts globally, which is how 2PC
turns a participant crash into a clean transaction abort.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..adts.base import ADT
from ..core.compaction import CompactingLockMachine
from ..core.errors import LockConflict, WouldBlock
from ..core.events import AbortEvent, CommitEvent, InvocationEvent, ResponseEvent
from ..core.operations import Invocation
from ..core.timestamps import LogicalClock
from ..protocols.base import HYBRID, ProtocolSpec

__all__ = ["Site"]


class Site:
    """One site: named objects plus the local clock and 2PC handlers."""

    def __init__(self, name: str, recorder: Optional[List[Any]] = None):
        self.name = name
        self.clock = LogicalClock()
        self._machines: Dict[str, CompactingLockMachine] = {}
        self._adts: Dict[str, ADT] = {}
        #: object -> transactions with intentions there (for completion fan-out).
        self._touched: Dict[str, Set[str]] = {}
        #: Transactions lost to a crash: PREPARE must vote no.
        self._tombstones: Set[str] = set()
        #: Transactions whose PREPARE was accepted: their intentions are
        #: on the stable log and survive crashes (2PC's prepared state).
        self._prepared: Set[str] = set()
        self._recorder = recorder
        self.alive = True

    # ------------------------------------------------------------------

    def create_object(
        self, name: str, adt: ADT, protocol: ProtocolSpec = HYBRID
    ) -> None:
        """Home a new object at this site."""
        if name in self._machines:
            raise ValueError(f"object {name!r} already exists at {self.name}")
        self._machines[name] = CompactingLockMachine(
            adt.spec, protocol.conflict_for(adt), obj=name
        )
        self._adts[name] = adt
        self._touched[name] = set()

    def objects(self) -> List[str]:
        """Names of objects homed here."""
        return sorted(self._machines)

    def machine(self, obj: str) -> CompactingLockMachine:
        """The LOCK machine for a local object."""
        return self._machines[obj]

    def adt(self, obj: str) -> ADT:
        """The ADT bundle for a local object."""
        return self._adts[obj]

    def snapshot(self, obj: str) -> Any:
        """Committed-state snapshot of one local object."""
        machine = self._machines[obj]
        states = machine.spec.run_from(
            machine.version_states, machine.committed_state()
        )
        return sorted(states, key=repr)[0]

    def _record(self, event: Any) -> None:
        if self._recorder is not None:
            self._recorder.append(event)

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------

    def handle_invoke(
        self, transaction: str, obj: str, invocation: Invocation
    ) -> Tuple:
        """Execute one operation; returns the reply tuple."""
        if not self.alive:
            return ("down",)
        if transaction in self._tombstones:
            return ("no-such-transaction",)
        machine = self._machines[obj]
        try:
            result = machine.execute(transaction, invocation)
        except LockConflict:
            return ("conflict",)
        except WouldBlock:
            return ("block",)
        self._touched[obj].add(transaction)
        self._record(InvocationEvent(transaction, obj, invocation))
        self._record(ResponseEvent(transaction, obj, result))
        # The reply carries the site clock: everything committed here has
        # a timestamp at or below it, so the coordinator can maintain the
        # precedes-order bound incrementally too.
        return ("ok", result, self.clock.now)

    def handle_prepare(self, transaction: str) -> Tuple:
        """2PC phase one: vote, piggybacking the local clock."""
        if not self.alive:
            return ("down",)
        if transaction in self._tombstones:
            return ("no",)
        self._prepared.add(transaction)  # force-write to the stable log
        return ("yes", self.clock.now)

    def handle_commit(self, transaction: str, timestamp: Any) -> None:
        """2PC phase two: deliver ``commit(timestamp)`` locally."""
        if not self.alive:
            return
        for obj, holders in self._touched.items():
            if transaction in holders:
                self._machines[obj].commit(transaction, timestamp)
                self._record(CommitEvent(transaction, obj, timestamp))
                holders.discard(transaction)
        self.clock.observe(timestamp[0])

    def handle_abort(self, transaction: str) -> None:
        """Deliver an abort to every local object the transaction touched."""
        if not self.alive:
            return
        for obj, holders in self._touched.items():
            if transaction in holders:
                self._machines[obj].abort(transaction)
                self._record(AbortEvent(transaction, obj))
                holders.discard(transaction)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def crash(self) -> List[str]:
        """Fail-stop: abort every *unprepared* local transaction (their
        volatile intentions are lost); committed state and prepared
        transactions (on the stable log) survive.  Returns the victims.
        The site comes back up immediately but remembers the victims as
        tombstones so their PREPAREs are voted down."""
        victims: Set[str] = set()
        for obj, holders in self._touched.items():
            for transaction in sorted(holders):
                if transaction in self._prepared:
                    continue  # stable: awaiting the coordinator's verdict
                self._machines[obj].abort(transaction)
                self._record(AbortEvent(transaction, obj))
                victims.add(transaction)
            for transaction in victims:
                holders.discard(transaction)
        self._tombstones |= victims
        return sorted(victims)
