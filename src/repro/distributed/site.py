"""Sites: object homes with local clocks and two-phase-commit handlers.

Each site owns some hybrid atomic objects (compacting LOCK machines) and
a Lamport logical clock.  The clock advances past every commit timestamp
the site observes, so a site's clock is always an upper bound on the
timestamps of transactions committed there — the value the coordinator
needs for the §3.3 constraint.

Message handlers (invoked via the simulated network):

* ``handle_invoke`` — execute an operation under the hybrid protocol and
  reply ``("ok", result)``, ``("conflict",)`` or ``("block",)``;
* ``handle_prepare`` — 2PC vote: ``("yes", clock)`` (the clock rides the
  vote — "algorithms that piggyback timestamp information on the
  messages of a commit protocol"), or ``("no",)`` when the transaction
  was lost to a crash;
* ``handle_commit`` / ``handle_abort`` — deliver the completion to every
  local object the transaction touched; they return False while the site
  is down, so coordinators retry decision delivery until it lands.

Two failure modes are modelled.  ``crash`` fail-stops the site's volatile
state in place: active transactions are aborted locally and remembered as
tombstones so a later PREPARE is answered ``no``.  ``crash_hard`` is a
full fail-stop with volatile loss — machines, touched maps, prepared
sets, and the clock are all destroyed, and only the write-ahead log and
checkpoint (stable storage, attached via the ``wal`` parameter) survive;
``recover`` rebuilds the site from them via
:func:`repro.recovery.recover_site_state`: committed intentions are
replayed in timestamp order on top of the checkpointed versions,
2PC-prepared transactions come back active with their locks, and
everything else is presumed aborted.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..adts.base import ADT
from ..core.compaction import CompactingLockMachine
from ..core.errors import LockConflict, WouldBlock
from ..core.events import AbortEvent, CommitEvent, InvocationEvent, ResponseEvent
from ..core.operations import Invocation
from ..core.timestamps import LogicalClock
from ..protocols.base import HYBRID, ProtocolSpec

__all__ = ["Site"]


class Site:
    """One site: named objects plus the local clock and 2PC handlers."""

    def __init__(
        self,
        name: str,
        recorder: Optional[List[Any]] = None,
        wal: Optional[Any] = None,
        tracer: Optional[Any] = None,
    ):
        self.name = name
        #: Optional :class:`repro.obs.TraceBus`, propagated to machines.
        self.tracer = tracer
        self.clock = LogicalClock()
        self._machines: Dict[str, CompactingLockMachine] = {}
        self._adts: Dict[str, ADT] = {}
        #: object -> transactions with intentions there (for completion fan-out).
        self._touched: Dict[str, Set[str]] = {}
        #: Transactions lost to a crash: PREPARE must vote no.
        self._tombstones: Set[str] = set()
        #: Transactions whose PREPARE was accepted: their intentions are
        #: on the stable log and survive crashes (2PC's prepared state).
        self._prepared: Set[str] = set()
        self._recorder = recorder
        #: Stable storage: a WriteAheadLog, or None for a volatile site.
        self.wal = wal
        self.alive = True
        if wal is not None and len(wal) == 0:
            from ..recovery.wal import meta_record

            wal.append(meta_record("site", name, compacting=True))

    # ------------------------------------------------------------------

    def create_object(
        self, name: str, adt: ADT, protocol: ProtocolSpec = HYBRID
    ) -> None:
        """Home a new object at this site."""
        if name in self._machines:
            raise ValueError(f"object {name!r} already exists at {self.name}")
        machine = CompactingLockMachine(
            adt.spec, protocol.conflict_for(adt), obj=name
        )
        machine.tracer = self.tracer
        self._machines[name] = machine
        self._adts[name] = adt
        self._touched[name] = set()
        if self.tracer is not None:
            self.tracer.emit(
                "obj.create",
                obj=name,
                adt=adt.name,
                protocol=protocol.name,
                relation=machine.conflict.name,
                initial=adt.spec.initial_states(),
                site=self.name,
            )
        if self.wal is not None:
            from ..recovery.wal import create_record

            self.wal.append(
                create_record(name, adt.name, protocol.name, adt.spec.initial_states())
            )

    def objects(self) -> List[str]:
        """Names of objects homed here."""
        return sorted(self._machines)

    def machine(self, obj: str) -> CompactingLockMachine:
        """The LOCK machine for a local object."""
        return self._machines[obj]

    def machines(self) -> Dict[str, CompactingLockMachine]:
        """Name → LOCK machine for every local object (a fresh map).

        The machines themselves are the live protocol objects; the
        *mapping* is a copy, so callers cannot add or remove objects
        behind the site's back.
        """
        return dict(self._machines)

    def prepared_transactions(self) -> Set[str]:
        """Transactions in 2PC's prepared state (a copy)."""
        return set(self._prepared)

    def adt(self, obj: str) -> ADT:
        """The ADT bundle for a local object."""
        return self._adts[obj]

    def snapshot(self, obj: str) -> Any:
        """Committed-state snapshot of one local object."""
        machine = self._machines[obj]
        states = machine.spec.run_from(
            machine.version_states, machine.committed_state()
        )
        return sorted(states, key=repr)[0]

    def _record(self, event: Any) -> None:
        if self._recorder is not None:
            self._recorder.append(event)

    def _footprint(self, transaction: str) -> Dict[str, Any]:
        """The transaction's local intentions lists, by object."""
        return {
            obj: self._machines[obj].intentions(transaction)
            for obj, holders in self._touched.items()
            if transaction in holders
        }

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------

    def handle_invoke(
        self, transaction: str, obj: str, invocation: Invocation
    ) -> Tuple:
        """Execute one operation; returns the reply tuple."""
        if not self.alive:
            return ("down",)
        if transaction in self._tombstones:
            return ("no-such-transaction",)
        machine = self._machines[obj]
        try:
            result = machine.execute(transaction, invocation)
        except LockConflict:
            return ("conflict",)
        except WouldBlock:
            return ("block",)
        self._touched[obj].add(transaction)
        if self.wal is not None:
            from ..recovery.wal import invoke_record, respond_record

            self.wal.append(invoke_record(transaction, obj, invocation))
            self.wal.append(respond_record(transaction, obj, result))
            if self.tracer is not None:
                self.tracer.emit(
                    "wal.append",
                    record="invoke+respond",
                    site=self.name,
                    transaction=transaction,
                )
        self._record(InvocationEvent(transaction, obj, invocation))
        self._record(ResponseEvent(transaction, obj, result))
        # The reply carries the site clock: everything committed here has
        # a timestamp at or below it, so the coordinator can maintain the
        # precedes-order bound incrementally too.
        return ("ok", result, self.clock.now)

    def handle_prepare(self, transaction: str) -> Tuple:
        """2PC phase one: vote, piggybacking the local clock.

        A transaction without a local footprint votes ``no``: either it
        never ran here, or its volatile intentions were lost to a crash —
        voting yes would commit operations the site cannot redo.
        """
        if not self.alive:
            return ("down",)
        if transaction in self._tombstones:
            return ("no",)
        footprint = self._footprint(transaction)
        if not footprint and transaction not in self._prepared:
            return ("no",)
        if self.wal is not None and transaction not in self._prepared:
            from ..recovery.wal import prepare_record

            # Force-write the intentions: the prepared state must survive
            # a crash so the coordinator's verdict can still be honoured.
            self.wal.append(prepare_record(transaction, self.clock.now, footprint))
            if self.tracer is not None:
                self.tracer.emit(
                    "wal.append",
                    record="prepare",
                    site=self.name,
                    transaction=transaction,
                )
        self._prepared.add(transaction)  # force-write to the stable log
        return ("yes", self.clock.now)

    def handle_commit(self, transaction: str, timestamp: Any) -> bool:
        """2PC phase two: deliver ``commit(timestamp)`` locally.

        Returns True once delivered; False while the site is down (the
        coordinator must retry — a decided transaction may not linger
        prepared forever)."""
        if not self.alive:
            return False
        if self.wal is not None:
            footprint = self._footprint(transaction)
            if footprint:
                from ..recovery.wal import commit_record

                self.wal.append(commit_record(transaction, timestamp, footprint))
        delivered = []
        for obj, holders in self._touched.items():
            if transaction in holders:
                self._machines[obj].commit(transaction, timestamp)
                self._record(CommitEvent(transaction, obj, timestamp))
                holders.discard(transaction)
                delivered.append(obj)
        self._prepared.discard(transaction)
        self.clock.observe(timestamp[0])
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "txn.commit",
                transaction=transaction,
                timestamp=timestamp,
                objects=sorted(delivered),
                site=self.name,
            )
        return True

    def handle_abort(self, transaction: str) -> bool:
        """Deliver an abort to every local object the transaction touched.

        Returns True once delivered, False while the site is down."""
        if not self.alive:
            return False
        if self.wal is not None and any(
            transaction in holders for holders in self._touched.values()
        ):
            from ..recovery.wal import abort_record

            self.wal.append(abort_record(transaction))
        delivered = []
        for obj, holders in self._touched.items():
            if transaction in holders:
                self._machines[obj].abort(transaction)
                self._record(AbortEvent(transaction, obj))
                holders.discard(transaction)
                delivered.append(obj)
        self._prepared.discard(transaction)
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "txn.abort",
                transaction=transaction,
                objects=sorted(delivered),
                site=self.name,
            )
        return True

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def checkpoint(self, store: Any, taken_at: float = 0.0) -> Any:
        """Snapshot every local version into ``store`` and truncate the WAL.

        The checkpoint is keyed by each machine's horizon-bounded version
        timestamp; the truncation drops exactly the log prefix those
        versions prove redundant.  Returns the checkpoint.
        """
        if self.wal is None:
            raise ValueError(f"site {self.name!r} has no write-ahead log")
        from ..recovery.checkpoint import take_checkpoint, truncate_wal

        checkpoint = take_checkpoint(
            self._machines, site_clock=self.clock.now, taken_at=taken_at
        )
        store.save(checkpoint)
        truncate_wal(self.wal, self._machines, extra_live=self._prepared)
        return checkpoint

    def recover(self, store: Any = None, catalog: Any = None, clock: Any = None):
        """Rebuild the site from checkpoint + WAL replay after ``crash_hard``.

        ``clock`` is an optional zero-argument callable timing the rebuild
        (e.g. ``time.perf_counter`` from a CLI); simulated runs leave it
        unset and the report's ``elapsed_seconds`` stays 0.0, keeping
        crash-seeded runs bit-for-bit reproducible.  Returns the
        :class:`~repro.recovery.recovery.RecoveryReport`.
        """
        from ..recovery.recovery import recover_site_state

        return recover_site_state(self, store=store, catalog=catalog, clock=clock)

    def install_recovered_state(
        self,
        machines: Dict[str, CompactingLockMachine],
        adts: Dict[str, ADT],
        prepared: Any,
        tombstones: Any,
        touched: Optional[Dict[str, Set[str]]] = None,
    ) -> None:
        """Install the volatile state recovery rebuilt from stable storage.

        The sanctioned mutation point for :mod:`repro.recovery.recovery`:
        machines and ADT bundles replace the ones ``crash_hard`` destroyed,
        ``prepared`` transactions come back awaiting their 2PC verdict,
        ``tombstones`` (presumed abort) are remembered so a late PREPARE is
        voted down, and ``touched`` restores the completion fan-out map for
        prepared intentions.  All inputs are copied.
        """
        self._machines = dict(machines)
        self._adts = dict(adts)
        self._touched = {obj: set() for obj in self._machines}
        if touched:
            for obj, holders in touched.items():
                self._touched[obj].update(holders)
        self._prepared = set(prepared)
        self._tombstones = set(tombstones)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def crash(self) -> List[str]:
        """Fail-stop: abort every *unprepared* local transaction (their
        volatile intentions are lost); committed state and prepared
        transactions (on the stable log) survive.  Returns the victims.
        The site comes back up immediately but remembers the victims as
        tombstones so their PREPAREs are voted down."""
        victims: Set[str] = set()
        for obj, holders in self._touched.items():
            for transaction in sorted(holders):
                if transaction in self._prepared:
                    continue  # stable: awaiting the coordinator's verdict
                self._machines[obj].abort(transaction)
                self._record(AbortEvent(transaction, obj))
                victims.add(transaction)
            for transaction in victims:
                holders.discard(transaction)
        if self.wal is not None:
            from ..recovery.wal import abort_record

            for transaction in sorted(victims):
                self.wal.append(abort_record(transaction))
        self._tombstones |= victims
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "site.crash", site=self.name, hard=False, victims=sorted(victims)
            )
        return sorted(victims)

    def crash_hard(self) -> None:
        """Full fail-stop: every volatile structure is lost.

        Machines, touched maps, prepared and tombstone sets, and the
        clock are destroyed; only stable storage (the WAL and any
        checkpoint) survives.  The site answers ``("down",)`` / False
        until :meth:`recover` rebuilds it."""
        self.alive = False
        self._machines = {}
        self._adts = {}
        self._touched = {}
        self._prepared = set()
        self._tombstones = set()
        self.clock = LogicalClock()
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("site.crash", site=self.name, hard=True)
