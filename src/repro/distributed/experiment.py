"""Distributed experiments: a multi-site bank over the simulated network.

:func:`run_distributed_experiment` spreads accounts across ``site_count``
sites, spawns clients whose transactions touch up to ``max_spread``
distinct sites (cross-site transfers coordinated by 2PC), optionally
injects site crashes, runs the event loop, and returns the metrics plus
the network traffic breakdown — and, when recording, the globally
interleaved event history for the Section 3 checkers.

Two fault models are available.  ``crash_every`` (legacy) soft-crashes a
rotating site periodically: volatile transactions abort, committed state
survives in place.  ``crash_rate`` drives the full durability path: each
site gets a write-ahead log (and optional periodic horizon checkpoints),
a seeded :class:`~repro.recovery.faults.CrashPlan` fail-stops sites with
total volatile loss, and every victim is rebuilt ``crash_downtime`` later
by checkpoint + WAL replay, with the recovered committed state verified
against the pre-crash snapshot.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..adts.account import make_account_adt
from ..core.history import History
from ..sim.des import Simulator
from ..sim.metrics import Metrics
from .client import DistributedClient, DistributedStep
from .network import Network
from .site import Site

__all__ = ["DistributedRun", "run_distributed_experiment"]


@dataclass
class DistributedRun:
    """Everything a distributed run produced."""

    metrics: Metrics
    network: Network
    sites: Dict[str, Site]
    events: List[Any] = field(default_factory=list)
    #: One report per completed checkpoint + WAL-replay recovery.
    recovery_reports: List[Any] = field(default_factory=list)
    #: site name -> checkpoint store (durable runs only).
    stores: Dict[str, Any] = field(default_factory=dict)

    def history(self) -> History:
        """The recorded global history (empty unless recording was on)."""
        return History(self.events, validate=False)

    def specs(self) -> Dict[str, Any]:
        """Object-name → serial-spec map across all sites."""
        specs: Dict[str, Any] = {}
        for site in self.sites.values():
            for obj in site.objects():
                specs[obj] = site.adt(obj).spec
        return specs

    def total_balance(self) -> Any:
        """Sum of committed balances across every account."""
        total = 0
        for site in self.sites.values():
            for obj in site.objects():
                total += site.snapshot(obj)
        return total


def run_distributed_experiment(
    site_count: int = 3,
    accounts_per_site: int = 2,
    clients: int = 6,
    ops_per_transaction: int = 3,
    max_spread: int = 2,
    duration: float = 300.0,
    seed: int = 0,
    mean_latency: float = 1.0,
    initial_balance: int = 1000,
    crash_every: float = 0.0,
    record: bool = False,
    crash_rate: float = 0.0,
    crash_seed: Optional[int] = None,
    crash_downtime: float = 10.0,
    durable: bool = False,
    wal_dir: Optional[str] = None,
    checkpoint_every: float = 0.0,
    tracer=None,
    registry=None,
) -> DistributedRun:
    """Run the multi-site banking workload; deterministic per seed.

    ``max_spread`` caps how many distinct sites one transaction touches;
    ``crash_every > 0`` soft-crashes a rotating site at that period
    (victims are un-prepared transactions only — see :meth:`Site.crash`).
    ``crash_rate > 0`` fail-stops sites at that Poisson rate with full
    volatile loss and recovers each from its WAL (plus checkpoint, when
    ``checkpoint_every > 0``) after ``crash_downtime``; ``durable=True``
    attaches logs without injecting faults.  ``wal_dir`` puts the logs on
    disk (one subdirectory per site) instead of in memory.

    ``tracer`` (a :class:`repro.obs.TraceBus`, clock rebound to simulated
    time) is threaded through the network, every site, and every client;
    ``registry`` (a :class:`repro.obs.MetricsRegistry`) accumulates
    event-derived counters plus per-object horizon gauges and the final
    ``Metrics`` row.
    """
    simulator = Simulator()
    registry_sink = None
    if registry is not None:
        from ..obs import RegistrySink, TraceBus

        if tracer is None:
            tracer = TraceBus()
        registry_sink = tracer.subscribe(RegistrySink(registry))
    if tracer is not None:
        tracer.clock = lambda: simulator.now
    network = Network(simulator, seed=seed, mean_latency=mean_latency, tracer=tracer)
    recorder: Optional[List[Any]] = [] if record else None
    durable = durable or crash_rate > 0 or wal_dir is not None or checkpoint_every > 0

    stores: Dict[str, Any] = {}
    sites: Dict[str, Site] = {}
    placement: List[Tuple[str, str]] = []  # (site, object)
    for s in range(site_count):
        wal = None
        if durable:
            from ..recovery import (
                FileCheckpointStore,
                FileWAL,
                MemoryCheckpointStore,
                MemoryWAL,
            )

            if wal_dir is not None:
                site_dir = os.path.join(wal_dir, f"S{s}")
                wal = FileWAL(site_dir)
                stores[f"S{s}"] = FileCheckpointStore(site_dir)
            else:
                wal = MemoryWAL()
                stores[f"S{s}"] = MemoryCheckpointStore()
        site = Site(f"S{s}", recorder=recorder, wal=wal, tracer=tracer)
        sites[site.name] = site
        for a in range(accounts_per_site):
            obj = f"acct{s}_{a}"
            site.create_object(obj, make_account_adt(initial=initial_balance))
            placement.append((site.name, obj))

    def script(client_index: int, rng: random.Random) -> List[DistributedStep]:
        spread = rng.randint(1, min(max_spread, site_count))
        chosen_sites = rng.sample(sorted(sites), spread)
        steps: List[DistributedStep] = []
        for _ in range(ops_per_transaction):
            site_name = rng.choice(chosen_sites)
            local = [obj for s, obj in placement if s == site_name]
            obj = rng.choice(local)
            roll = rng.random()
            if roll < 0.5:
                steps.append((site_name, obj, "Credit", (rng.randint(1, 20),)))
            elif roll < 0.9:
                steps.append((site_name, obj, "Debit", (rng.randint(1, 20),)))
            else:
                steps.append((site_name, obj, "Post", (5,)))
        return steps

    metrics = Metrics()
    for index in range(clients):
        DistributedClient(
            index,
            simulator,
            network,
            sites,
            script,
            metrics,
            random.Random(f"{seed}/client{index}"),
            tracer=tracer,
        ).start()

    if crash_every > 0:
        crash_rng = random.Random(f"{seed}/crash")
        order = sorted(sites)

        def crash_tick(round_index: int = 0) -> None:
            victim = sites[order[round_index % len(order)]]
            victim.crash()
            simulator.schedule(crash_every, lambda: crash_tick(round_index + 1))

        simulator.schedule(crash_every, crash_tick)

    if checkpoint_every > 0:

        def checkpoint_tick() -> None:
            for name in sorted(sites):
                if sites[name].alive:
                    sites[name].checkpoint(stores[name], taken_at=simulator.now)
            simulator.schedule(checkpoint_every, checkpoint_tick)

        simulator.schedule(checkpoint_every, checkpoint_tick)

    recovery_reports: List[Any] = []
    if crash_rate > 0:
        from ..recovery import CrashPlan

        plan = CrashPlan.seeded(
            crash_seed if crash_seed is not None else seed,
            sorted(sites),
            duration=duration,
            rate=crash_rate,
            downtime=crash_downtime,
        )
        recovery_reports = plan.install(
            simulator, sites, metrics=metrics, stores=stores, verify=True
        )

    simulator.run_until(duration)
    metrics.duration = duration
    if registry_sink is not None:
        for site_name in sorted(sites):
            site = sites[site_name]
            for obj in site.objects():
                machine = site.machine(obj)
                registry.gauge(f"compaction.horizon[{obj}]").set(machine.horizon())
                registry.gauge(f"compaction.retained[{obj}]").set(
                    machine.retained_intentions()
                )
        registry.absorb_metrics(metrics)
        tracer.unsubscribe(registry_sink)
    return DistributedRun(
        metrics=metrics,
        network=network,
        sites=sites,
        events=recorder or [],
        recovery_reports=recovery_reports,
        stores=stores,
    )
