"""A simulated message network over the discrete-event simulator.

Delivery is reliable and ordered only by (randomised) latency — messages
between the same pair of sites can overtake each other, which is exactly
the regime in which commit-timestamp serialization has to do real work.
Latencies are exponentially distributed around ``mean_latency`` with a
``floor`` so nothing arrives instantaneously; the generator is seeded, so
whole distributed runs are reproducible.

Messages are Python callbacks (the payload *is* the handler invocation);
``send`` tags each with a label used for the per-kind traffic statistics
the distributed benchmark reports.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Callable

from ..sim.des import Simulator

__all__ = ["Network"]


class Network:
    """Latency-simulating message fabric."""

    def __init__(
        self,
        simulator: Simulator,
        seed: int = 0,
        mean_latency: float = 1.0,
        floor: float = 0.1,
        tracer=None,
    ):
        if mean_latency <= 0 or floor < 0:
            raise ValueError("latencies must be positive")
        self.simulator = simulator
        self._rng = random.Random(f"net/{seed}")
        self.mean_latency = mean_latency
        self.floor = floor
        #: Messages sent, by label.
        self.sent: Counter = Counter()
        #: Optional :class:`repro.obs.TraceBus` emitting ``net.send`` /
        #: ``net.deliver`` (None = no tracing, no wrapper allocation).
        self.tracer = tracer

    def latency(self) -> float:
        """Draw one message latency."""
        return self.floor + self._rng.expovariate(1.0 / self.mean_latency)

    def send(self, label: str, deliver: Callable[[], None]) -> None:
        """Send a message: ``deliver`` runs after a random latency."""
        self.sent[label] += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("net.send", label=label)
            inner = deliver

            def deliver() -> None:
                tracer.emit("net.deliver", label=label)
                inner()

        self.simulator.schedule(self.latency(), deliver)

    @property
    def total_messages(self) -> int:
        """Total messages sent so far."""
        return sum(self.sent.values())
