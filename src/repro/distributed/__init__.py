"""Multi-site transactions: simulated network, 2PC, piggybacked clocks."""

from .client import DistributedClient, DistributedStep
from .experiment import DistributedRun, run_distributed_experiment
from .network import Network
from .site import Site

__all__ = [
    "Network",
    "Site",
    "DistributedClient",
    "DistributedStep",
    "DistributedRun",
    "run_distributed_experiment",
]
