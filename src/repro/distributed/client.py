"""Distributed clients: each is its own two-phase-commit coordinator.

A client runs scripted transactions whose steps name (site, object,
operation, args).  Every interaction is two simulated messages (request +
reply).  At the end of a script the client runs 2PC over the participant
sites: PREPARE fan-out, vote collection, then a commit timestamp

    (max(piggybacked site clocks) + 1, transaction-name)

— strictly above every timestamp committed at any site the transaction
read, satisfying the §3.3 constraint by construction, and globally unique
by the transaction-name tiebreak.  COMMIT/ABORT fan-out completes the
protocol; decisions are retransmitted until each participant acks, so a
site that fail-stops after voting still learns the verdict once it has
recovered.  Lock refusals retry with backoff; a NO vote (site crash) or
retry exhaustion aborts and restarts with a fresh script.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Set, Tuple

from ..core.operations import Invocation
from ..sim.des import Simulator
from ..sim.metrics import Metrics
from .network import Network
from .site import Site

__all__ = ["DistributedClient", "DistributedStep"]

#: One step: (site name, object name, operation name, args tuple).
DistributedStep = Tuple[str, str, str, Tuple[Any, ...]]


class DistributedClient:
    """A scripted client/coordinator over the simulated network."""

    def __init__(
        self,
        index: int,
        simulator: Simulator,
        network: Network,
        sites: Dict[str, Site],
        script_fn: Callable[[int, random.Random], List[DistributedStep]],
        metrics: Metrics,
        rng: random.Random,
        think_time: float = 0.5,
        backoff: float = 1.0,
        max_step_retries: int = 10,
        tracer=None,
    ):
        #: Optional :class:`repro.obs.TraceBus` (coordinator-side events).
        self.tracer = tracer
        self.index = index
        self.simulator = simulator
        self.network = network
        self.sites = sites
        self.script_fn = script_fn
        self.metrics = metrics
        self.rng = rng
        self.think_time = think_time
        self.backoff = backoff
        self.max_step_retries = max_step_retries
        self._serial = 0
        self.transaction = ""
        self.script: List[DistributedStep] = []
        self.position = 0
        self.retries = 0
        self.participants: Set[str] = set()
        self.started_at = 0.0

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Kick off the first transaction after a stagger."""
        self.simulator.schedule(
            self.rng.expovariate(1.0 / self.think_time), self._begin
        )

    def _begin(self) -> None:
        self._serial += 1
        self.transaction = f"C{self.index}.{self._serial}"
        self.script = self.script_fn(self.index, self.rng)
        self.position = 0
        self.retries = 0
        self.participants = set()
        self.started_at = self.simulator.now
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "txn.begin", transaction=self.transaction, read_only=False
            )
        self._send_step()

    # -- operation phase --------------------------------------------------

    def _send_step(self) -> None:
        if self.position >= len(self.script):
            self._send_prepares()
            return
        site_name, obj, operation, args = self.script[self.position]
        site = self.sites[site_name]
        transaction = self.transaction
        invocation = Invocation(operation, args)

        def at_site() -> None:
            reply = site.handle_invoke(transaction, obj, invocation)
            self.network.send(
                "invoke-reply", lambda: self._on_invoke_reply(transaction, site_name, reply)
            )

        self.network.send("invoke", at_site)

    def _on_invoke_reply(self, transaction: str, site_name: str, reply: Tuple) -> None:
        if transaction != self.transaction:
            return  # stale reply for an earlier incarnation
        kind = reply[0]
        if kind == "ok":
            self.participants.add(site_name)
            self.metrics.operations += 1
            self.position += 1
            self.retries = 0
            self._send_step()
            return
        if kind == "conflict":
            self.metrics.conflicts += 1
        elif kind == "block":
            self.metrics.blocks += 1
        else:  # site lost us (crash tombstone): restart
            self._abort_and_restart()
            return
        self.retries += 1
        if self.retries > self.max_step_retries:
            self._abort_and_restart()
            return
        self.simulator.schedule(
            self.rng.expovariate(1.0 / self.backoff), self._send_step
        )

    # -- two-phase commit --------------------------------------------------

    def _send_prepares(self) -> None:
        if not self.participants:
            # Nothing touched (degenerate script): count and move on.
            self.metrics.committed += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "txn.commit", transaction=self.transaction, timestamp=None
                )
            self._schedule_next()
            return
        transaction = self.transaction
        votes: Dict[str, Tuple] = {}
        expected = set(self.participants)

        def make_prepare(site_name: str) -> None:
            site = self.sites[site_name]

            def at_site() -> None:
                reply = site.handle_prepare(transaction)
                self.network.send(
                    "vote", lambda: on_vote(site_name, reply)
                )

            self.network.send("prepare", at_site)

        def on_vote(site_name: str, reply: Tuple) -> None:
            if transaction != self.transaction:
                return
            votes[site_name] = reply
            if set(votes) != expected:
                return
            if all(vote[0] == "yes" for vote in votes.values()):
                number = max(vote[1] for vote in votes.values()) + 1
                self._decide_commit((number, transaction))
            else:
                self._abort_and_restart()

        for site_name in sorted(expected):
            make_prepare(site_name)

    def _decide_commit(self, timestamp: Tuple) -> None:
        transaction = self.transaction
        tracer = self.tracer
        if tracer is not None:
            # The coordinator's decision is *the* commit; later per-site
            # deliveries show up as extra events on the closed span.
            tracer.emit("txn.commit", transaction=transaction, timestamp=timestamp)
        for site_name in sorted(self.participants):
            self._deliver_completion(site_name, transaction, "commit", timestamp)
        self.metrics.committed += 1
        self.metrics.total_latency += self.simulator.now - self.started_at
        self._schedule_next()

    def _abort_and_restart(self) -> None:
        transaction = self.transaction
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("txn.abort", transaction=transaction)
        for site_name in sorted(self.participants):
            self._deliver_completion(site_name, transaction, "abort", None)
        self.metrics.aborted += 1
        self._schedule_next()

    def _deliver_completion(
        self, site_name: str, transaction: str, kind: str, timestamp: Any
    ) -> None:
        """Deliver the 2PC decision, retrying until the site acks.

        A decision is irrevocable: a participant may be down when it is
        made, but a prepared transaction holds locks (and its intentions
        sit on the stable log) until the verdict arrives, so the
        coordinator keeps retransmitting after each recovery window.
        Detached from ``self.transaction`` — retries outlive ``_begin``.
        """
        site = self.sites[site_name]

        def at_site() -> None:
            if kind == "commit":
                acked = site.handle_commit(transaction, timestamp)
            else:
                acked = site.handle_abort(transaction)
            if not acked:  # site is down: retry after a backoff
                self.simulator.schedule(
                    self.backoff,
                    lambda: self._deliver_completion(
                        site_name, transaction, kind, timestamp
                    ),
                )

        self.network.send(kind, at_site)

    def _schedule_next(self) -> None:
        self.simulator.schedule(
            self.rng.expovariate(1.0 / self.think_time), self._begin
        )
