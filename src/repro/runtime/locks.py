"""Mode-based lock tables — the appendix's ``lock_tab``, in Python.

The formal LOCK machine checks conflicts by scanning active intentions
with a predicate relation, which is exact but O(held operations).  The
Avalon/C++ appendix shows what production code does instead: classify
operations into a small set of *lock modes* and keep a mode-by-mode
conflict matrix::

    locks.define(CREDIT_LOCK, OVERDRAFT_LOCK);
    locks.define(POST_LOCK,   OVERDRAFT_LOCK);
    locks.define(DEBIT_LOCK,  DEBIT_LOCK);

:class:`LockTable` reproduces that API (``define`` / ``conflict`` /
``grant`` / ``release``) with O(modes) conflict checks, and
:func:`mode_table_from_relation` compiles a mode matrix from any conflict
relation given a mode classifier — with a soundness check that the
classification does not *lose* conflicts (two operations mapped to
non-conflicting modes must never be related).  Classifications may be
conservative (mode-level conflicts can exceed operation-level ones); the
Account classification below is exact, reproducing the appendix table
bit for bit, as the tests verify against the predicate relation.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, FrozenSet, List, Sequence, Set

from ..core.conflict import Relation
from ..core.operations import Operation

__all__ = [
    "LockTable",
    "ModeClassificationError",
    "mode_table_from_relation",
    "account_lock_mode",
    "ACCOUNT_LOCK_MODES",
]


class ModeClassificationError(ValueError):
    """The mode classifier merges operations whose conflicts differ."""


class LockTable:
    """Per-object lock bookkeeping with a symmetric mode-conflict matrix.

    The appendix API:

    * :meth:`define` — mark two modes as conflicting (symmetric);
    * :meth:`conflict` — may ``who`` take a lock in ``mode`` now?
      (True in the appendix meant "ok to grant"; here we return True when
      a *conflict exists*, the more conventional reading — the appendix's
      ``when`` guard becomes ``not table.conflict(mode, who)``);
    * :meth:`grant` — record the lock (idempotent per transaction+mode);
    * :meth:`release` — drop all locks of a transaction.
    """

    def __init__(self, obj: str = "X", tracer=None):
        self._conflicts: Set[FrozenSet[str]] = set()
        #: mode -> multiset of holders.
        self._held: Dict[str, Counter] = {}
        #: Object label used in trace events.
        self.obj = obj
        #: Optional :class:`repro.obs.TraceBus` (None = no tracing).
        self.tracer = tracer

    def define(self, mode_a: str, mode_b: str) -> None:
        """Register a (symmetric) conflict between two modes."""
        self._conflicts.add(frozenset((mode_a, mode_b)))

    def modes_conflict(self, mode_a: str, mode_b: str) -> bool:
        """Do the two modes conflict?"""
        return frozenset((mode_a, mode_b)) in self._conflicts

    def conflict(self, mode: str, who: str) -> bool:
        """Does another transaction hold a lock conflicting with ``mode``?"""
        for held_mode, holders in self._held.items():
            if not self.modes_conflict(mode, held_mode):
                continue
            for holder, count in holders.items():
                if holder != who and count > 0:
                    tracer = self.tracer
                    if tracer is not None:
                        tracer.emit(
                            "lock.conflict",
                            transaction=who,
                            obj=self.obj,
                            operation=mode,
                            holder=holder,
                            held=held_mode,
                            relation="mode-table",
                        )
                    return True
        return False

    def grant(self, mode: str, who: str) -> None:
        """Record that ``who`` holds a ``mode`` lock (counted)."""
        self._held.setdefault(mode, Counter())[who] += 1

    def release(self, who: str) -> None:
        """Drop every lock held by ``who``."""
        for holders in self._held.values():
            holders.pop(who, None)

    def holders(self, mode: str) -> List[str]:
        """Transactions currently holding ``mode`` locks."""
        return sorted(
            holder
            for holder, count in self._held.get(mode, Counter()).items()
            if count > 0
        )

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Mode → {holder: count} for every currently held lock.

        The mode-table analogue of
        :func:`repro.obs.snapshot.lock_table_snapshot`.
        """
        return {
            mode: {
                holder: count for holder, count in holders.items() if count > 0
            }
            for mode, holders in sorted(self._held.items())
            if any(count > 0 for count in holders.values())
        }


def mode_table_from_relation(
    relation: Relation,
    universe: Sequence[Operation],
    classify: Callable[[Operation], str],
    strict: bool = True,
) -> LockTable:
    """Compile a :class:`LockTable` from a conflict relation.

    Two modes conflict when *any* pair of their member operations is
    related.  With ``strict=True`` (default) the classifier must be
    *exact* over the universe: if any member pair of two modes conflicts,
    all pairs must — otherwise the mode table would refuse locks the
    relation permits, and :class:`ModeClassificationError` pinpoints the
    offending modes.  Pass ``strict=False`` to accept a conservative
    classification deliberately.
    """
    members: Dict[str, List[Operation]] = {}
    for operation in universe:
        members.setdefault(classify(operation), []).append(operation)

    table = LockTable()
    for mode_a, ops_a in members.items():
        for mode_b, ops_b in members.items():
            related = [
                (p, q)
                for p in ops_a
                for q in ops_b
                if p is not q and (relation.related(p, q) or relation.related(q, p))
            ]
            if not related:
                continue
            if strict:
                total = sum(
                    1 for p in ops_a for q in ops_b if p is not q
                )
                if len(related) != total:
                    raise ModeClassificationError(
                        f"modes {mode_a!r} and {mode_b!r} mix conflicting and"
                        f" non-conflicting operation pairs; refine the"
                        f" classifier or pass strict=False"
                    )
            table.define(mode_a, mode_b)
    return table


#: The appendix's Account lock modes.
ACCOUNT_LOCK_MODES = ("CREDIT_LOCK", "POST_LOCK", "DEBIT_LOCK", "OVERDRAFT_LOCK")


def account_lock_mode(operation: Operation) -> str:
    """The appendix's classification: Debit splits by its *result*."""
    if operation.name == "Credit":
        return "CREDIT_LOCK"
    if operation.name == "Post":
        return "POST_LOCK"
    if operation.name == "Debit":
        return "DEBIT_LOCK" if operation.result == "Ok" else "OVERDRAFT_LOCK"
    raise ValueError(f"not an Account operation: {operation}")
