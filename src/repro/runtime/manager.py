"""The transaction manager: objects, timestamps, atomic commitment.

This module plays the role the Avalon runtime plays for the appendix's
Account implementation: it creates hybrid atomic objects, hands out
transaction identities, collects which objects each transaction touches,
obtains commit timestamps satisfying the Section 3.3 constraint, and
delivers completion events to every touched object (atomic commitment —
the paper assumes a standard commit protocol [7, 15, 19]; here the manager
*is* the coordinator and delivery is atomic by construction).

Each managed object is a :class:`~repro.core.compaction.CompactingLockMachine`
(or the plain machine, on request) running the hybrid protocol — or any
baseline protocol from :mod:`repro.protocols`, since those merely use a
larger conflict relation on the same machine.

The manager can also record the *global* history of accepted events so a
test can feed it to the Section 3 checkers.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from ..adts.base import ADT
from ..core.compaction import NEG_INFINITY, CompactingLockMachine
from ..core.conflict import Relation
from ..core.errors import LockConflict, ProtocolError, TransactionAborted, WouldBlock
from ..core.events import AbortEvent, CommitEvent, InvocationEvent, ResponseEvent
from ..core.history import History
from ..core.lock_machine import LockMachine
from ..core.operations import Invocation, Operation
from ..core.timestamps import MonotoneTimestampGenerator, TimestampGenerator
from ..protocols.base import HYBRID, ProtocolSpec
from .transaction import Status, Transaction

__all__ = ["ManagedObject", "TransactionManager"]


class ManagedObject:
    """A named hybrid atomic object owned by a :class:`TransactionManager`."""

    def __init__(
        self,
        name: str,
        adt: ADT,
        conflict: Relation,
        compacting: bool = True,
    ):
        self.name = name
        self.adt = adt
        machine_cls = CompactingLockMachine if compacting else LockMachine
        self.machine = machine_cls(adt.spec, conflict, obj=name)

    def max_committed_timestamp(self) -> Any:
        """The largest commit timestamp this object has observed.

        This is the value a transaction "may have seen" after completing an
        operation here — the input to the timestamp generator's bound.
        """
        machine = self.machine
        if isinstance(machine, CompactingLockMachine):
            return machine.clock
        committed = machine.committed_transactions
        return max(committed.values()) if committed else NEG_INFINITY

    def snapshot(self) -> Any:
        """A committed-state snapshot (one abstract state), for inspection.

        Picks the representative state deterministically when the
        specification's non-determinism leaves several.
        """
        machine = self.machine
        if isinstance(machine, CompactingLockMachine):
            states = machine.spec.run_from(
                machine.version_states, machine.committed_state()
            )
        else:
            states = machine.spec.run(machine.committed_state())
        return sorted(states, key=repr)[0]


class TransactionManager:
    """Coordinates transactions across a set of hybrid atomic objects.

    Parameters
    ----------
    generator:
        Commit-timestamp generator; defaults to a monotone logical clock.
    record_history:
        When True, every accepted event is appended to a global log
        retrievable via :meth:`history` — used by the verification tests.
        Leave off for long simulations.
    compacting:
        Build objects on the Section 6 compacting machine (default) or the
        plain machine.
    wal:
        Optional :class:`~repro.recovery.wal.WriteAheadLog`.  When given,
        object creations, accepted operations, and completions (with
        committed intentions) are logged durably, and the manager can be
        rebuilt after a crash with
        :func:`repro.recovery.recover_manager`.
    tracer:
        Optional :class:`~repro.obs.TraceBus`.  When given, the manager
        emits ``txn.begin``/``txn.commit``/``txn.abort`` and
        ``wal.append`` trace events and propagates the bus to every
        machine it creates (``lock.conflict``, ``compaction.advance``,
        …).  None (the default) keeps every hot path a single
        attribute check.
    """

    def __init__(
        self,
        generator: Optional[TimestampGenerator] = None,
        record_history: bool = False,
        compacting: bool = True,
        wal: Optional[Any] = None,
        tracer: Optional[Any] = None,
        site: Optional[str] = None,
    ):
        self._generator = generator or MonotoneTimestampGenerator()
        self._objects: Dict[str, ManagedObject] = {}
        self._transactions: Dict[str, Transaction] = {}
        #: Transactions in 2PC's prepared state: intentions force-written,
        #: locks held, awaiting the coordinator's verdict.
        self._prepared: Dict[str, Transaction] = {}
        self._names = itertools.count(1)
        self._record = record_history
        self._events: List[Any] = []
        self._compacting = compacting
        self.wal = wal
        self.tracer = tracer
        #: Site label stamped on prepare/commit trace events when this
        #: manager is one shard of a multi-process pool (None: standalone).
        self.site = site
        if wal is not None and len(wal) == 0:
            from ..recovery.wal import meta_record

            shards = getattr(self._generator, "shards", None)
            wal.append(
                meta_record(
                    "manager",
                    site if site is not None else "manager",
                    compacting=compacting,
                    shard=getattr(self._generator, "shard", None),
                    shards=shards,
                )
            )
            if tracer is not None:
                tracer.emit("wal.append", record="meta")

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def create_object(
        self,
        name: str,
        adt: ADT,
        protocol: ProtocolSpec = HYBRID,
        conflict: Optional[Relation] = None,
    ) -> ManagedObject:
        """Create and register a managed object.

        ``conflict`` overrides the protocol's conflict relation when given
        (e.g. to run a hand-tuned table).
        """
        if name in self._objects:
            raise ValueError(f"object {name!r} already exists")
        relation = conflict if conflict is not None else protocol.conflict_for(adt)
        managed = ManagedObject(name, adt, relation, compacting=self._compacting)
        managed.machine.tracer = self.tracer
        self._objects[name] = managed
        if self.tracer is not None:
            self.tracer.emit(
                "obj.create",
                obj=name,
                adt=adt.name,
                protocol=protocol.name,
                relation=relation.name,
                initial=adt.spec.initial_states(),
            )
        if self.wal is not None:
            from ..recovery.wal import create_record

            # A conflict override is code, not data: recovery rebuilds the
            # relation from the protocol name (pass a catalog otherwise).
            self.wal.append(
                create_record(name, adt.name, protocol.name, adt.spec.initial_states())
            )
            if self.tracer is not None:
                self.tracer.emit("wal.append", record="create", obj=name)
        return managed

    def object(self, name: str) -> ManagedObject:
        """Look up a managed object by name."""
        return self._objects[name]

    @property
    def objects(self) -> Dict[str, ManagedObject]:
        """All managed objects by name."""
        return dict(self._objects)

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def begin(self, name: Optional[str] = None, _quiet: bool = False) -> Transaction:
        """Start a new transaction."""
        if name is None:
            name = f"T{next(self._names)}"
        if name in self._transactions:
            raise ValueError(f"transaction {name!r} already exists")
        transaction = Transaction(name)
        self._transactions[name] = transaction
        tracer = self.tracer
        if tracer is not None and not _quiet:
            tracer.emit("txn.begin", transaction=name, read_only=False)
        return transaction

    def begin_readonly(self, name: Optional[str] = None) -> Transaction:
        """Start a multiversion *read-only* transaction (Section 7.1).

        Its serialization timestamp is chosen now, at start; reads observe
        the committed state as of that timestamp, take no locks, never
        block updaters, and never abort.  Requires a monotone timestamp
        generator (future updaters must commit above the start timestamp
        for the snapshot to be complete).
        """
        if not isinstance(self._generator, MonotoneTimestampGenerator):
            raise ProtocolError(
                "read-only transactions require a monotone timestamp"
                " generator: a skewed generator could commit an updater"
                " below the reader's start timestamp"
            )
        transaction = self.begin(name, _quiet=True)
        transaction.read_only = True
        transaction.timestamp = self._generator.commit_timestamp(transaction.name)
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "txn.begin",
                transaction=transaction.name,
                read_only=True,
                timestamp=transaction.timestamp,
            )
        # Pin the snapshot everywhere now — the read set is not known in
        # advance, and an object must not fold commits above the reader's
        # timestamp into its version while the reader lives.
        for managed in self._objects.values():
            machine = managed.machine
            if isinstance(machine, CompactingLockMachine):
                machine.pin(transaction.name, transaction.timestamp)
        return transaction

    def invoke(
        self, transaction: Transaction, obj: str, operation: str, *args: Any
    ) -> Any:
        """Execute one operation; returns its result.

        Raises :class:`LockConflict` when another active transaction holds
        a conflicting lock (retry later), :class:`WouldBlock` when a
        partial operation has no legal outcome yet, and
        :class:`TransactionAborted` when the transaction is not active.
        """
        self._require_active(transaction)
        managed = self._objects[obj]
        invocation = Invocation(operation, args)
        if transaction.read_only:
            result = self._read_only_invoke(transaction, managed, invocation)
            transaction.touched.add(obj)
            transaction.operations += 1
            if self._record:
                self._events.append(
                    InvocationEvent(transaction.name, obj, invocation)
                )
                self._events.append(ResponseEvent(transaction.name, obj, result))
            return result
        result = managed.machine.execute(transaction.name, invocation)
        transaction.touched.add(obj)
        transaction.operations += 1
        if self.wal is not None:
            from ..recovery.wal import invoke_record, respond_record

            self.wal.append(invoke_record(transaction.name, obj, invocation))
            self.wal.append(respond_record(transaction.name, obj, result))
            if self.tracer is not None:
                self.tracer.emit(
                    "wal.append", record="invoke+respond", transaction=transaction.name
                )
        # Section 3.3 / Section 6: after a response at X the transaction's
        # eventual commit timestamp must exceed every timestamp committed
        # at X — feed the object's clock into the generator's bound.
        observed = managed.max_committed_timestamp()
        if observed is not NEG_INFINITY:
            self._generator.observe(transaction.name, observed)
        if self._record:
            self._events.append(
                InvocationEvent(transaction.name, obj, invocation)
            )
            self._events.append(ResponseEvent(transaction.name, obj, result))
        return result

    def _read_only_invoke(
        self, transaction: Transaction, managed: ManagedObject, invocation: Invocation
    ) -> Any:
        """Serve a read at the transaction's start timestamp, lock-free."""
        machine = managed.machine
        if not isinstance(machine, CompactingLockMachine):
            raise ProtocolError(
                "read-only transactions require compacting objects"
                " (multiversion reads use the horizon machinery)"
            )
        if not machine.has_pin(transaction.name):
            # The object was created after the reader began; its snapshot
            # at the reader's timestamp may already be unaddressable.
            raise ProtocolError(
                f"object {managed.name!r} was created after read-only"
                f" transaction {transaction.name} began"
            )
        states = machine.read_view_states(transaction.timestamp)
        results = machine.spec.results_for(states, invocation)
        if not results:
            raise WouldBlock(
                f"{invocation} has no legal outcome in the snapshot"
            )
        result = results[0]
        operation = Operation(invocation, result)
        if not managed.adt.is_read(operation):
            raise ProtocolError(
                f"{operation} is not a read operation; read-only"
                " transactions may only observe"
            )
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "txn.invoke",
                transaction=transaction.name,
                obj=managed.name,
                operation=invocation.name,
                args=invocation.args,
                read_only=True,
            )
            tracer.emit(
                "txn.respond",
                transaction=transaction.name,
                obj=managed.name,
                result=result,
                read_only=True,
            )
        return result

    def commit(self, transaction: Transaction) -> Any:
        """Commit: choose a timestamp and deliver it to all touched objects.

        Returns the commit timestamp.  Delivery is atomic: either every
        touched object learns ``commit(t)`` or none does (the manager is a
        single-site coordinator, so the paper's assumed commitment protocol
        degenerates to a loop).

        Read-only transactions just release their pins; their timestamp
        was fixed at start.
        """
        self._require_active(transaction)
        if transaction.read_only:
            return self._finish_readonly(transaction, commit=True)
        timestamp = self._generator.commit_timestamp(transaction.name)
        if self.wal is not None:
            from ..recovery.wal import commit_record

            # Force-write the redo entry — the committed intentions lists —
            # before delivering the commit (which may fold them away).
            intentions = {
                obj: self._objects[obj].machine.intentions(transaction.name)
                for obj in sorted(transaction.touched)
            }
            self.wal.append(commit_record(transaction.name, timestamp, intentions))
            if self.tracer is not None:
                self.tracer.emit(
                    "wal.append", record="commit", transaction=transaction.name
                )
        tracer = self.tracer
        if tracer is not None:
            # Emit at decision time, *before* delivery: delivering the
            # commit may immediately fold the intentions (compaction
            # events), and those must trail the commit they depend on.
            tracer.emit(
                "txn.commit",
                transaction=transaction.name,
                timestamp=timestamp,
                objects=sorted(transaction.touched),
            )
        for obj in sorted(transaction.touched):
            self._objects[obj].machine.commit(transaction.name, timestamp)
            if self._record:
                self._events.append(CommitEvent(transaction.name, obj, timestamp))
        transaction.status = Status.COMMITTED
        transaction.timestamp = timestamp
        self._finish(transaction)
        return timestamp

    def abort(self, transaction: Transaction) -> None:
        """Abort: deliver abort events to all touched objects."""
        self._require_active(transaction)
        if transaction.read_only:
            self._finish_readonly(transaction, commit=False)
            return
        if self.wal is not None and transaction.touched:
            from ..recovery.wal import abort_record

            self.wal.append(abort_record(transaction.name))
            if self.tracer is not None:
                self.tracer.emit(
                    "wal.append", record="abort", transaction=transaction.name
                )
        for obj in sorted(transaction.touched):
            self._objects[obj].machine.abort(transaction.name)
            if self._record:
                self._events.append(AbortEvent(transaction.name, obj))
        transaction.status = Status.ABORTED
        self._finish(transaction)
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "txn.abort",
                transaction=transaction.name,
                objects=sorted(transaction.touched),
            )

    def _finish_readonly(self, transaction: Transaction, commit: bool) -> Any:
        """Release pins and record the outcome of a read-only transaction."""
        for name, managed in self._objects.items():
            machine = managed.machine
            if isinstance(machine, CompactingLockMachine):
                machine.unpin(transaction.name)
        for obj in sorted(transaction.touched):
            if self._record:
                if commit:
                    self._events.append(
                        CommitEvent(transaction.name, obj, transaction.timestamp)
                    )
                else:
                    self._events.append(AbortEvent(transaction.name, obj))
        transaction.status = Status.COMMITTED if commit else Status.ABORTED
        self._finish(transaction)
        tracer = self.tracer
        if tracer is not None:
            if commit:
                tracer.emit(
                    "txn.commit",
                    transaction=transaction.name,
                    timestamp=transaction.timestamp,
                    objects=sorted(transaction.touched),
                    read_only=True,
                )
            else:
                tracer.emit(
                    "txn.abort",
                    transaction=transaction.name,
                    objects=sorted(transaction.touched),
                    read_only=True,
                )
        return transaction.timestamp

    def _finish(self, transaction: Transaction) -> None:
        """Drop per-transaction bookkeeping once the outcome is decided.

        The registry must not grow with history: a long-running manager
        that kept every completed :class:`Transaction` would leak one
        entry per transaction forever.  Completed transactions are popped
        here; :meth:`_require_active` still reports them as
        committed/aborted (the handle itself knows its status).
        """
        self._transactions.pop(transaction.name, None)
        self._prepared.pop(transaction.name, None)
        self._generator.forget(transaction.name)

    def _require_active(self, transaction: Transaction) -> None:
        if self._transactions.get(transaction.name) is not transaction:
            if not transaction.is_active:
                # Completed transactions are popped from the registry;
                # a late commit/abort/invoke still gets the honest answer.
                raise TransactionAborted(
                    f"{transaction.name} is {transaction.status.value}"
                )
            raise ProtocolError(f"unknown transaction {transaction.name!r}")
        if not transaction.is_active:
            raise TransactionAborted(
                f"{transaction.name} is {transaction.status.value}"
            )

    def transaction(self, name: str) -> Optional[Transaction]:
        """The live (active or prepared) transaction registered as ``name``."""
        return self._transactions.get(name)

    def install_prepared(self, transaction: Transaction) -> None:
        """Register a recovery-resurrected prepared transaction.

        The sanctioned mutation point for :mod:`repro.recovery.recovery`:
        the transaction's intentions were already replayed into the
        machines (locks held), so it re-enters the registry in 2PC's
        prepared state, awaiting ``commit_prepared`` or ``abort``.
        """
        self._transactions[transaction.name] = transaction
        self._prepared[transaction.name] = transaction

    def prepared_transactions(self) -> List[str]:
        """Names of transactions in 2PC's prepared state (sorted)."""
        return sorted(self._prepared)

    # ------------------------------------------------------------------
    # Two-phase commit (participant role, for the sharded pool)
    # ------------------------------------------------------------------

    def prepare(self, transaction: Transaction) -> int:
        """2PC phase one: force-write the intentions and return the vote.

        The vote is this shard's timestamp floor — every commit this
        transaction observed here, and everything committed here at all,
        sits at or below it, so a coordinator deciding strictly above
        every participant's vote satisfies §3.3 everywhere (the paper's
        "piggyback timestamp information on the messages of a commit
        protocol").  After ``prepare`` the transaction keeps its locks
        and survives :meth:`crash` — only the coordinator's verdict
        (:meth:`commit_prepared` / :meth:`abort`) releases them.
        """
        self._require_active(transaction)
        if transaction.read_only:
            raise ProtocolError("read-only transactions do not prepare")
        generator = self._generator
        vote_fn = getattr(generator, "vote", None)
        vote = int(vote_fn(transaction.name)) if vote_fn is not None else 0
        if self.wal is not None:
            from ..recovery.wal import prepare_record

            intentions = {
                obj: self._objects[obj].machine.intentions(transaction.name)
                for obj in sorted(transaction.touched)
            }
            self.wal.append(prepare_record(transaction.name, vote, intentions))
            if self.tracer is not None:
                self.tracer.emit(
                    "wal.append",
                    record="prepare",
                    transaction=transaction.name,
                    site=self.site,
                )
        self._prepared[transaction.name] = transaction
        return vote

    def commit_prepared(self, transaction: Transaction, timestamp: int) -> int:
        """2PC phase two: commit at the coordinator-decided timestamp.

        ``timestamp`` must exceed this shard's vote (the coordinator
        decided above every vote); the local generator folds it in so
        later local commits stay above it.
        """
        self._require_active(transaction)
        if transaction.name not in self._prepared:
            raise ProtocolError(
                f"{transaction.name} was never prepared on this shard"
            )
        if self.wal is not None:
            from ..recovery.wal import commit_record

            intentions = {
                obj: self._objects[obj].machine.intentions(transaction.name)
                for obj in sorted(transaction.touched)
            }
            self.wal.append(commit_record(transaction.name, timestamp, intentions))
            if self.tracer is not None:
                self.tracer.emit(
                    "wal.append", record="commit", transaction=transaction.name
                )
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "txn.commit",
                transaction=transaction.name,
                timestamp=timestamp,
                objects=sorted(transaction.touched),
                site=self.site,
            )
        for obj in sorted(transaction.touched):
            self._objects[obj].machine.commit(transaction.name, timestamp)
            if self._record:
                self._events.append(CommitEvent(transaction.name, obj, timestamp))
        observe_decision = getattr(self._generator, "observe_decision", None)
        if observe_decision is not None:
            observe_decision(timestamp)
        transaction.status = Status.COMMITTED
        transaction.timestamp = timestamp
        self._finish(transaction)
        return timestamp

    def checkpoint(self, store: Any) -> Any:
        """Snapshot every object's collapsed version into ``store`` and
        truncate the WAL prefix the horizon proves redundant.

        Requires a WAL and compacting objects; returns the
        :class:`~repro.recovery.checkpoint.Checkpoint`.
        """
        if self.wal is None:
            raise ProtocolError("checkpointing requires a write-ahead log")
        if not self._compacting:
            raise ProtocolError(
                "checkpointing requires compacting objects (the version is"
                " the checkpointable state)"
            )
        from ..recovery.checkpoint import take_checkpoint, truncate_wal

        machines = {name: m.machine for name, m in self._objects.items()}
        checkpoint = take_checkpoint(machines)
        store.save(checkpoint)
        truncate_wal(self.wal, machines)
        return checkpoint

    def crash(self) -> List[str]:
        """Simulate a site crash; returns the aborted transaction names.

        The paper's recovery story is intentions-based: uncommitted
        intentions are volatile, the committed state (here the compacted
        version plus committed intentions, standing in for stable
        storage) survives.  A crash therefore aborts every active
        transaction — exactly the abort events the formal model already
        handles — and leaves committed effects untouched.  Read-only
        transactions lose their pins like everyone else.
        """
        victims = [
            transaction
            for transaction in self._transactions.values()
            if transaction.is_active and transaction.name not in self._prepared
        ]
        for transaction in victims:
            self.abort(transaction)
        return [transaction.name for transaction in victims]

    # ------------------------------------------------------------------
    # Convenience: run a transaction body with retry
    # ------------------------------------------------------------------

    def run_transaction(
        self,
        body: Callable[["TransactionContext"], Any],
        max_attempts: int = 25,
        name: Optional[str] = None,
    ) -> Any:
        """Run ``body`` as a transaction, retrying on lock conflicts.

        ``body`` receives a :class:`TransactionContext` and may call
        ``ctx.invoke(obj, op, *args)``.  On :class:`LockConflict` or
        :class:`WouldBlock` the whole transaction is aborted and restarted
        (simple and livelock-free under a fair scheduler); after
        ``max_attempts`` failures the last error propagates.
        """
        error: Optional[Exception] = None
        for attempt in range(max_attempts):
            suffix = f"#{attempt}" if attempt else ""
            transaction = self.begin(None if name is None else name + suffix)
            context = TransactionContext(self, transaction)
            try:
                value = body(context)
            except (LockConflict, WouldBlock) as exc:
                self.abort(transaction)
                error = exc
                continue
            except BaseException:
                if transaction.is_active:
                    self.abort(transaction)
                raise
            self.commit(transaction)
            return value
        assert error is not None
        raise error

    # ------------------------------------------------------------------
    # Verification support
    # ------------------------------------------------------------------

    def history(self) -> History:
        """The recorded global history (requires ``record_history=True``)."""
        if not self._record:
            raise ProtocolError("manager was created with record_history=False")
        return History(self._events, validate=False)

    def specs(self) -> Dict[str, Any]:
        """Object-name → serial-spec map, as the atomicity checkers want."""
        return {name: managed.adt.spec for name, managed in self._objects.items()}


class TransactionContext:
    """What a :meth:`TransactionManager.run_transaction` body sees."""

    def __init__(self, manager: TransactionManager, transaction: Transaction):
        self._manager = manager
        #: The underlying transaction record (exposed for tests/metrics).
        self.transaction = transaction

    def invoke(self, obj: str, operation: str, *args: Any) -> Any:
        """Execute one operation within this transaction."""
        return self._manager.invoke(self.transaction, obj, operation, *args)
