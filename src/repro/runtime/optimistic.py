"""Type-specific *optimistic* concurrency control (library extension).

The paper's Discussion (Section 7.2) notes that dependency relations
"form the basis for validation in type-specific optimistic concurrency
control mechanisms" (Herlihy's 1990 TODS paper, [9]).  This module builds
that mechanism on the same substrate as the locking runtime:

* transactions execute **without locks**, reading a view made of the
  committed state plus their own intentions;
* at commit, each touched object *validates* the transaction against the
  operations committed since it started:

  - **fast path** (dependency check): if no operation of the transaction
    depends on any newly committed operation, its old view is still a
    dependency-closed view of the new committed state and Lemma 7
    guarantees legality — commit without replay;
  - **slow path** (replay): otherwise re-run the transaction's intentions
    after the current committed state; if every operation is still legal
    with the same results, the interleaving is serializable anyway;

* validation failure aborts the transaction (:class:`ValidationFailed`),
  the optimistic analogue of a lock refusal.

Commit timestamps are issued monotonically at commit, so the
serialization order is the commit order and validation against
"committed since start" is exactly what hybrid atomicity needs.  The
verification tests check recorded histories with the Section 3 machinery,
and the crossover benchmark compares optimistic and locking engines under
rising contention.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from ..adts.base import ADT
from ..core.conflict import Relation
from ..core.errors import ProtocolError, ReproError, TransactionAborted, WouldBlock
from ..core.events import AbortEvent, CommitEvent, InvocationEvent, ResponseEvent
from ..core.history import History
from ..core.operations import Invocation, Operation, OperationSequence
from ..core.timestamps import LogicalClock
from .transaction import Status, Transaction

__all__ = ["ValidationFailed", "OptimisticObject", "OptimisticTransactionManager"]


class ValidationFailed(ReproError):
    """Commit-time validation found a dependency on a later-committed
    operation that replay could not reconcile; the transaction aborts."""

    def __init__(self, message: str = "", obj: str = ""):
        super().__init__(message or "optimistic validation failed")
        #: Object at which validation failed.
        self.obj = obj


class OptimisticObject:
    """One object under optimistic control.

    Keeps the committed operation sequence (compacted into a state-set
    version plus a tail so validation windows stay addressable), each
    active transaction's intentions, and the committed-sequence index at
    which each transaction started.
    """

    def __init__(self, name: str, adt: ADT, dependency: Optional[Relation] = None):
        self.name = name
        self.adt = adt
        self.spec = adt.spec
        #: Directional dependency relation used for fast-path validation.
        self.dependency = dependency if dependency is not None else adt.dependency
        self._committed: List[Operation] = []
        #: Which transaction committed each entry of ``_committed`` —
        #: lets a failed validation name the commit that invalidated it.
        self._committed_by: List[str] = []
        self._intentions: Dict[str, List[Operation]] = {}
        self._start_index: Dict[str, int] = {}
        #: Fast/slow path counters (exposed for the benchmarks).
        self.fast_validations = 0
        self.replay_validations = 0
        self.failed_validations = 0
        #: Optional :class:`repro.obs.TraceBus`; None keeps tracing free.
        self.tracer = None

    # ------------------------------------------------------------------

    def committed_sequence(self) -> OperationSequence:
        """The committed operations, in commit (= timestamp) order."""
        return tuple(self._committed)

    def intentions(self, transaction: str) -> OperationSequence:
        """Operations executed so far by the transaction at this object."""
        return tuple(self._intentions.get(transaction, ()))

    def invoke(self, transaction: str, invocation: Invocation) -> Any:
        """Execute without locking: choose a result legal in the view.

        Raises :class:`WouldBlock` when the view enables no outcome.
        """
        if transaction not in self._start_index:
            self._start_index[transaction] = len(self._committed)
        mine = self._intentions.setdefault(transaction, [])
        view = self._committed[: self._start_index[transaction]] + mine
        states = self.spec.run(view)
        results = self.spec.results_for(states, invocation)
        if not results:
            raise WouldBlock(f"{invocation} has no legal outcome in the view")
        result = results[0]
        mine.append(Operation(invocation, result))
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "txn.invoke",
                transaction=transaction,
                obj=self.name,
                operation=invocation.name,
                args=invocation.args,
            )
            tracer.emit(
                "txn.respond",
                transaction=transaction,
                obj=self.name,
                result=result,
            )
        return result

    def validate(self, transaction: str) -> bool:
        """Commit-time certification against newly committed operations."""
        tracer = self.tracer
        mine = self._intentions.get(transaction, [])
        start = self._start_index.get(transaction, len(self._committed))
        new_ops = self._committed[start:]
        if tracer is not None:
            tracer.emit(
                "validation.begin",
                transaction=transaction,
                obj=self.name,
                new_commits=len(new_ops),
            )
        if not new_ops or not mine:
            self.fast_validations += 1
            if tracer is not None:
                tracer.emit(
                    "validation.success",
                    transaction=transaction,
                    obj=self.name,
                    path="fast",
                )
            return True
        # Fast path: nothing of mine depends on anything new (Lemma 7).
        if not any(
            self.dependency.related(q, p) for q in mine for p in new_ops
        ):
            self.fast_validations += 1
            if tracer is not None:
                tracer.emit(
                    "validation.success",
                    transaction=transaction,
                    obj=self.name,
                    path="fast",
                )
            return True
        # Slow path: replay after the full committed sequence.
        self.replay_validations += 1
        if self.spec.run(tuple(self._committed) + tuple(mine)):
            if tracer is not None:
                tracer.emit(
                    "validation.success",
                    transaction=transaction,
                    obj=self.name,
                    path="replay",
                )
            return True
        self.failed_validations += 1
        if tracer is not None:
            invalidated_by = None
            culprit = None
            for index, new_op in enumerate(new_ops):
                if any(self.dependency.related(q, new_op) for q in mine):
                    invalidated_by = self._committed_by[start + index]
                    culprit = str(new_op)
                    break
            tracer.emit(
                "validation.invalidated",
                transaction=transaction,
                obj=self.name,
                invalidated_by=invalidated_by,
                operation=culprit,
            )
        return False

    def apply_commit(self, transaction: str) -> None:
        """Fold a validated transaction's intentions into the committed
        sequence (commit order = timestamp order)."""
        mine = self._intentions.pop(transaction, [])
        self._committed.extend(mine)
        self._committed_by.extend([transaction] * len(mine))
        self._start_index.pop(transaction, None)

    def discard(self, transaction: str) -> None:
        """Drop an aborted transaction's footprint."""
        self._intentions.pop(transaction, None)
        self._start_index.pop(transaction, None)

    def snapshot(self) -> Any:
        """A committed-state snapshot (deterministic representative)."""
        states = self.spec.run(tuple(self._committed))
        return sorted(states, key=repr)[0]


class OptimisticTransactionManager:
    """Drop-in alternative to :class:`~repro.runtime.TransactionManager`
    running the optimistic engine.

    Same surface: ``create_object`` / ``begin`` / ``invoke`` / ``commit``
    / ``abort`` / ``run_transaction`` / ``history`` / ``specs``.  Commit
    raises :class:`ValidationFailed` (after aborting the transaction) when
    certification fails at any touched object — the atomic-commitment
    analogue of a coordinator voting "no".
    """

    def __init__(self, record_history: bool = False, tracer=None):
        self._objects: Dict[str, OptimisticObject] = {}
        self._transactions: Dict[str, Transaction] = {}
        self._names = itertools.count(1)
        self._clock = LogicalClock()
        self._record = record_history
        self._events: List[Any] = []
        self.tracer = tracer

    # -- setup ----------------------------------------------------------

    def create_object(
        self, name: str, adt: ADT, dependency: Optional[Relation] = None, **_ignored
    ) -> OptimisticObject:
        """Create an optimistic object (``dependency`` overrides the
        fast-path relation; extra kwargs accepted for interface parity)."""
        if name in self._objects:
            raise ValueError(f"object {name!r} already exists")
        managed = OptimisticObject(name, adt, dependency)
        managed.tracer = self.tracer
        self._objects[name] = managed
        if self.tracer is not None:
            self.tracer.emit(
                "obj.create",
                obj=name,
                adt=adt.name,
                protocol="optimistic",
                relation=managed.dependency.name,
                initial=adt.spec.initial_states(),
            )
        return managed

    def object(self, name: str) -> OptimisticObject:
        """Look up an object by name."""
        return self._objects[name]

    @property
    def objects(self) -> Dict[str, OptimisticObject]:
        """All objects by name."""
        return dict(self._objects)

    # -- transaction lifecycle -------------------------------------------

    def begin(self, name: Optional[str] = None) -> Transaction:
        """Start a new transaction."""
        if name is None:
            name = f"T{next(self._names)}"
        if name in self._transactions:
            raise ValueError(f"transaction {name!r} already exists")
        transaction = Transaction(name)
        self._transactions[name] = transaction
        if self.tracer is not None:
            self.tracer.emit("txn.begin", transaction=name, read_only=False)
        return transaction

    def invoke(
        self, transaction: Transaction, obj: str, operation: str, *args: Any
    ) -> Any:
        """Execute one operation without locking."""
        self._require_active(transaction)
        invocation = Invocation(operation, args)
        result = self._objects[obj].invoke(transaction.name, invocation)
        transaction.touched.add(obj)
        transaction.operations += 1
        if self._record:
            self._events.append(InvocationEvent(transaction.name, obj, invocation))
            self._events.append(ResponseEvent(transaction.name, obj, result))
        return result

    def commit(self, transaction: Transaction) -> Any:
        """Validate at every touched object, then commit atomically.

        On validation failure the transaction is aborted everywhere and
        :class:`ValidationFailed` is raised.
        """
        self._require_active(transaction)
        for obj in sorted(transaction.touched):
            if not self._objects[obj].validate(transaction.name):
                self._abort_internal(transaction)
                raise ValidationFailed(
                    f"{transaction.name} invalidated by a concurrent commit"
                    f" at {obj}",
                    obj=obj,
                )
        timestamp = self._clock.tick()
        if self.tracer is not None:
            self.tracer.emit(
                "txn.commit",
                transaction=transaction.name,
                timestamp=timestamp,
                objects=sorted(transaction.touched),
            )
        for obj in sorted(transaction.touched):
            self._objects[obj].apply_commit(transaction.name)
            if self._record:
                self._events.append(CommitEvent(transaction.name, obj, timestamp))
        transaction.status = Status.COMMITTED
        transaction.timestamp = timestamp
        return timestamp

    def abort(self, transaction: Transaction) -> None:
        """Abort: discard the transaction's footprint everywhere."""
        self._require_active(transaction)
        self._abort_internal(transaction)

    def _abort_internal(self, transaction: Transaction) -> None:
        for obj in sorted(transaction.touched):
            self._objects[obj].discard(transaction.name)
            if self._record:
                self._events.append(AbortEvent(transaction.name, obj))
        transaction.status = Status.ABORTED
        if self.tracer is not None:
            self.tracer.emit(
                "txn.abort",
                transaction=transaction.name,
                objects=sorted(transaction.touched),
            )

    def _require_active(self, transaction: Transaction) -> None:
        if self._transactions.get(transaction.name) is not transaction:
            raise ProtocolError(f"unknown transaction {transaction.name!r}")
        if not transaction.is_active:
            raise TransactionAborted(
                f"{transaction.name} is {transaction.status.value}"
            )

    # -- convenience ------------------------------------------------------

    def run_transaction(
        self, body, max_attempts: int = 25, name: Optional[str] = None
    ) -> Any:
        """Run ``body`` with restart-on-validation-failure semantics."""
        from .manager import TransactionContext

        error: Optional[Exception] = None
        for attempt in range(max_attempts):
            suffix = f"#{attempt}" if attempt else ""
            transaction = self.begin(None if name is None else name + suffix)
            context = TransactionContext(self, transaction)
            try:
                value = body(context)
                self.commit(transaction)
                return value
            except (ValidationFailed, WouldBlock) as exc:
                if transaction.is_active:
                    self.abort(transaction)
                error = exc
                continue
            except BaseException:
                if transaction.is_active:
                    self.abort(transaction)
                raise
        assert error is not None
        raise error

    # -- verification -----------------------------------------------------

    def history(self) -> History:
        """The recorded global history (requires ``record_history=True``)."""
        if not self._record:
            raise ProtocolError("manager was created with record_history=False")
        return History(self._events, validate=False)

    def specs(self) -> Dict[str, Any]:
        """Object-name → serial-spec map for the atomicity checkers."""
        return {name: managed.spec for name, managed in self._objects.items()}
