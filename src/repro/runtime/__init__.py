"""Runtime layer: transaction manager over hybrid atomic objects."""

from .manager import ManagedObject, TransactionContext, TransactionManager
from .optimistic import (
    OptimisticObject,
    OptimisticTransactionManager,
    ValidationFailed,
)
from .transaction import Status, Transaction

__all__ = [
    "TransactionManager",
    "TransactionContext",
    "ManagedObject",
    "Transaction",
    "Status",
    "OptimisticTransactionManager",
    "OptimisticObject",
    "ValidationFailed",
]
