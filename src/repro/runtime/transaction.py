"""Transaction handles (the appendix's ``trans_id`` analogue).

A :class:`Transaction` is the manager-side record for one transaction:
identity, status, the set of objects it has touched (needed for atomic
commitment), and the commit timestamp once chosen.  User code never
constructs these directly; use :meth:`repro.runtime.TransactionManager.begin`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Set

__all__ = ["Status", "Transaction"]


class Status(enum.Enum):
    """Lifecycle of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """Manager-side transaction record.

    Attributes
    ----------
    name:
        Unique transaction identifier (appears in events and histories).
    status:
        Current lifecycle state.
    touched:
        Names of objects at which the transaction executed operations;
        these are exactly the objects that must learn of its completion.
    timestamp:
        The commit timestamp — set at commit for update transactions, at
        *start* for read-only transactions (Section 7.1's hybrid of
        dynamic and static atomicity).
    operations:
        Count of operations executed (for metrics).
    read_only:
        True for multiversion read-only transactions: they read the
        committed state as of their start timestamp, take no locks, and
        never block or abort updaters.
    """

    name: str
    status: Status = Status.ACTIVE
    touched: Set[str] = field(default_factory=set)
    timestamp: Optional[Any] = None
    operations: int = 0
    read_only: bool = False

    @property
    def is_active(self) -> bool:
        """True while the transaction may still execute operations."""
        return self.status is Status.ACTIVE

    def __str__(self) -> str:
        return self.name
