"""Crash recovery: rebuild machines from checkpoint + log replay.

Recovery is presumed-abort and intentions-based, mirroring the paper's
resilient-objects framing (and the Avalon/C++ appendix): committed
intentions lists are the redo log, uncommitted intentions are volatile
and discarded, and 2PC-prepared transactions — whose intentions were
force-written by :func:`repro.recovery.wal.prepare_record` — come back
*active*, still holding their locks, awaiting the coordinator's verdict.

The driver replays commit records in commit-timestamp order on top of the
checkpointed versions, skipping records each object's checkpoint fence
proves redundant, then re-derives lock state by replaying prepared
transactions' intentions.  :func:`verify_recovery` checks the recovery
invariant: the rebuilt committed state-set of every object equals the
pre-crash one.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from ..adts.base import ADT, get_adt
from ..core.compaction import NEG_INFINITY, CompactingLockMachine
from ..core.errors import ReproError
from ..core.lock_machine import LockMachine
from ..core.specs import SerialSpec, StateSet
from .checkpoint import Checkpoint, CheckpointStore
from .wal import WriteAheadLog, decode_operation, decode_states, decode_value

__all__ = [
    "RecoveryError",
    "RecoveryReport",
    "committed_state_set",
    "committed_state_sets",
    "verify_recovery",
    "recover_machines",
    "recover_manager",
    "recover_site_state",
]


class RecoveryError(ReproError):
    """The log/checkpoint could not be replayed into a consistent state."""


@dataclass
class RecoveryReport:
    """What one recovery pass did (and how long it took)."""

    name: str = ""
    #: Log records scanned (after any checkpoint truncation).
    scanned_records: int = 0
    #: Commit/prepare records re-applied to machines.
    replayed_records: int = 0
    #: Individual operations reinstalled into intentions lists.
    replayed_operations: int = 0
    #: Transactions discarded by presumed abort (volatile intentions lost).
    discarded_transactions: Tuple[str, ...] = ()
    #: Transactions restored to the 2PC prepared state.
    prepared_transactions: Tuple[str, ...] = ()
    recovered_objects: Tuple[str, ...] = ()
    #: Wall-clock seconds spent replaying.
    elapsed_seconds: float = 0.0
    from_checkpoint: bool = False

    def summary(self) -> str:
        """One-line human rendering (used by the CLI)."""
        return (
            f"recovered {len(self.recovered_objects)} object(s) from "
            f"{self.scanned_records} log record(s)"
            + (" + checkpoint" if self.from_checkpoint else "")
            + f": replayed {self.replayed_records} record(s) / "
            f"{self.replayed_operations} operation(s), "
            f"{len(self.prepared_transactions)} prepared, "
            f"{len(self.discarded_transactions)} presumed aborted, "
            f"{self.elapsed_seconds * 1000:.2f} ms"
        )


# ----------------------------------------------------------------------
# Invariant checking
# ----------------------------------------------------------------------


def committed_state_set(machine: LockMachine) -> StateSet:
    """The state-set denoted by the machine's committed state."""
    if isinstance(machine, CompactingLockMachine):
        return machine.spec.run_from(
            machine.version_states, machine.committed_state()
        )
    return machine.spec.run(machine.committed_state())


def committed_state_sets(
    machines: Mapping[str, LockMachine]
) -> Dict[str, StateSet]:
    """Per-object committed state-sets (capture before a crash to verify)."""
    return {obj: committed_state_set(machine) for obj, machine in machines.items()}


def verify_recovery(
    expected: Mapping[str, StateSet], machines: Mapping[str, LockMachine]
) -> None:
    """Check the recovery invariant; raise :class:`RecoveryError` if broken."""
    for obj, states in expected.items():
        machine = machines.get(obj)
        if machine is None:
            raise RecoveryError(f"object {obj!r} was not recovered")
        recovered = committed_state_set(machine)
        if recovered != states:
            raise RecoveryError(
                f"committed state of {obj!r} diverged after recovery: "
                f"expected {sorted(states, key=repr)!r}, "
                f"got {sorted(recovered, key=repr)!r}"
            )


# ----------------------------------------------------------------------
# Core replay
# ----------------------------------------------------------------------


@dataclass
class _LogImage:
    """The log, grouped by transaction outcome."""

    meta: Dict[str, Any] = field(default_factory=dict)
    creates: List[Dict[str, Any]] = field(default_factory=list)
    commits: Dict[str, Tuple[Any, Dict[str, list]]] = field(default_factory=dict)
    prepares: Dict[str, Tuple[Any, Dict[str, list]]] = field(default_factory=dict)
    aborted: Set[str] = field(default_factory=set)
    seen: Set[str] = field(default_factory=set)
    scanned: int = 0


def _scan(records: List[Dict[str, Any]]) -> _LogImage:
    image = _LogImage()
    for record in records:
        image.scanned += 1
        kind = record["kind"]
        if kind == "meta":
            image.meta = record
        elif kind == "create":
            image.creates.append(record)
        elif kind in ("invoke", "respond", "prepare", "commit", "abort"):
            transaction = record["txn"]
            image.seen.add(transaction)
            if kind == "commit":
                image.commits[transaction] = (
                    decode_value(record["ts"]),
                    record["intentions"],
                )
            elif kind == "prepare":
                image.prepares[transaction] = (
                    decode_value(record["clock"]),
                    record["intentions"],
                )
            elif kind == "abort":
                image.aborted.add(transaction)
        else:
            raise RecoveryError(f"unknown record kind {kind!r} in the log")
    return image


class _RerootedSpec(SerialSpec):
    """A registry spec re-rooted at the logged initial state-set.

    Registry factories take no arguments, but objects are created with
    parameters (e.g. an opening balance); the create record's state-set is
    the ground truth, and checkers downstream consult ``adt.spec``, so the
    recovered spec must start there too.
    """

    def __init__(self, base: SerialSpec, initial: StateSet):
        self._base = base
        self._initial = frozenset(initial)
        self.name = base.name

    def initial_state(self):
        return sorted(self._initial, key=repr)[0]

    def initial_states(self) -> StateSet:
        return self._initial

    def outcomes(self, state, invocation):
        return self._base.outcomes(state, invocation)


def _build_machine(
    record: Mapping[str, Any],
    checkpoint: Optional[Checkpoint],
    catalog: Optional[Mapping[str, ADT]],
    compacting: bool,
) -> Tuple[LockMachine, ADT]:
    import dataclasses

    from ..protocols import get_protocol

    obj = record["obj"]
    if catalog is not None and obj in catalog:
        adt = catalog[obj]
    else:
        adt = get_adt(record["adt"])
    initial = decode_states(record["initial"])
    if initial != adt.spec.initial_states():
        adt = dataclasses.replace(adt, spec=_RerootedSpec(adt.spec, initial))
    conflict = get_protocol(record["protocol"]).conflict_for(adt)
    if compacting:
        machine: LockMachine = CompactingLockMachine(adt.spec, conflict, obj=obj)
        restored = checkpoint.objects.get(obj) if checkpoint else None
        if restored is not None:
            machine.restore_version(
                restored.version, restored.clock, restored.version_timestamp
            )
    else:
        machine = LockMachine(adt.spec, conflict, obj=obj)
    return machine, adt


def recover_machines(
    records: List[Dict[str, Any]],
    checkpoint: Optional[Checkpoint] = None,
    catalog: Optional[Mapping[str, ADT]] = None,
    compacting: Optional[bool] = None,
    tracer: Optional[Any] = None,
) -> Tuple[Dict[str, LockMachine], Dict[str, ADT], _LogImage, RecoveryReport]:
    """Rebuild machines from decoded log records plus an optional checkpoint.

    Returns ``(machines, adts, log image, report)``; the report's timing
    and name fields are filled in by the caller.  ``tracer`` (a
    :class:`repro.obs.TraceBus`) receives one ``wal.replay`` event per
    replayed transaction.
    """
    image = _scan(records)
    if compacting is None:
        compacting = bool(image.meta.get("compacting", True))
    machines: Dict[str, LockMachine] = {}
    adts: Dict[str, ADT] = {}
    for record in image.creates:
        if record["obj"] in machines:
            raise RecoveryError(f"duplicate create record for {record['obj']!r}")
        machine, adt = _build_machine(record, checkpoint, catalog, compacting)
        machines[record["obj"]] = machine
        adts[record["obj"]] = adt
        if tracer is not None:
            tracer.emit(
                "obj.create",
                obj=record["obj"],
                adt=adt.name,
                protocol=record["protocol"],
                relation=machine.conflict.name,
                initial=adt.spec.initial_states(),
                recovered=True,
            )

    report = RecoveryReport(
        scanned_records=image.scanned,
        recovered_objects=tuple(sorted(machines)),
        from_checkpoint=checkpoint is not None and bool(checkpoint.objects),
    )

    # Redo: committed intentions in commit-timestamp order, skipping what
    # each object's checkpoint fence already contains.
    for transaction in sorted(image.commits, key=lambda t: image.commits[t][0]):
        timestamp, intentions = image.commits[transaction]
        applied = False
        for obj, encoded_ops in intentions.items():
            machine = machines.get(obj)
            if machine is None:
                raise RecoveryError(
                    f"commit record for unknown object {obj!r}"
                )
            fence = checkpoint.fence(obj) if checkpoint else NEG_INFINITY
            if not (fence < timestamp):
                continue  # folded into the checkpointed version
            ops = [decode_operation(data) for data in encoded_ops]
            machine.replay_committed(transaction, timestamp, ops)
            report.replayed_operations += len(ops)
            applied = True
        if applied:
            report.replayed_records += 1
            if tracer is not None:
                tracer.emit(
                    "wal.replay",
                    transaction=transaction,
                    record="commit",
                    timestamp=timestamp,
                )

    # Prepared-but-undecided transactions come back active (locks held).
    prepared: List[str] = []
    for transaction in sorted(image.prepares):
        if transaction in image.commits or transaction in image.aborted:
            continue
        bound, intentions = image.prepares[transaction]
        if image.meta.get("role") == "site" and isinstance(bound, int):
            # Site commit timestamps are (number, name) tuples; the vote
            # clock is a plain number.  The coordinator assigns
            # number = max(votes) + 1, so the eventual commit timestamp
            # sorts above every (clock, name) — the tight tuple-shaped
            # lower bound is (clock + 1,), which tuple comparison places
            # above all same-number commits and below all later ones.
            # The looser (clock, "") would pin the recovered horizon
            # below commits the never-crashed machine already folded.
            bound = (bound + 1,)
        for obj, encoded_ops in intentions.items():
            machine = machines.get(obj)
            if machine is None:
                raise RecoveryError(
                    f"prepare record for unknown object {obj!r}"
                )
            ops = [decode_operation(data) for data in encoded_ops]
            if isinstance(machine, CompactingLockMachine):
                machine.replay_active(transaction, ops, bound=bound)
            else:
                machine.replay_active(transaction, ops)
            report.replayed_operations += len(ops)
        prepared.append(transaction)
        report.replayed_records += 1
        if tracer is not None:
            tracer.emit("wal.replay", transaction=transaction, record="prepare")
    report.prepared_transactions = tuple(prepared)

    # Presumed abort: everything else that ran but never committed.
    report.discarded_transactions = tuple(
        sorted(
            image.seen
            - set(image.commits)
            - set(prepared)
            - image.aborted
        )
    )

    # Compact once replay completes.  ``replay_committed``/``replay_active``
    # deliberately never fold mid-replay: the horizon is only correct after
    # every prepared transaction's bound is installed (folding earlier
    # could collapse committed intentions above a prepared transaction's
    # eventual commit timestamp).  Without this pass a recovered machine
    # would retain every replayed committed intentions list until its next
    # live commit — tests/recovery/test_recovery_compaction.py pins that a
    # recovered machine retains exactly what a never-crashed peer does.
    for machine in machines.values():
        if isinstance(machine, CompactingLockMachine):
            machine.forget()
    return machines, adts, image, report


# ----------------------------------------------------------------------
# Manager-level recovery
# ----------------------------------------------------------------------

_TXN_NAME = re.compile(r"^T(\d+)")


def recover_manager(
    wal: WriteAheadLog,
    store: Optional[CheckpointStore] = None,
    catalog: Optional[Mapping[str, ADT]] = None,
    tracer: Optional[Any] = None,
    clock: Optional[Callable[[], float]] = None,
    generator: Optional[Any] = None,
    site: Optional[str] = None,
):
    """Rebuild a :class:`~repro.runtime.manager.TransactionManager` from a
    persisted log (plus checkpoint, if a store holds one).

    Returns ``(manager, report)``.  The recovered manager's timestamp
    generator is advanced past every replayed commit timestamp, so new
    commits serialize after everything recovered — the Section 3.3
    constraint holds across the crash.  ``generator`` supplies the
    replacement generator (default: a fresh monotone clock); when the log
    was written under a stride partition (the meta record carries
    ``shard``/``shards``), the supplied generator must declare the *same*
    stride — reopening a shard's log under a different modulus or residue
    would mint timestamps colliding with other shards' already-committed
    ones, so the mismatch raises :class:`RecoveryError` instead.

    2PC-prepared transactions are resurrected as live
    :class:`~repro.runtime.transaction.Transaction` handles (reachable via
    ``manager.transaction(name)``, listed by
    ``manager.prepared_transactions()``) still holding their locks, so a
    coordinator can deliver the pending verdict with
    ``commit_prepared``/``abort``.

    ``clock`` is an optional zero-argument callable used only to time the
    rebuild for the report (a CLI passes ``time.perf_counter``).  Left
    unset — as every simulated path leaves it — ``elapsed_seconds`` stays
    0.0 and recovery contributes no wall-clock nondeterminism to the run.
    """
    from ..protocols import get_protocol
    from ..runtime.manager import TransactionManager
    from ..runtime.transaction import Transaction

    started = clock() if clock is not None else 0.0
    checkpoint = store.load() if store is not None else None
    records = wal.records()
    machines, adts, image, report = recover_machines(
        records, checkpoint=checkpoint, catalog=catalog, tracer=tracer
    )
    logged_shards = image.meta.get("shards")
    offered = (
        getattr(generator, "shard", None),
        getattr(generator, "shards", None),
    )
    if logged_shards is not None:
        logged_shard = image.meta.get("shard")
        if offered != (logged_shard, logged_shards):
            raise RecoveryError(
                f"stride mismatch: log {image.meta.get('name')!r} was written"
                f" as shard {logged_shard} of {logged_shards}, but recovery"
                f" offered shard {offered[0]} of {offered[1]} — a resized or"
                " re-homed worker pool would mint timestamps colliding with"
                " other shards' committed ones"
            )
    elif offered[1] is not None and offered[1] > 1:
        # An unsharded log joined to a stride pool is the same hazard in
        # the other direction: its historical commits used every residue,
        # so the pool's *other* shards would collide with them.
        raise RecoveryError(
            f"stride mismatch: log {image.meta.get('name')!r} was written"
            f" unsharded, but recovery offered shard {offered[0]} of"
            f" {offered[1]} — its committed timestamps span every residue"
        )
    manager = TransactionManager(
        generator=generator,
        compacting=bool(image.meta.get("compacting", True)),
        tracer=tracer,
        site=site,
    )
    for record in image.creates:
        obj = record["obj"]
        managed = manager.create_object(
            obj, adts[obj], protocol=get_protocol(record["protocol"])
        )
        managed.machine = machines[obj]
        managed.machine.tracer = tracer

    # Advance the generator past every recovered timestamp and the name
    # counter past every recovered transaction (names must stay unique).
    # Stride generators advance via observe_decision (their observe() is
    # per-transaction); prepare votes count too — the decided timestamp
    # of an in-flight 2PC transaction will exceed its vote, and the local
    # stream must already sit above everything this shard promised.
    max_serial = 0
    advance = getattr(manager._generator, "observe_decision", None)
    for timestamp, _ in image.commits.values():
        if advance is not None and isinstance(timestamp, int):
            advance(timestamp)
        else:
            manager._generator.observe("recovery", timestamp)
    if advance is not None:
        for bound, _ in image.prepares.values():
            if isinstance(bound, int):
                advance(bound)
    for transaction in image.seen:
        match = _TXN_NAME.match(transaction)
        if match:
            max_serial = max(max_serial, int(match.group(1)))
    manager._names = itertools.count(max_serial + 1)

    # Prepared-but-undecided transactions come back as live handles with
    # their touched sets, awaiting the coordinator's verdict.
    for name in report.prepared_transactions:
        _, intentions = image.prepares[name]
        resurrected = Transaction(name)
        resurrected.touched = set(intentions)
        resurrected.operations = sum(len(ops) for ops in intentions.values())
        manager.install_prepared(resurrected)

    manager.wal = wal
    report.name = image.meta.get("name", "manager")
    report.elapsed_seconds = (clock() - started) if clock is not None else 0.0
    if tracer is not None:
        tracer.emit(
            "site.recover",
            site=report.name,
            objects=list(report.recovered_objects),
            replayed_records=report.replayed_records,
            replayed_operations=report.replayed_operations,
            prepared=list(report.prepared_transactions),
            discarded=list(report.discarded_transactions),
            from_checkpoint=report.from_checkpoint,
        )
    return manager, report


# ----------------------------------------------------------------------
# Site-level recovery (in place: clients keep their handle to the Site)
# ----------------------------------------------------------------------


def recover_site_state(
    site,
    store: Optional[CheckpointStore] = None,
    catalog: Optional[Mapping[str, ADT]] = None,
    clock: Optional[Callable[[], float]] = None,
) -> RecoveryReport:
    """Rebuild a crashed :class:`~repro.distributed.site.Site` in place.

    The site's WAL and checkpoint store are its stable storage; volatile
    state (machines, touched maps, prepared/tombstone sets, the clock) is
    reconstructed.  ``clock`` is an optional wall-clock callable for the
    report's ``elapsed_seconds``; simulated runs leave it unset so the
    report is deterministic.  Returns the :class:`RecoveryReport`.
    """
    from ..core.timestamps import LogicalClock

    if site.wal is None:
        raise RecoveryError(
            f"site {site.name!r} has no write-ahead log; nothing to recover"
        )
    started = clock() if clock is not None else 0.0
    tracer = getattr(site, "tracer", None)
    checkpoint = store.load() if store is not None else None
    records = site.wal.records()
    machines, adts, image, report = recover_machines(
        records, checkpoint=checkpoint, catalog=catalog, compacting=True,
        tracer=tracer,
    )
    for machine in machines.values():
        machine.tracer = tracer

    # Prepared transactions come back with their intentions live; the
    # completion fan-out map must know which objects they touched.
    touched: Dict[str, Set[str]] = {}
    for transaction in report.prepared_transactions:
        _, intentions = image.prepares[transaction]
        for obj in intentions:
            touched.setdefault(obj, set()).add(transaction)
    # Transactions whose volatile intentions were lost must never pass a
    # later PREPARE: they are installed as tombstones (presumed abort).
    site.install_recovered_state(
        machines,
        adts,
        prepared=report.prepared_transactions,
        tombstones=report.discarded_transactions,
        touched=touched,
    )

    site_clock = LogicalClock()
    if checkpoint is not None:
        site_clock.observe(checkpoint.site_clock)
    for timestamp, _ in image.commits.values():
        number = timestamp[0] if isinstance(timestamp, tuple) else timestamp
        if isinstance(number, int):
            site_clock.observe(number)
    for bound, _ in image.prepares.values():
        if isinstance(bound, int):
            site_clock.observe(bound)
    site.clock = site_clock
    site.alive = True

    report.name = site.name
    report.elapsed_seconds = (clock() - started) if clock is not None else 0.0
    if tracer is not None:
        tracer.emit(
            "site.recover",
            site=site.name,
            objects=list(report.recovered_objects),
            replayed_records=report.replayed_records,
            replayed_operations=report.replayed_operations,
            prepared=list(report.prepared_transactions),
            discarded=list(report.discarded_transactions),
            from_checkpoint=report.from_checkpoint,
        )
    return report
