"""Write-ahead intentions log (durability for the LOCK machine).

The paper's LOCK machine already maintains the two artifacts a recovery
manager needs: per-transaction *intentions lists* (Section 5 — a redo log
by construction) and commit timestamps that totally order them.  This
module makes them durable: every invocation, response, commit, abort, and
2PC prepare is appended to a log as a checksummed JSON line, and commit /
prepare records carry the transaction's full intentions lists so a crash
can be replayed from the log alone (the checkpoint in
:mod:`repro.recovery.checkpoint` merely shortens the replay).

Records are plain dicts with a ``kind`` field; the helpers below build
them.  Two backends share one encoding: :class:`MemoryWAL` (a list of
encoded lines — used by simulations, where "stable storage" just means
"survives :meth:`Site.crash_hard`") and :class:`FileWAL` (an append-only
``wal.jsonl`` in a directory, one durable write per append).  Each line
is ``{"seq": n, "crc": c, "rec": {...}}`` where ``crc`` is the CRC-32 of
the canonical JSON of ``rec``; a torn final line is tolerated, anything
else fails the read.

Durability is paid exactly once per *durable write*, not per record:
:meth:`WriteAheadLog.append` issues one flush+fsync, and
:meth:`WriteAheadLog.append_batch` amortises one flush+fsync over a
whole batch (the lines are joined into a single ``write`` call, so a
crash tears at most the final line — the existing torn-tail tolerance
covers batches too).  :class:`GroupCommitWAL` builds group commit on
top: appends buffer in memory and become durable together on
:meth:`GroupCommitWAL.flush`, the caller acknowledging only after the
flush returns.  ``FileWAL`` counts ``appends`` and ``syncs`` so
benchmarks and tests can assert fsyncs-per-transaction directly.
"""

from __future__ import annotations

import json
import os
import pathlib
import zlib
from fractions import Fraction
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.compaction import NEG_INFINITY
from ..core.errors import ReproError
from ..core.operations import Invocation, Operation
from ..core.specs import StateSet

__all__ = [
    "WalCorruption",
    "WriteAheadLog",
    "MemoryWAL",
    "FileWAL",
    "GroupCommitWAL",
    "encode_value",
    "decode_value",
    "encode_operation",
    "decode_operation",
    "encode_states",
    "decode_states",
    "meta_record",
    "create_record",
    "invoke_record",
    "respond_record",
    "prepare_record",
    "commit_record",
    "abort_record",
]


class WalCorruption(ReproError):
    """The log failed a checksum, sequence, or decoding check."""


# ----------------------------------------------------------------------
# Value encoding: JSON with tags for the non-JSON state/timestamp shapes
# ----------------------------------------------------------------------


def _sort_key(value: Any) -> str:
    return repr(value)


def encode_value(value: Any) -> Any:
    """Encode a state / argument / timestamp value as JSON-safe data.

    Tuples, lists, sets, frozensets, and the -∞ timestamp are tagged so
    :func:`decode_value` restores the exact Python shape (state-set
    equality must survive the round trip).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"__t__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"__l__": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        return {"__fs__": [encode_value(v) for v in sorted(value, key=_sort_key)]}
    if isinstance(value, set):
        return {"__s__": [encode_value(v) for v in sorted(value, key=_sort_key)]}
    if isinstance(value, Fraction):
        return {"__fr__": [value.numerator, value.denominator]}
    if value is NEG_INFINITY or value == NEG_INFINITY:
        return {"__neginf__": True}
    raise TypeError(f"cannot encode {value!r} ({type(value).__name__}) for the WAL")


def decode_value(data: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(data, dict):
        if "__t__" in data:
            return tuple(decode_value(v) for v in data["__t__"])
        if "__l__" in data:
            return [decode_value(v) for v in data["__l__"]]
        if "__fs__" in data:
            return frozenset(decode_value(v) for v in data["__fs__"])
        if "__s__" in data:
            return {decode_value(v) for v in data["__s__"]}
        if "__fr__" in data:
            return Fraction(data["__fr__"][0], data["__fr__"][1])
        if "__neginf__" in data:
            return NEG_INFINITY
        raise WalCorruption(f"unknown value tag in {data!r}")
    return data


def encode_operation(operation: Operation) -> Dict[str, Any]:
    """Encode one operation (invocation + result) of an intentions list."""
    return {
        "op": operation.name,
        "args": encode_value(tuple(operation.args)),
        "result": encode_value(operation.result),
    }


def decode_operation(data: Mapping[str, Any]) -> Operation:
    """Inverse of :func:`encode_operation`."""
    return Operation(
        Invocation(data["op"], decode_value(data["args"])),
        decode_value(data["result"]),
    )


def encode_states(states: StateSet) -> List[Any]:
    """Encode a state-set deterministically (sorted by repr)."""
    return [encode_value(s) for s in sorted(states, key=_sort_key)]


def decode_states(data: Iterable[Any]) -> StateSet:
    """Inverse of :func:`encode_states`."""
    return frozenset(decode_value(s) for s in data)


def _encode_intentions(
    intentions: Mapping[str, Sequence[Operation]]
) -> Dict[str, List[Dict[str, Any]]]:
    return {
        obj: [encode_operation(op) for op in ops]
        for obj, ops in sorted(intentions.items())
    }


# ----------------------------------------------------------------------
# Record constructors
# ----------------------------------------------------------------------


def meta_record(
    role: str,
    name: str,
    compacting: bool = True,
    shard: Optional[int] = None,
    shards: Optional[int] = None,
) -> Dict[str, Any]:
    """First record of every log: who wrote it and on which machine kind.

    Sharded sites additionally pin their stride-partition coordinates
    (``shard`` of ``shards``): recovery refuses to reopen the log under a
    different modulus, because a resized pool would mint timestamps that
    collide with ones already committed here.
    """
    record = {"kind": "meta", "role": role, "name": name, "compacting": compacting}
    if shards is not None:
        record["shard"] = shard
        record["shards"] = shards
    return record


def create_record(
    obj: str, adt_name: str, protocol_name: str, initial_states: StateSet
) -> Dict[str, Any]:
    """Object creation: enough to rebuild the machine from the registry.

    ``initial_states`` records the actual initial state-set (factories
    take parameters, e.g. an opening balance), so recovery does not trust
    the registry default.
    """
    return {
        "kind": "create",
        "obj": obj,
        "adt": adt_name,
        "protocol": protocol_name,
        "initial": encode_states(initial_states),
    }


def invoke_record(transaction: str, obj: str, invocation: Invocation) -> Dict[str, Any]:
    """``<inv, X, Q>`` accepted."""
    return {
        "kind": "invoke",
        "txn": transaction,
        "obj": obj,
        "op": invocation.name,
        "args": encode_value(tuple(invocation.args)),
    }


def respond_record(transaction: str, obj: str, result: Any) -> Dict[str, Any]:
    """``<res, X, Q>`` accepted."""
    return {
        "kind": "respond",
        "txn": transaction,
        "obj": obj,
        "result": encode_value(result),
    }


def prepare_record(
    transaction: str, clock: Any, intentions: Mapping[str, Sequence[Operation]]
) -> Dict[str, Any]:
    """2PC force-write: the prepared transaction's intentions survive a
    crash, so the site can still honour the coordinator's verdict."""
    return {
        "kind": "prepare",
        "txn": transaction,
        "clock": encode_value(clock),
        "intentions": _encode_intentions(intentions),
    }


def commit_record(
    transaction: str, timestamp: Any, intentions: Mapping[str, Sequence[Operation]]
) -> Dict[str, Any]:
    """``<commit(t), X, Q>`` with the committed intentions lists — the
    paper's redo log entry, self-contained for replay."""
    return {
        "kind": "commit",
        "txn": transaction,
        "ts": encode_value(timestamp),
        "intentions": _encode_intentions(intentions),
    }


def abort_record(transaction: str) -> Dict[str, Any]:
    """``<abort, X, Q>`` delivered (presumed abort makes this advisory)."""
    return {"kind": "abort", "txn": transaction}


# ----------------------------------------------------------------------
# Log backends
# ----------------------------------------------------------------------


def _encode_line(seq: int, record: Mapping[str, Any]) -> str:
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8"))
    return json.dumps({"seq": seq, "crc": crc, "rec": json.loads(body)}, sort_keys=True)


def _decode_line(text: str, expected_seq: int) -> Dict[str, Any]:
    try:
        envelope = json.loads(text)
        body = json.dumps(envelope["rec"], sort_keys=True, separators=(",", ":"))
        crc = envelope["crc"]
        seq = envelope["seq"]
    except (ValueError, KeyError, TypeError) as exc:
        raise WalCorruption(f"undecodable log line: {text[:80]!r}") from exc
    if zlib.crc32(body.encode("utf-8")) != crc:
        raise WalCorruption(f"checksum mismatch at seq {seq}")
    if seq != expected_seq:
        raise WalCorruption(f"sequence gap: expected {expected_seq}, found {seq}")
    return envelope["rec"]


class WriteAheadLog:
    """Shared encode/decode logic; backends supply line storage."""

    def _lines(self) -> List[str]:
        raise NotImplementedError

    def _write_lines(self, lines: List[str]) -> None:
        """Durably append ``lines`` as one write (backends pay one sync)."""
        raise NotImplementedError

    def _replace_lines(self, lines: List[str]) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self._lines())

    def append(self, record: Mapping[str, Any]) -> int:
        """Append one record durably; returns its sequence number."""
        seq = len(self)
        self._write_lines([_encode_line(seq, record)])
        return seq

    def append_batch(self, records: Sequence[Mapping[str, Any]]) -> List[int]:
        """Append ``records`` under a single durable write.

        The group-commit primitive: every record in the batch shares one
        flush+fsync.  Returns the sequence numbers assigned, in order.
        """
        if not records:
            return []
        base = len(self)
        self._write_lines(
            [_encode_line(base + i, record) for i, record in enumerate(records)]
        )
        return list(range(base, base + len(records)))

    def records(self) -> List[Dict[str, Any]]:
        """Decode and verify every record.

        A corrupt *final* line is treated as a torn write and dropped —
        the record was never acknowledged; corruption anywhere else
        raises :class:`WalCorruption`.
        """
        lines = self._lines()
        out: List[Dict[str, Any]] = []
        for index, line in enumerate(lines):
            try:
                out.append(_decode_line(line, index))
            except WalCorruption:
                if index == len(lines) - 1:
                    break
                raise
        return out

    def rewrite(self, records: Sequence[Mapping[str, Any]]) -> None:
        """Replace the whole log (checkpoint truncation)."""
        self._replace_lines(
            [_encode_line(seq, record) for seq, record in enumerate(records)]
        )


class MemoryWAL(WriteAheadLog):
    """In-memory backend: stable across simulated crashes, not real ones."""

    def __init__(self) -> None:
        self._store: List[str] = []

    def _lines(self) -> List[str]:
        return self._store

    def _write_lines(self, lines: List[str]) -> None:
        self._store.extend(lines)

    def _replace_lines(self, lines: List[str]) -> None:
        self._store = list(lines)


class FileWAL(WriteAheadLog):
    """On-disk backend: ``<directory>/wal.jsonl``.

    Appends go through one persistent append handle and pay exactly one
    flush+fsync per durable write — one per :meth:`append`, one per
    whole :meth:`append_batch` — instead of the historical
    open/flush/fsync/close per record.  ``appends`` and ``syncs`` count
    records written and fsyncs issued, so callers can assert the
    amortisation (``syncs/appends`` is the fsyncs-per-record rate).
    """

    FILENAME = "wal.jsonl"

    def __init__(self, directory: os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / self.FILENAME
        self._count: Optional[int] = None
        self._handle = None
        self.appends = 0
        self.syncs = 0

    def _lines(self) -> List[str]:
        if not self.path.exists():
            return []
        return self.path.read_text().splitlines()

    def __len__(self) -> int:
        if self._count is None:
            self._count = len(self._lines())
        return self._count

    def _append_handle(self):
        if self._handle is None:
            # The log owns the handle for its whole lifetime — that is
            # the point of the fix (no open/close per append); close()
            # and _replace_lines release it.
            self._handle = open(  # repro: noqa[REP105]
                self.path, "a", encoding="utf-8"
            )
        return self._handle

    def close(self) -> None:
        """Release the append handle (reopened lazily on next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _write_lines(self, lines: List[str]) -> None:
        if self._count is None:
            self._count = len(self._lines())
        handle = self._append_handle()
        # One write call keeps crash semantics simple: the kernel sees a
        # single sequential append, so a tear truncates to a prefix and
        # at most the final line of the batch is partial.
        handle.write("".join(line + "\n" for line in lines))
        handle.flush()
        os.fsync(handle.fileno())
        self.appends += len(lines)
        self.syncs += 1
        self._count += len(lines)

    def _replace_lines(self, lines: List[str]) -> None:
        self.close()
        temp = self.path.with_suffix(".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in lines))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)
        self.syncs += 1
        self._count = len(lines)


class GroupCommitWAL(WriteAheadLog):
    """Group commit over any backend: buffer appends, sync per batch.

    ``append`` stages the record in memory and returns its (future)
    sequence number; nothing is durable until :meth:`flush`, which hands
    the whole buffer to the backend's :meth:`~WriteAheadLog.append_batch`
    — one fsync for the lot.  The contract is the classic one: the
    *caller* must not acknowledge a commit before ``flush`` returns.  A
    crash before the flush loses only unacknowledged suffix records,
    which presumed abort already treats as aborted.

    ``max_batch`` bounds staging (a full buffer flushes itself) so a
    busy shard cannot defer durability indefinitely.  Reads force a
    flush first: the log never lies about what it contains.
    """

    def __init__(self, base: WriteAheadLog, max_batch: int = 256) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.base = base
        self.max_batch = max_batch
        self._pending: List[Mapping[str, Any]] = []
        self.batches = 0
        self.batched_records = 0

    def __len__(self) -> int:
        return len(self.base) + len(self._pending)

    def append(self, record: Mapping[str, Any]) -> int:
        seq = len(self)
        self._pending.append(record)
        if len(self._pending) >= self.max_batch:
            self.flush()
        return seq

    def append_batch(self, records: Sequence[Mapping[str, Any]]) -> List[int]:
        base = len(self)
        self._pending.extend(records)
        if len(self._pending) >= self.max_batch:
            self.flush()
        return list(range(base, base + len(records)))

    def flush(self) -> int:
        """Make every staged record durable under one sync; returns count."""
        if not self._pending:
            return 0
        staged, self._pending = self._pending, []
        self.base.append_batch(staged)
        self.batches += 1
        self.batched_records += len(staged)
        return len(staged)

    def _lines(self) -> List[str]:
        self.flush()
        return self.base._lines()

    def records(self) -> List[Dict[str, Any]]:
        self.flush()
        return self.base.records()

    def rewrite(self, records: Sequence[Mapping[str, Any]]) -> None:
        self._pending.clear()
        self.base.rewrite(records)
