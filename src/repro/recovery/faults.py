"""Fault injection: seeded crash plans for distributed simulations.

A :class:`CrashPlan` is a deterministic schedule of fail-stop events —
each kills one site with total volatile loss (:meth:`Site.crash_hard`)
and brings it back ``downtime`` later via checkpoint + WAL replay.  Plans
are generated from a seed (Poisson arrivals across the cluster) so whole
fault-injected runs are reproducible bit for bit, and
:meth:`CrashPlan.install` wires the schedule into a
:class:`~repro.sim.des.Simulator`, updating the run's
:class:`~repro.sim.metrics.Metrics` recovery counters and optionally
checking the recovery invariant (recovered committed state-set equals the
pre-crash one) on every restart.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence

from ..sim.des import Simulator
from ..sim.metrics import Metrics
from .checkpoint import CheckpointStore
from .recovery import RecoveryReport, committed_state_sets, verify_recovery

__all__ = ["CrashEvent", "CrashPlan"]


@dataclass(frozen=True)
class CrashEvent:
    """One fail-stop: ``site`` dies at ``time``, recovers ``downtime`` later."""

    time: float
    site: str
    downtime: float


class CrashPlan:
    """An ordered schedule of :class:`CrashEvent`\\ s."""

    def __init__(self, events: Sequence[CrashEvent]):
        self.events: List[CrashEvent] = sorted(
            events, key=lambda e: (e.time, e.site)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @classmethod
    def seeded(
        cls,
        seed: int,
        site_names: Sequence[str],
        duration: float,
        rate: float,
        downtime: float = 10.0,
        start: float = 0.0,
    ) -> "CrashPlan":
        """Poisson crash arrivals at ``rate`` per time unit over the cluster.

        Events are only generated while a full ``downtime`` (plus slack
        for redelivery) still fits before ``duration`` — every planned
        crash recovers within the run, which the benchmarks assert.
        """
        if rate <= 0:
            return cls([])
        rng = random.Random(f"crashplan/{seed}")
        names = sorted(site_names)
        events: List[CrashEvent] = []
        now = start
        horizon = duration - 2.0 * downtime
        while True:
            now += rng.expovariate(rate)
            if now >= horizon:
                break
            events.append(
                CrashEvent(time=now, site=rng.choice(names), downtime=downtime)
            )
        return cls(events)

    def install(
        self,
        simulator: Simulator,
        sites: Mapping[str, object],
        metrics: Optional[Metrics] = None,
        stores: Optional[Mapping[str, CheckpointStore]] = None,
        catalog=None,
        verify: bool = True,
        on_recovered: Optional[Callable[[RecoveryReport], None]] = None,
    ) -> List[RecoveryReport]:
        """Schedule every event; returns the (live) list of reports.

        Each crash captures the victim's committed state-sets and prepared
        set first; after recovery, ``verify=True`` re-checks them — a
        divergence raises :class:`~repro.recovery.recovery.RecoveryError`
        out of the event loop.  A crash aimed at an already-dead site is
        skipped (no double-kill, no double-recovery).
        """
        reports: List[RecoveryReport] = []

        def fire(event: CrashEvent) -> None:
            site = sites[event.site]
            if not site.alive:
                return
            expected = committed_state_sets(site.machines()) if verify else {}
            expected_prepared = site.prepared_transactions()
            site.crash_hard()
            if metrics is not None:
                metrics.crashes += 1

            def back() -> None:
                store = (stores or {}).get(event.site)
                report = site.recover(store=store, catalog=catalog)
                if verify:
                    verify_recovery(expected, site.machines())
                    recovered_prepared = site.prepared_transactions()
                    assert recovered_prepared == expected_prepared, (
                        f"prepared set diverged at {event.site}: "
                        f"{recovered_prepared} != {expected_prepared}"
                    )
                if metrics is not None:
                    metrics.recoveries += 1
                    metrics.replayed_records += report.replayed_records
                    metrics.recovery_time += report.elapsed_seconds
                reports.append(report)
                if on_recovered is not None:
                    on_recovered(report)

            simulator.schedule_at(event.time + event.downtime, back)

        for event in self.events:
            simulator.schedule_at(event.time, lambda event=event: fire(event))
        return reports
