"""Horizon checkpoints: the paper's ``forget()`` made durable.

Section 6's horizon timestamp (Definition 20) bounds which committed
intentions may be collapsed into a version; Lemmas 18–24 prove the
collapse is safe because no active transaction can still serialize below
it.  A *checkpoint* persists exactly that collapse: for each object, the
version state-set together with the largest commit timestamp it absorbs
(:attr:`CompactingLockMachine.version_timestamp`) and the machine clock.
Recovery then only replays log records the checkpoint does not already
prove redundant — a commit record is needed at an object iff its
timestamp exceeds the object's checkpointed version timestamp.

:func:`truncate_wal` applies the same lemma to the log itself: records of
transactions that every machine has folded into its version (or that
aborted) carry no recovery information and are dropped, bounding log
growth the way ``forget()`` bounds machine state.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set

from ..core.compaction import NEG_INFINITY, CompactingLockMachine
from ..core.specs import StateSet
from .wal import (
    WalCorruption,
    WriteAheadLog,
    decode_states,
    decode_value,
    encode_states,
    encode_value,
)

__all__ = [
    "ObjectCheckpoint",
    "Checkpoint",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "FileCheckpointStore",
    "take_checkpoint",
    "truncate_wal",
]


@dataclass(frozen=True)
class ObjectCheckpoint:
    """One object's durable core: the collapsed version and its key."""

    obj: str
    version: StateSet
    version_timestamp: Any
    clock: Any

    def to_json(self) -> Dict[str, Any]:
        return {
            "obj": self.obj,
            "version": encode_states(self.version),
            "version_timestamp": encode_value(self.version_timestamp),
            "clock": encode_value(self.clock),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ObjectCheckpoint":
        return cls(
            obj=data["obj"],
            version=decode_states(data["version"]),
            version_timestamp=decode_value(data["version_timestamp"]),
            clock=decode_value(data["clock"]),
        )


@dataclass(frozen=True)
class Checkpoint:
    """A consistent snapshot of every local machine's version."""

    objects: Dict[str, ObjectCheckpoint] = field(default_factory=dict)
    #: The site/manager logical clock at snapshot time (0 when unused).
    site_clock: int = 0
    #: Simulated time the checkpoint was taken at (informational).
    taken_at: float = 0.0

    def fence(self, obj: str) -> Any:
        """The replay fence for one object: commit records with timestamps
        at or below it are already inside the checkpointed version."""
        checkpoint = self.objects.get(obj)
        return checkpoint.version_timestamp if checkpoint else NEG_INFINITY

    def to_json(self) -> Dict[str, Any]:
        return {
            "site_clock": self.site_clock,
            "taken_at": self.taken_at,
            "objects": [
                self.objects[obj].to_json() for obj in sorted(self.objects)
            ],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Checkpoint":
        objects = {
            entry["obj"]: ObjectCheckpoint.from_json(entry)
            for entry in data["objects"]
        }
        return cls(
            objects=objects,
            site_clock=data.get("site_clock", 0),
            taken_at=data.get("taken_at", 0.0),
        )


class CheckpointStore:
    """Holds at most one checkpoint (the latest supersedes the rest)."""

    def save(self, checkpoint: Checkpoint) -> None:
        raise NotImplementedError

    def load(self) -> Optional[Checkpoint]:
        raise NotImplementedError


class MemoryCheckpointStore(CheckpointStore):
    """Checkpoint kept in memory (simulated stable storage)."""

    def __init__(self) -> None:
        self._encoded: Optional[str] = None

    def save(self, checkpoint: Checkpoint) -> None:
        self._encoded = json.dumps(checkpoint.to_json(), sort_keys=True)

    def load(self) -> Optional[Checkpoint]:
        if self._encoded is None:
            return None
        return Checkpoint.from_json(json.loads(self._encoded))


class FileCheckpointStore(CheckpointStore):
    """Checkpoint as ``<directory>/checkpoint.json``, replaced atomically."""

    FILENAME = "checkpoint.json"

    def __init__(self, directory: os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / self.FILENAME

    def save(self, checkpoint: Checkpoint) -> None:
        temp = self.path.with_suffix(".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(checkpoint.to_json(), handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)

    def load(self) -> Optional[Checkpoint]:
        if not self.path.exists():
            return None
        try:
            return Checkpoint.from_json(json.loads(self.path.read_text()))
        except (ValueError, KeyError) as exc:
            raise WalCorruption(f"unreadable checkpoint {self.path}") from exc


def take_checkpoint(
    machines: Mapping[str, CompactingLockMachine],
    site_clock: int = 0,
    taken_at: float = 0.0,
) -> Checkpoint:
    """Snapshot every machine's version, folding first.

    ``forget()`` is invoked so the version absorbs everything the current
    horizon allows — the checkpoint is as short as Lemma 23 permits.
    """
    objects: Dict[str, ObjectCheckpoint] = {}
    for obj, machine in machines.items():
        machine.forget()
        version_timestamp, clock, version = machine.export_version()
        objects[obj] = ObjectCheckpoint(
            obj=obj,
            version=version,
            version_timestamp=version_timestamp,
            clock=clock,
        )
    return Checkpoint(objects=objects, site_clock=site_clock, taken_at=taken_at)


def truncate_wal(
    wal: WriteAheadLog,
    machines: Mapping[str, CompactingLockMachine],
    extra_live: Iterable[str] = (),
) -> int:
    """Drop log records the machines prove redundant; returns the count.

    A record must be kept when its transaction is still *live* — retained
    committed (not yet folded into a version) or active (uncommitted
    intentions, e.g. 2PC-prepared) at any machine — or when it describes
    the log itself (``meta``) or an object (``create``).  Everything else
    (folded commits, aborted transactions, operations of completed
    transactions) is recoverable from the checkpointed versions alone.
    """
    live: Set[str] = set(extra_live)
    for machine in machines.values():
        live.update(machine.committed_transactions)
        live.update(machine.active_transactions())
    kept: List[Mapping[str, Any]] = []
    dropped = 0
    for record in wal.records():
        if record["kind"] in ("meta", "create") or record.get("txn") in live:
            kept.append(record)
        else:
            dropped += 1
    if dropped:
        wal.rewrite(kept)
    return dropped
