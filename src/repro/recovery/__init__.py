"""Durability & crash recovery: WAL, horizon checkpoints, replay, faults.

The paper's LOCK machine is recovery-ready by construction — intentions
lists are a redo log, the Section 6 horizon bounds what a version (and
hence a checkpoint) may absorb.  This package makes that operational:

* :mod:`~repro.recovery.wal` — append-only, checksummed intentions log
  (in-memory and on-disk backends, plus the group-commit wrapper that
  batches appends under one fsync);
* :mod:`~repro.recovery.checkpoint` — version snapshots keyed by the
  horizon timestamp, plus log truncation;
* :mod:`~repro.recovery.recovery` — checkpoint + replay drivers for
  managers and sites, with the recovered-state invariant check;
* :mod:`~repro.recovery.faults` — seeded crash plans for fault-injected
  distributed simulations.
"""

from .checkpoint import (
    Checkpoint,
    CheckpointStore,
    FileCheckpointStore,
    MemoryCheckpointStore,
    ObjectCheckpoint,
    take_checkpoint,
    truncate_wal,
)
from .faults import CrashEvent, CrashPlan
from .recovery import (
    RecoveryError,
    RecoveryReport,
    committed_state_set,
    committed_state_sets,
    recover_machines,
    recover_manager,
    recover_site_state,
    verify_recovery,
)
from .wal import (
    FileWAL,
    GroupCommitWAL,
    MemoryWAL,
    WalCorruption,
    WriteAheadLog,
    abort_record,
    commit_record,
    create_record,
    decode_operation,
    decode_states,
    decode_value,
    encode_operation,
    encode_states,
    encode_value,
    invoke_record,
    meta_record,
    prepare_record,
    respond_record,
)

__all__ = [
    # wal
    "WriteAheadLog",
    "MemoryWAL",
    "FileWAL",
    "GroupCommitWAL",
    "WalCorruption",
    "meta_record",
    "create_record",
    "invoke_record",
    "respond_record",
    "prepare_record",
    "commit_record",
    "abort_record",
    "encode_value",
    "decode_value",
    "encode_operation",
    "decode_operation",
    "encode_states",
    "decode_states",
    # checkpoint
    "Checkpoint",
    "ObjectCheckpoint",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "FileCheckpointStore",
    "take_checkpoint",
    "truncate_wal",
    # recovery
    "RecoveryError",
    "RecoveryReport",
    "recover_machines",
    "recover_manager",
    "recover_site_state",
    "committed_state_set",
    "committed_state_sets",
    "verify_recovery",
    # faults
    "CrashEvent",
    "CrashPlan",
]
