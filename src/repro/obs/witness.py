"""Violation records and minimal-witness extraction for the checker.

When the streaming oracle (:mod:`repro.obs.checker`) refutes a property,
pointing at the *last* event is rarely enough: the interesting question
is which handful of events, out of tens of thousands, already suffice to
demonstrate the failure.  :func:`minimize_witness` answers it with a
greedy delta-debugging pass: replay candidate sub-sequences through a
fresh checker and keep shrinking while the same violation still fires.

Two shrinking passes, both linear in trace length:

1. drop every event of one transaction at a time (removes uninvolved
   transactions wholesale — the big win);
2. drop single events (trims setup noise like begins or unrelated
   responses).

The result is not guaranteed globally minimal (that is NP-hard), but it
is *1-minimal for transactions* and usually a handful of events in
practice — small enough to read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .events import TraceEvent
from .sinks import render_events

__all__ = ["Violation", "minimize_witness"]


@dataclass
class Violation:
    """One refuted property, with the evidence that refutes it.

    ``rule`` names the property family (``well-formedness``,
    ``commit-timestamp``, ``serial-order``, ``conflict-acceptance``,
    ``compaction``, ``recovery``); ``witness`` is the minimized event
    sub-sequence that reproduces the violation on replay.
    """

    rule: str
    message: str
    obj: Optional[str] = None
    transaction: Optional[str] = None
    index: int = -1
    witness: Tuple[TraceEvent, ...] = field(default_factory=tuple)

    def signature(self) -> Tuple[str, Optional[str], Optional[str]]:
        """What makes two violations "the same" during minimization."""
        return (self.rule, self.obj, self.transaction)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly shape (witness events flattened like JSONL)."""
        return {
            "rule": self.rule,
            "message": self.message,
            "obj": self.obj,
            "transaction": self.transaction,
            "index": self.index,
            "witness": [event.to_dict() for event in self.witness],
        }

    def render(self) -> str:
        """Human-readable block: headline plus the witness events."""
        lines = [f"[{self.rule}] {self.message}"]
        if self.witness:
            lines.append(f"  witness ({len(self.witness)} event(s)):")
            body = render_events(self.witness)
            lines.extend("    " + line for line in body.splitlines())
        return "\n".join(lines)


def minimize_witness(
    events: Sequence[TraceEvent],
    reproduces: Callable[[Sequence[TraceEvent]], bool],
    max_single_pass: int = 1500,
) -> Tuple[TraceEvent, ...]:
    """Greedily shrink ``events`` while ``reproduces`` stays true.

    ``reproduces`` replays a candidate sub-sequence through a fresh
    checker and reports whether the same violation still fires.  The
    single-event pass is skipped above ``max_single_pass`` events (it is
    quadratic); the transaction pass always runs.
    """
    current: List[TraceEvent] = list(events)
    if not reproduces(current):  # pragma: no cover - defensive
        return tuple(current)

    # Pass 1: drop whole transactions.
    transactions: List[Any] = []
    for event in current:
        transaction = event.transaction
        if transaction is not None and transaction not in transactions:
            transactions.append(transaction)
    for transaction in transactions:
        trial = [e for e in current if e.transaction != transaction]
        if len(trial) < len(current) and reproduces(trial):
            current = trial

    # Pass 2: drop single events (keep index fixed on success: the next
    # event slides into the removed slot).
    if len(current) <= max_single_pass:
        index = 0
        while index < len(current):
            trial = current[:index] + current[index + 1 :]
            if reproduces(trial):
                current = trial
            else:
                index += 1
    return tuple(current)
