"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry subsumes the flat :class:`repro.sim.metrics.Metrics`
dataclass: :meth:`MetricsRegistry.absorb_metrics` imports every field of
a ``Metrics`` row as a counter (so nothing the old API reported is
lost), while the event-driven :class:`RegistrySink` adds the breakdowns
the dataclass cannot express — conflicts *per operation pair*, latency
*distributions*, horizon/retained-intentions gauges.

Histograms use fixed bucket boundaries chosen at creation (cumulative
rendering, Prometheus-style ``le`` semantics), so merged or compared
runs always share bucket edges.
"""

from __future__ import annotations

import bisect
import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .events import TraceEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistrySink",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default latency bucket upper bounds (simulated time units).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Any = None

    def set(self, value: Any) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Fixed-boundary histogram with count/sum like Prometheus.

    ``boundaries`` are the inclusive upper bounds of the finite buckets;
    an implicit +inf bucket catches the rest.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "sum")

    def __init__(self, name: str, boundaries: Sequence[float]):
        edges = tuple(sorted(boundaries))
        if not edges:
            raise ValueError("a histogram needs at least one boundary")
        self.name = name
        self.boundaries = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation; the last boundary for the +inf
        bucket)."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if not self.total:
            return 0.0
        rank = q * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                return (
                    self.boundaries[index]
                    if index < len(self.boundaries)
                    else self.boundaries[-1]
                )
        return self.boundaries[-1]


class MetricsRegistry:
    """Named counters, gauges, and histograms with get-or-create access."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, boundaries: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The named histogram, created with ``boundaries`` on first use."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(
                name, boundaries or DEFAULT_LATENCY_BUCKETS
            )
        return histogram

    # -- Metrics bridge ------------------------------------------------

    def absorb_metrics(self, metrics: Any, prefix: str = "") -> None:
        """Import every field of a :class:`repro.sim.metrics.Metrics`.

        Iterates ``dataclasses.fields`` so counters added to ``Metrics``
        later can never be silently dropped here either.
        """
        import dataclasses

        for field in dataclasses.fields(metrics):
            value = getattr(metrics, field.name)
            self.counter(prefix + field.name).inc(value)

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict snapshot of everything (JSON-friendly shapes)."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self.counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self.gauges.items())
            },
            "histograms": {
                name: {
                    "boundaries": list(histogram.boundaries),
                    "counts": list(histogram.counts),
                    "total": histogram.total,
                    "sum": histogram.sum,
                    "mean": histogram.mean,
                }
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document (non-JSON values via repr)."""
        return json.dumps(self.snapshot(), indent=indent, default=repr)

    def conflict_breakdown(self) -> Dict[str, float]:
        """Per-operation-pair conflict counters (``lock.conflict[...]``)."""
        return {
            name: counter.value
            for name, counter in sorted(self.counters.items())
            if name.startswith("lock.conflict[")
        }


class RegistrySink:
    """Bus sink that folds trace events into a :class:`MetricsRegistry`.

    Derived counters live under event-shaped names (``txn.committed``,
    ``lock.conflicts``, ``lock.conflict[pair]``, ``net.messages`` …) so
    they never collide with the ``Metrics`` fields imported by
    :meth:`MetricsRegistry.absorb_metrics`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        latency_buckets: Optional[Sequence[float]] = None,
    ):
        self.registry = registry
        self._buckets = tuple(latency_buckets or DEFAULT_LATENCY_BUCKETS)
        self._begin_ts: Dict[str, float] = {}
        self._connections = 0

    def __call__(self, event: TraceEvent) -> None:
        registry = self.registry
        kind = event.kind
        data = event.data
        if kind == "txn.begin":
            registry.counter("txn.begun").inc()
            self._begin_ts[data["transaction"]] = event.ts
        elif kind == "txn.commit":
            transaction = data["transaction"]
            begun = self._begin_ts.pop(transaction, None)
            if begun is not None:
                registry.counter("txn.committed").inc()
                registry.histogram("txn.latency", self._buckets).observe(
                    event.ts - begun
                )
        elif kind == "txn.abort":
            transaction = data["transaction"]
            begun = self._begin_ts.pop(transaction, None)
            if begun is not None:
                registry.counter("txn.aborted").inc()
                registry.histogram("txn.abort_latency", self._buckets).observe(
                    event.ts - begun
                )
        elif kind == "lock.conflict":
            registry.counter("lock.conflicts").inc()
            pair = f"{data.get('operation')} × {data.get('held')}"
            registry.counter(f"lock.conflict[{pair}]").inc()
        elif kind == "lock.block":
            registry.counter("lock.blocks").inc()
        elif kind == "lock.wait":
            registry.counter("lock.waits").inc()
        elif kind == "lock.deadlock":
            registry.counter("lock.deadlocks").inc()
        elif kind == "compaction.advance":
            registry.counter("compaction.advances").inc()
            registry.counter("compaction.collapsed_ops").inc(
                data.get("collapsed", 0)
            )
        elif kind == "wal.append":
            registry.counter("wal.appends").inc()
        elif kind == "wal.replay":
            registry.counter("wal.replays").inc()
        elif kind == "net.send":
            registry.counter("net.messages").inc()
            label = data.get("label")
            if label:
                registry.counter(f"net.send[{label}]").inc()
        elif kind == "site.crash":
            registry.counter("site.crashes").inc()
        elif kind == "site.recover":
            registry.counter("site.recoveries").inc()
        elif kind == "validation.success":
            registry.counter("validation.successes").inc()
        elif kind == "validation.invalidated":
            registry.counter("validation.invalidated").inc()
        elif kind == "quorum.assemble":
            registry.counter("quorum.assembled").inc()
        elif kind == "quorum.deny":
            registry.counter("quorum.denied").inc()
        elif kind == "check.violation":
            registry.counter("check.violations").inc()
        elif kind == "server.connect":
            registry.counter("server.connections_opened").inc()
            self._connections += 1
            registry.gauge("server.connections").set(self._connections)
        elif kind == "server.disconnect":
            registry.counter("server.connections_closed").inc()
            self._connections -= 1
            registry.gauge("server.connections").set(self._connections)
        elif kind == "server.request":
            registry.counter("server.requests").inc()
            action = data.get("action")
            if action:
                registry.counter(f"server.request[{action}]").inc()
            registry.gauge("server.queue_depth").set(data.get("queue_depth"))
        elif kind == "server.busy":
            registry.counter("server.busy").inc()
            registry.gauge("server.queue_depth").set(data.get("queue_depth"))
        elif kind == "server.drain":
            registry.counter("server.drains").inc()
