"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry subsumes the flat :class:`repro.sim.metrics.Metrics`
dataclass: :meth:`MetricsRegistry.absorb_metrics` imports every field of
a ``Metrics`` row as a counter (so nothing the old API reported is
lost), while the event-driven :class:`RegistrySink` adds the breakdowns
the dataclass cannot express — conflicts *per operation pair*, latency
*distributions*, horizon/retained-intentions gauges.

Histograms use fixed bucket boundaries chosen at creation (cumulative
rendering, Prometheus-style ``le`` semantics), so merged or compared
runs always share bucket edges.
"""

from __future__ import annotations

import bisect
import json
import re
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .events import TraceEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistrySink",
    "DEFAULT_LATENCY_BUCKETS",
    "WIRE_LATENCY_BUCKETS",
    "render_prometheus",
]

#: Default latency bucket upper bounds (simulated time units).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
)

#: Latency bucket upper bounds in *real seconds*, for the serving tier —
#: there the bus clock is ``time.monotonic``, so sub-millisecond through
#: multi-second resolution is what `repro top` quantiles need.  Feeding
#: wall-clock latencies through :data:`DEFAULT_LATENCY_BUCKETS` would
#: collapse every request into the first (1-time-unit) bucket.
WIRE_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Any = None

    def set(self, value: Any) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Fixed-boundary histogram with count/sum like Prometheus.

    ``boundaries`` are the inclusive upper bounds of the finite buckets;
    an implicit +inf bucket catches the rest.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "sum")

    def __init__(self, name: str, boundaries: Sequence[float]):
        edges = tuple(sorted(boundaries))
        if not edges:
            raise ValueError("a histogram needs at least one boundary")
        self.name = name
        self.boundaries = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Quantile estimate, linearly interpolated within its bucket.

        The q-th observation's bucket is found from the cumulative
        counts; the estimate interpolates between the bucket's lower and
        upper edges by the rank's position inside it (the first finite
        bucket's lower edge is 0.0).  An observation landing in the
        implicit overflow bucket has no upper edge, so a quantile that
        falls there reports ``float("inf")`` explicitly rather than
        silently saturating at the last boundary — callers that render
        it (``repro top``, the postmortem report) print ``inf`` and can
        say "beyond the histogram's range" instead of a fictitious
        value.
        """
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if not self.total:
            return 0.0
        rank = q * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            below = seen
            seen += count
            if seen >= rank and count:
                if index >= len(self.boundaries):
                    return float("inf")
                lower = self.boundaries[index - 1] if index else 0.0
                upper = self.boundaries[index]
                fraction = min(1.0, max(0.0, (rank - below) / count))
                return lower + fraction * (upper - lower)
        return float("inf")

    @property
    def overflow(self) -> int:
        """Observations beyond the last finite boundary."""
        return self.counts[-1]

    @classmethod
    def from_snapshot(cls, name: str, payload: Mapping[str, Any]) -> "Histogram":
        """Rebuild a histogram from its :meth:`MetricsRegistry.snapshot`
        entry (``repro top`` computes quantiles from remote snapshots)."""
        histogram = cls(name, payload["boundaries"])
        histogram.counts = [int(count) for count in payload["counts"]]
        histogram.total = int(payload["total"])
        histogram.sum = float(payload["sum"])
        return histogram


class MetricsRegistry:
    """Named counters, gauges, and histograms with get-or-create access."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, boundaries: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The named histogram, created with ``boundaries`` on first use."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(
                name, boundaries or DEFAULT_LATENCY_BUCKETS
            )
        return histogram

    # -- Metrics bridge ------------------------------------------------

    def absorb_metrics(self, metrics: Any, prefix: str = "") -> None:
        """Import every field of a :class:`repro.sim.metrics.Metrics`.

        Iterates ``dataclasses.fields`` so counters added to ``Metrics``
        later can never be silently dropped here either.
        """
        import dataclasses

        for field in dataclasses.fields(metrics):
            value = getattr(metrics, field.name)
            self.counter(prefix + field.name).inc(value)

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict.

        ``repro stats --connect`` uses this to render a *remote*
        server's metrics (tables, Prometheus text) with the same code
        paths as a local registry.
        """
        registry = cls()
        for name, value in (snapshot.get("counters") or {}).items():
            registry.counter(name).inc(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            registry.gauge(name).set(value)
        for name, payload in (snapshot.get("histograms") or {}).items():
            registry.histograms[name] = Histogram.from_snapshot(name, payload)
        return registry

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict snapshot of everything (JSON-friendly shapes)."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self.counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self.gauges.items())
            },
            "histograms": {
                name: {
                    "boundaries": list(histogram.boundaries),
                    "counts": list(histogram.counts),
                    "total": histogram.total,
                    "sum": histogram.sum,
                    "mean": histogram.mean,
                }
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document (non-JSON values via repr)."""
        return json.dumps(self.snapshot(), indent=indent, default=repr)

    def conflict_breakdown(self) -> Dict[str, float]:
        """Per-operation-pair conflict counters (``lock.conflict[...]``)."""
        return {
            name: counter.value
            for name, counter in sorted(self.counters.items())
            if name.startswith("lock.conflict[")
        }


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> Tuple[str, str]:
    """Split a registry name into a Prometheus metric name and label.

    Bracketed breakdowns (``lock.conflict[Deq × Enq]``,
    ``server.request[invoke]``) become a label on the base metric so
    every pair/action series shares one metric family.  Returns
    ``(metric_name, label_pairs)`` where label_pairs is ``""`` or
    ``'{key="..."}'``.
    """
    base, bracket, rest = name.partition("[")
    label = ""
    if bracket:
        value = rest[:-1] if rest.endswith("]") else rest
        value = value.replace("\\", "\\\\").replace('"', '\\"')
        label = f'{{key="{value}"}}'
    metric = "repro_" + _PROM_BAD_CHARS.sub("_", base.strip("."))
    return metric, label


def render_prometheus(registry: "MetricsRegistry") -> str:
    """The registry in Prometheus text exposition format (v0.0.4).

    Counters render with a ``_total`` suffix, numeric gauges as-is
    (non-numeric gauges — lock-table tuples and the like — are skipped;
    exposition only speaks floats), histograms as the classic cumulative
    ``_bucket{le=...}`` series with ``_sum`` and ``_count``.
    """
    lines: List[str] = []
    typed: set = set()

    def declare(metric: str, kind: str) -> None:
        if metric not in typed:
            typed.add(metric)
            lines.append(f"# TYPE {metric} {kind}")

    for name, counter in sorted(registry.counters.items()):
        metric, label = _prom_name(name)
        metric += "_total"
        declare(metric, "counter")
        lines.append(f"{metric}{label} {counter.value:g}")
    for name, gauge in sorted(registry.gauges.items()):
        value = gauge.value
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        metric, label = _prom_name(name)
        declare(metric, "gauge")
        lines.append(f"{metric}{label} {value:g}")
    for name, histogram in sorted(registry.histograms.items()):
        metric, _ = _prom_name(name)
        declare(metric, "histogram")
        cumulative = 0
        for boundary, count in zip(histogram.boundaries, histogram.counts):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{boundary:g}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.total}')
        lines.append(f"{metric}_sum {histogram.sum:g}")
        lines.append(f"{metric}_count {histogram.total}")
    return "\n".join(lines) + "\n"


class RegistrySink:
    """Bus sink that folds trace events into a :class:`MetricsRegistry`.

    Derived counters live under event-shaped names (``txn.committed``,
    ``lock.conflicts``, ``lock.conflict[pair]``, ``net.messages`` …) so
    they never collide with the ``Metrics`` fields imported by
    :meth:`MetricsRegistry.absorb_metrics`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        latency_buckets: Optional[Sequence[float]] = None,
    ):
        self.registry = registry
        self._buckets = tuple(latency_buckets or DEFAULT_LATENCY_BUCKETS)
        self._begin_ts: Dict[str, float] = {}
        #: Last event timestamp per live transaction — the anchor for
        #: attributing blocked time to conflict pairs (same interval
        #: convention as the span builder's ``blocked`` tally).
        self._last_ts: Dict[str, float] = {}
        self._connections = 0

    def __call__(self, event: TraceEvent) -> None:
        registry = self.registry
        kind = event.kind
        data = event.data
        transaction = data.get("transaction")
        if transaction is not None and kind.startswith(("txn.", "lock.")):
            if kind in ("lock.conflict", "lock.block", "lock.wait"):
                anchor = self._last_ts.get(transaction, event.ts)
                interval = max(0.0, event.ts - anchor)
                registry.counter("lock.blocked_time").inc(interval)
                if kind == "lock.conflict":
                    pair = f"{data.get('operation')} × {data.get('held')}"
                    registry.counter(f"lock.blocked_time[{pair}]").inc(
                        interval
                    )
            if kind in ("txn.commit", "txn.abort"):
                self._last_ts.pop(transaction, None)
            else:
                self._last_ts[transaction] = event.ts
        if kind == "txn.begin":
            registry.counter("txn.begun").inc()
            self._begin_ts[data["transaction"]] = event.ts
        elif kind == "txn.commit":
            transaction = data["transaction"]
            begun = self._begin_ts.pop(transaction, None)
            if begun is not None:
                registry.counter("txn.committed").inc()
                registry.histogram("txn.latency", self._buckets).observe(
                    event.ts - begun
                )
        elif kind == "txn.abort":
            transaction = data["transaction"]
            begun = self._begin_ts.pop(transaction, None)
            if begun is not None:
                registry.counter("txn.aborted").inc()
                registry.histogram("txn.abort_latency", self._buckets).observe(
                    event.ts - begun
                )
        elif kind == "lock.conflict":
            registry.counter("lock.conflicts").inc()
            pair = f"{data.get('operation')} × {data.get('held')}"
            registry.counter(f"lock.conflict[{pair}]").inc()
        elif kind == "lock.block":
            registry.counter("lock.blocks").inc()
        elif kind == "lock.wait":
            registry.counter("lock.waits").inc()
        elif kind == "lock.deadlock":
            registry.counter("lock.deadlocks").inc()
        elif kind == "compaction.advance":
            registry.counter("compaction.advances").inc()
            registry.counter("compaction.collapsed_ops").inc(
                data.get("collapsed", 0)
            )
        elif kind == "wal.append":
            registry.counter("wal.appends").inc()
        elif kind == "wal.replay":
            registry.counter("wal.replays").inc()
        elif kind == "net.send":
            registry.counter("net.messages").inc()
            label = data.get("label")
            if label:
                registry.counter(f"net.send[{label}]").inc()
        elif kind == "site.crash":
            registry.counter("site.crashes").inc()
        elif kind == "site.recover":
            registry.counter("site.recoveries").inc()
        elif kind == "validation.success":
            registry.counter("validation.successes").inc()
        elif kind == "validation.invalidated":
            registry.counter("validation.invalidated").inc()
        elif kind == "quorum.assemble":
            registry.counter("quorum.assembled").inc()
        elif kind == "quorum.deny":
            registry.counter("quorum.denied").inc()
        elif kind == "check.violation":
            registry.counter("check.violations").inc()
        elif kind == "server.connect":
            registry.counter("server.connections_opened").inc()
            self._connections += 1
            registry.gauge("server.connections").set(self._connections)
        elif kind == "server.disconnect":
            registry.counter("server.connections_closed").inc()
            self._connections -= 1
            registry.gauge("server.connections").set(self._connections)
        elif kind == "server.request":
            registry.counter("server.requests").inc()
            action = data.get("action")
            if action:
                registry.counter(f"server.request[{action}]").inc()
            registry.gauge("server.queue_depth").set(data.get("queue_depth"))
            shard = data.get("shard")
            if shard is not None:
                registry.gauge(f"server.queue_depth[shard{shard}]").set(
                    data.get("queue_depth")
                )
        elif kind == "server.busy":
            registry.counter("server.busy").inc()
            registry.gauge("server.queue_depth").set(data.get("queue_depth"))
            shard = data.get("shard")
            if shard is not None:
                registry.gauge(f"server.queue_depth[shard{shard}]").set(
                    data.get("queue_depth")
                )
        elif kind == "server.decode":
            registry.counter("server.decoded").inc()
            sent = data.get("sent")
            if sent is not None:
                registry.histogram("server.client_wire", self._buckets).observe(
                    max(0.0, event.ts - sent)
                )
        elif kind == "server.respond":
            registry.counter("server.responses").inc()
            queued = data.get("queued")
            if queued is not None:
                registry.histogram("server.queued", self._buckets).observe(queued)
            executing = data.get("executing")
            if executing is not None:
                registry.histogram("server.executing", self._buckets).observe(
                    executing
                )
            respond = data.get("respond")
            if respond is not None:
                registry.histogram(
                    "server.respond_write", self._buckets
                ).observe(respond)
            shard = data.get("shard")
            if shard is not None:
                registry.counter(f"server.responses[shard{shard}]").inc()
        elif kind == "server.drain":
            registry.counter("server.drains").inc()
        elif kind == "flight.dump":
            registry.counter("flight.dumps").inc()
