"""Observability: structured tracing, spans, and a metrics registry.

The subsystem has three pieces (see ``docs/observability.md``):

* a zero-dependency **event bus** (:class:`TraceBus`) that instrumented
  components publish typed, timestamped :class:`TraceEvent` records to —
  disabled by default, one ``is None`` check on the hot path;
* **aggregators**: :class:`SpanBuilder` rolls events up into
  per-transaction spans; :class:`RegistrySink` folds them into a
  :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
  histograms (a strict superset of ``repro.sim.metrics.Metrics``);
* **sinks**: in-memory ring buffer, JSONL file writer, and table
  renderers for the ``repro trace`` / ``repro stats`` CLI;
* an **oracle**: :class:`AtomicityChecker` streams over the events (live
  or replayed from JSONL) and certifies the run hybrid atomic — or
  refutes it with a minimal witness (``repro check``);
* **operations**: :class:`FlightRecorder` keeps an always-on ring of
  recent events and dumps a replayable JSONL snapshot when an anomaly
  trigger fires; :func:`analyze_trace` / :func:`render_postmortem` turn
  any replayed trace into a postmortem report (``repro analyze``);
  :func:`render_prometheus` exposes a registry in Prometheus text
  format.
"""

from .analyze import analyze_trace, render_postmortem
from .bus import TraceBus
from .checker import AtomicityChecker
from .codec import decode_value, encode_value
from .events import EVENT_KINDS, TraceEvent
from .flight import FlightRecorder
from .prof import (
    SamplingProfiler,
    StackAggregator,
    contention_profile,
    critical_path,
    read_profile,
    render_contention,
    render_critical_path,
    render_profile,
    write_profile,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    WIRE_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistrySink,
    render_prometheus,
)
from .sinks import (
    JSONLSink,
    RingBufferSink,
    read_jsonl,
    render_events,
    render_histogram,
    render_kind_summary,
    render_spans,
    spans_as_dicts,
)
from .snapshot import (
    lock_table_snapshot,
    manager_lock_tables,
    render_lock_tables,
    render_waits_for,
    waits_for_edges,
)
from .spans import SPAN_IRRELEVANT_KINDS, WIRE_SPAN_KINDS, Span, SpanBuilder
from .witness import Violation, minimize_witness

__all__ = [
    "FlightRecorder",
    "SamplingProfiler",
    "StackAggregator",
    "critical_path",
    "contention_profile",
    "write_profile",
    "read_profile",
    "render_profile",
    "render_critical_path",
    "render_contention",
    "analyze_trace",
    "render_postmortem",
    "render_prometheus",
    "WIRE_SPAN_KINDS",
    "SPAN_IRRELEVANT_KINDS",
    "TraceBus",
    "TraceEvent",
    "EVENT_KINDS",
    "AtomicityChecker",
    "Violation",
    "minimize_witness",
    "encode_value",
    "decode_value",
    "Span",
    "SpanBuilder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistrySink",
    "DEFAULT_LATENCY_BUCKETS",
    "WIRE_LATENCY_BUCKETS",
    "RingBufferSink",
    "JSONLSink",
    "read_jsonl",
    "render_events",
    "render_histogram",
    "render_kind_summary",
    "render_spans",
    "spans_as_dicts",
    "lock_table_snapshot",
    "manager_lock_tables",
    "waits_for_edges",
    "render_lock_tables",
    "render_waits_for",
]
