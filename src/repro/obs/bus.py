"""The trace event bus: emit-if-anyone-listens, near-zero when idle.

Instrumented components hold an optional ``tracer`` attribute that is
``None`` by default.  Every instrumentation site is guarded::

    tracer = self.tracer
    if tracer is not None:
        tracer.emit("lock.conflict", ...)

so the disabled path costs one attribute load and an identity check —
no event object is built, no dict allocated, no clock read.  The
overhead guard in ``benchmarks/check_overhead.py`` keeps it that way.

When a bus *is* attached but has no subscribers, :meth:`TraceBus.emit`
still returns before constructing the event.  Sinks are plain callables
taking a :class:`~repro.obs.events.TraceEvent`; see
:mod:`repro.obs.sinks` for the stock ones.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional

from .events import TraceEvent

__all__ = ["TraceBus"]


class TraceBus:
    """Fan-out of trace events to subscribed sinks.

    Parameters
    ----------
    clock:
        Zero-argument callable giving the event timestamp.  Defaults to
        :func:`time.monotonic`; the simulation harness rebinds it to the
        discrete-event clock so traces carry simulated time.
    """

    __slots__ = ("_sinks", "clock", "emitted")

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._sinks: List[Callable[[TraceEvent], None]] = []
        self.clock: Callable[[], float] = clock or time.monotonic
        #: Total events emitted to at least one sink (cheap sanity stat).
        self.emitted: int = 0

    @property
    def active(self) -> bool:
        """True when at least one sink is subscribed."""
        return bool(self._sinks)

    def subscribe(self, sink: Callable[[TraceEvent], None]):
        """Attach a sink; returns it (for chaining)."""
        self._sinks.append(sink)
        return sink

    def unsubscribe(self, sink: Callable[[TraceEvent], None]) -> None:
        """Detach a sink (no-op if absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def emit(self, kind: str, **data: Any) -> None:
        """Publish one event to every sink (no-op without subscribers)."""
        if not self._sinks:
            return
        event = TraceEvent(self.clock(), kind, data)
        self.emitted += 1
        for sink in self._sinks:
            sink(event)
