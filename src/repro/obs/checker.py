"""Streaming atomicity checker: an online oracle over the trace stream.

The tracing layer (PR 2) made runs *visible*; this module makes them
*refutable*.  :class:`AtomicityChecker` is a plain bus sink — subscribe
it to a live :class:`~repro.obs.bus.TraceBus`, or replay a JSONL trace
file through it offline — that continuously verifies four property
families, one event at a time:

1. **Well-formedness** (paper §2): every ``txn.invoke`` is answered by a
   matching ``txn.respond`` before the next invocation by the same
   transaction at the same object, and no transaction acts after its
   terminal ``txn.commit`` / ``txn.abort``.
2. **Hybrid atomicity** (§3, Definitions 5–9, Theorem 10): commit
   timestamps are unique and exceed every timestamp the transaction
   observed (§3.3's precedes ⊆ timestamp-order discipline), and the
   committed operations at each object — reordered by commit timestamp —
   stay legal under the ADT's serial specification.  Read-only
   multiversion transactions (§7.1) are validated at their *start*
   timestamp instead.
3. **LOCK-machine invariants** (§5.1): every accepted invocation was
   conflict-free under the object's declared symmetric relation against
   the intentions lists of the other active transactions, and every
   ``lock.conflict`` refusal names a holder that really held a related
   operation under that relation.
4. **Compaction / recovery safety** (§6, Lemmas 18–23): horizons only
   advance, nothing uncommitted is folded into a version, nothing above
   the horizon is folded, and ``wal.replay`` reconstructs commits at
   their pre-crash timestamps, in timestamp order.

The checker learns each object's serial spec and conflict relation from
its ``obj.create`` event (resolving names through the ADT and protocol
registries), so an offline replay needs nothing but the trace file.

On a refutation it records a :class:`~repro.obs.witness.Violation`,
shrinks the trace-so-far to a minimal witness by delta debugging
(replaying candidate sub-sequences through fresh checkers), and — when
``emit_to`` is a bus — publishes a ``check.violation`` event so the
refutation lands in the same trace it refutes.

Scope: one checker certifies one run.  Traces that concatenate several
runs (e.g. ``repro simulate`` with multiple protocols into one JSONL
file) reuse transaction names and timestamps across runs; attach a
fresh checker per run, as ``simulate --check`` does.
"""

from __future__ import annotations

import ast
from collections import Counter as _Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .events import TraceEvent
from .witness import Violation, minimize_witness

__all__ = ["AtomicityChecker"]


def _ts_key(ts: Any) -> Any:
    """Normalise a commit timestamp into a comparable key.

    Scalar clocks (sim manager, replicated manager) become ``(ts, "")``
    so they order against distributed ``(number, name)`` tuples of the
    same run; strings from pre-codec traces are parsed back when they
    look like a tuple ``repr``.
    """
    if ts is None:
        return None
    if isinstance(ts, tuple):
        return ts
    if isinstance(ts, str):
        try:
            parsed = ast.literal_eval(ts)
        except (ValueError, SyntaxError):
            return (ts,)
        return _ts_key(parsed) if not isinstance(parsed, str) else (parsed,)
    return (ts, "")


def _lt(a: Any, b: Any) -> bool:
    """``a < b`` over timestamp keys; ``None`` is -∞; incomparable → False."""
    if a is None:
        return b is not None
    if b is None:
        return False
    try:
        return a < b
    except TypeError:
        return False


@dataclass
class _TxnState:
    name: str
    began: bool = False
    read_only: bool = False
    start_key: Any = None
    status: str = "active"  # active | committed | aborted
    commit_ts: Any = None
    commit_key: Any = None
    #: Highest per-object watermark observed at a respond (§3.3 bound).
    bound_key: Any = None
    bound_obj: Optional[str] = None
    #: Outstanding invocation per object: obj -> (Invocation, read_only).
    pending: Dict[str, Any] = field(default_factory=dict)
    #: Accepted operations per object, in acceptance order.
    ops: Dict[str, List[Any]] = field(default_factory=dict)


class _ObjectState:
    """Everything the checker knows about one object."""

    __slots__ = (
        "name", "adt_name", "spec", "initial", "relation", "relation_name",
        "engine", "site", "conflict_checked", "note",
        "entry_keys", "entries", "states", "watermark_key", "held",
        "committed_txns",
    )

    def __init__(self, name: str):
        self.name = name
        self.adt_name: Optional[str] = None
        self.spec = None
        self.initial = None
        self.relation = None
        self.relation_name: Optional[str] = None
        self.engine = "locking"
        self.site: Optional[str] = None
        self.conflict_checked = False
        self.note: Optional[str] = "no obj.create observed"
        #: Committed entries sorted by timestamp key.
        self.entry_keys: List[Any] = []
        self.entries: List[Tuple[Any, Any, str, Tuple[Any, ...]]] = []
        #: Serial states after replaying ``entries`` in key order.
        self.states = None
        self.watermark_key: Any = None
        #: Intentions held by active transactions: txn -> [Operation].
        self.held: Dict[str, List[Any]] = {}
        self.committed_txns: set = set()


class AtomicityChecker:
    """Streaming oracle certifying a trace hybrid atomic (see module doc).

    Use as a bus sink (``bus.subscribe(AtomicityChecker())``) or replay a
    recorded trace with :meth:`replay`.  ``emit_to`` publishes
    ``check.violation`` events back to a bus; ``specs`` / ``relations``
    optionally pre-seed per-object serial specs and conflict relations
    for traces without ``obj.create`` events.
    """

    def __init__(
        self,
        emit_to: Any = None,
        minimize: bool = True,
        max_witness_events: int = 5000,
        specs: Optional[Dict[str, Any]] = None,
        relations: Optional[Dict[str, Any]] = None,
    ):
        self._emit_to = emit_to
        self._minimize = minimize
        self._max_witness_events = max_witness_events
        self._specs = dict(specs or {})
        self._relations = dict(relations or {})
        self._events: List[TraceEvent] = []
        self.violations: List[Violation] = []
        self.suppressed = 0
        self.kind_counts: _Counter = _Counter()
        self._objects: Dict[str, _ObjectState] = {}
        self._txns: Dict[str, _TxnState] = {}
        self._ts_index: Dict[Any, str] = {}
        #: Commits learned from ``wal.replay`` rather than ``txn.commit``.
        self._replayed: Dict[str, Any] = {}
        self._replay_last_key: Any = None
        #: 2PC-prepared (site, transaction) pairs (from ``wal.append``):
        #: their intentions are on stable storage, so their locks survive
        #: a hard crash and are re-acquired by recovery.
        self._prepared: set = set()

    # -- public surface ------------------------------------------------

    @property
    def ok(self) -> bool:
        """True while no property family has been refuted."""
        return not self.violations

    def __call__(self, event: TraceEvent) -> None:
        self.check_event(event)

    def replay(self, events: Iterable[TraceEvent]) -> "AtomicityChecker":
        """Feed a recorded trace through the oracle; returns self."""
        for event in events:
            self.check_event(event)
        return self

    def report(self) -> Dict[str, Any]:
        """A JSON-friendly verdict over everything checked so far."""
        statuses = _Counter(t.status for t in self._txns.values())
        objects = {}
        for name, state in sorted(self._objects.items()):
            objects[name] = {
                "adt": state.adt_name,
                "engine": state.engine,
                "committed_entries": len(state.entries),
                "legality_checked": state.spec is not None,
                "conflict_checked": state.conflict_checked,
            }
            if state.note:
                objects[name]["note"] = state.note
        return {
            "verdict": "clean" if self.ok else "violations",
            "ok": self.ok,
            "events": len(self._events),
            "transactions": {
                "total": len(self._txns),
                "committed": statuses.get("committed", 0),
                "aborted": statuses.get("aborted", 0),
                "active": statuses.get("active", 0),
            },
            "objects": objects,
            "violations": [v.to_dict() for v in self.violations],
            "suppressed_repeats": self.suppressed,
        }

    def render_report(self) -> str:
        """Human-readable verdict for the ``repro check`` CLI."""
        report = self.report()
        txns = report["transactions"]
        lines = []
        if self.ok:
            lines.append(
                f"certified hybrid atomic: {report['events']} event(s), "
                f"{txns['committed']} committed / {txns['aborted']} aborted "
                f"/ {txns['active']} still active transaction(s)"
            )
        else:
            lines.append(
                f"REFUTED: {len(self.violations)} violation(s) over "
                f"{report['events']} event(s)"
                + (
                    f" (+{self.suppressed} repeat(s) suppressed)"
                    if self.suppressed
                    else ""
                )
            )
        for name, info in report["objects"].items():
            checked = []
            if info["legality_checked"]:
                checked.append("serial-order")
            if info["conflict_checked"]:
                checked.append("conflicts")
            lines.append(
                f"  {name}: {info['adt'] or '?'} [{info['engine']}] "
                f"{info['committed_entries']} committed entr(ies), "
                f"checked: {', '.join(checked) or 'well-formedness only'}"
                + (f" ({info['note']})" if info.get("note") else "")
            )
        for violation in self.violations:
            lines.append(violation.render())
        return "\n".join(lines)

    # -- event dispatch ------------------------------------------------

    def check_event(self, event: TraceEvent) -> None:
        """Verify one event against every property family."""
        kind = event.kind
        if kind == "check.violation":
            return  # never re-judge our own verdicts
        self._events.append(event)
        self.kind_counts[kind] += 1
        data = event.data
        if kind == "obj.create":
            self._on_create(data)
        elif kind == "txn.begin":
            self._on_begin(data)
        elif kind == "txn.invoke":
            self._on_invoke(data)
        elif kind == "txn.respond":
            self._on_respond(data)
        elif kind == "txn.commit":
            self._on_commit(data)
        elif kind == "txn.abort":
            self._on_abort(data)
        elif kind == "lock.conflict":
            self._on_lock_conflict(data)
        elif kind == "compaction.advance":
            self._on_compaction(data)
        elif kind == "wal.append":
            if data.get("record") == "prepare":
                self._prepared.add((data.get("site"), data.get("transaction")))
        elif kind == "wal.replay":
            self._on_replay(data)
        elif kind == "site.crash":
            self._on_site_crash(data)
        elif kind == "site.recover":
            self._replay_last_key = None

    # -- object / transaction registries -------------------------------

    def _object(self, name: str) -> _ObjectState:
        state = self._objects.get(name)
        if state is None:
            state = self._objects[name] = _ObjectState(name)
            spec = self._specs.get(name)
            if spec is not None:
                state.spec = spec
                state.initial = spec.initial_states()
                state.states = state.initial
                state.note = None
            relation = self._relations.get(name)
            if relation is not None:
                state.relation = relation
                state.relation_name = getattr(relation, "name", None)
                state.conflict_checked = True
                state.note = None
        return state

    def _txn(self, name: str) -> _TxnState:
        state = self._txns.get(name)
        if state is None:
            state = self._txns[name] = _TxnState(name)
        return state

    def _on_create(self, data: Dict[str, Any]) -> None:
        name = data.get("obj")
        if name is None:
            return
        existing = self._objects.get(name)
        if existing is not None and existing.adt_name is not None:
            if data.get("adt") and data["adt"] != existing.adt_name:
                self._violation(
                    "well-formedness",
                    f"object {name!r} re-created as {data['adt']!r} "
                    f"(was {existing.adt_name!r})",
                    obj=name,
                )
            return  # recovery legitimately re-announces objects
        state = self._object(name)
        state.site = data.get("site", state.site)
        adt = None
        adt_name = data.get("adt")
        if adt_name:
            state.adt_name = adt_name
            try:
                from ..adts import get_adt

                adt = get_adt(adt_name)
            except KeyError:
                adt = None
        if state.spec is None and adt is not None:
            state.spec = adt.spec
        if state.spec is not None and state.initial is None:
            initial = data.get("initial")
            if initial is not None and not isinstance(initial, frozenset):
                try:
                    initial = frozenset(initial)
                except TypeError:
                    initial = None
            state.initial = (
                initial if initial is not None else state.spec.initial_states()
            )
            state.states = state.initial
        protocol = None
        protocol_name = data.get("protocol")
        if protocol_name:
            try:
                from ..protocols.base import get_protocol

                protocol = get_protocol(protocol_name)
                state.engine = protocol.engine
            except KeyError:
                protocol = None
        declared = data.get("relation")
        if state.relation is None and adt is not None:
            from ..protocols.base import ALL_PROTOCOLS

            candidates = []
            for candidate_protocol in ([protocol] if protocol else []) + list(
                ALL_PROTOCOLS
            ):
                try:
                    candidates.append(candidate_protocol.conflict_for(adt))
                except Exception:
                    continue
            for candidate in candidates:
                if declared is None or getattr(candidate, "name", None) == declared:
                    state.relation = candidate
                    break
        if state.relation is not None:
            state.relation_name = declared or getattr(
                state.relation, "name", None
            )
            state.conflict_checked = state.engine == "locking"
        note = []
        if state.spec is None:
            note.append("serial spec unresolved; legality unchecked")
        if state.relation is None and state.engine == "locking":
            note.append("conflict relation unresolved; acceptance unchecked")
        state.note = "; ".join(note) or None

    # -- family 1: well-formedness --------------------------------------

    def _on_begin(self, data: Dict[str, Any]) -> None:
        name = data.get("transaction")
        if name is None:
            return
        txn = self._txns.get(name)
        if txn is not None and (txn.began or txn.status != "active"):
            self._violation(
                "well-formedness",
                f"transaction {name!r} began twice (name reuse or event "
                "after a terminal commit/abort)",
                transaction=name,
            )
            return
        txn = self._txn(name)
        txn.began = True
        txn.read_only = bool(data.get("read_only"))
        if txn.read_only and data.get("timestamp") is not None:
            txn.start_key = _ts_key(data["timestamp"])

    def _on_invoke(self, data: Dict[str, Any]) -> None:
        name = data.get("transaction")
        obj = data.get("obj")
        if name is None or obj is None:
            return
        txn = self._txn(name)
        if txn.status != "active":
            self._violation(
                "well-formedness",
                f"{name!r} invoked {data.get('operation')!r} at {obj!r} "
                f"after its terminal {txn.status}",
                obj=obj,
                transaction=name,
            )
            return
        if obj in txn.pending:
            self._violation(
                "well-formedness",
                f"{name!r} invoked {data.get('operation')!r} at {obj!r} "
                "while an earlier invocation there is still unanswered",
                obj=obj,
                transaction=name,
            )
            return
        args = data.get("args", ())
        if not isinstance(args, tuple):
            args = tuple(args) if isinstance(args, (list, set)) else (args,)
        from ..core.operations import Invocation

        try:
            invocation = Invocation(data.get("operation") or "?", args)
        except (TypeError, ValueError):
            invocation = None
        txn.pending[obj] = (
            invocation,
            bool(data.get("read_only")) or txn.read_only,
        )

    def _on_respond(self, data: Dict[str, Any]) -> None:
        name = data.get("transaction")
        obj = data.get("obj")
        if name is None or obj is None:
            return
        txn = self._txn(name)
        if txn.status != "active":
            self._violation(
                "well-formedness",
                f"{name!r} received a response at {obj!r} after its "
                f"terminal {txn.status}",
                obj=obj,
                transaction=name,
            )
            return
        pending = txn.pending.pop(obj, None)
        if pending is None:
            self._violation(
                "well-formedness",
                f"response for {name!r} at {obj!r} without a matching "
                "invocation",
                obj=obj,
                transaction=name,
            )
            return
        invocation, read_only = pending
        if invocation is None:
            return
        from ..core.operations import Operation

        operation = Operation(invocation, data.get("result"))
        state = self._object(obj)
        # §3.3: record the highest committed timestamp this transaction
        # has now observed at any object — its commit must exceed it.
        if state.watermark_key is not None and _lt(
            txn.bound_key, state.watermark_key
        ):
            txn.bound_key = state.watermark_key
            txn.bound_obj = obj
        if not read_only:
            self._check_acceptance(state, txn, operation)
            state.held.setdefault(name, []).append(operation)
        txn.ops.setdefault(obj, []).append(operation)

    # -- family 3: LOCK-machine invariants ------------------------------

    def _check_acceptance(
        self, state: _ObjectState, txn: _TxnState, operation: Any
    ) -> None:
        """An accepted operation must commute with every held intention."""
        if not state.conflict_checked or state.relation is None:
            return
        relation = state.relation
        for holder, held_ops in state.held.items():
            if holder == txn.name:
                continue
            for held in held_ops:
                try:
                    related = relation.related(operation, held) or relation.related(
                        held, operation
                    )
                except Exception:
                    related = False
                if related:
                    self._violation(
                        "conflict-acceptance",
                        f"{state.name!r} accepted {operation} for "
                        f"{txn.name!r} while active {holder!r} holds the "
                        f"related {held} (relation "
                        f"{state.relation_name!r} should have refused it)",
                        obj=state.name,
                        transaction=txn.name,
                    )
                    return

    def _on_lock_conflict(self, data: Dict[str, Any]) -> None:
        obj = data.get("obj")
        requester = data.get("transaction")
        holder = data.get("holder")
        if holder is not None and holder == requester:
            self._violation(
                "conflict-acceptance",
                f"lock refusal at {obj!r} names {holder!r} as both "
                "requester and holder (a transaction never conflicts "
                "with itself)",
                obj=obj,
                transaction=requester,
            )
            return
        if obj is None or holder is None:
            return
        state = self._objects.get(obj)
        if state is None or not state.conflict_checked:
            return
        declared = data.get("relation")
        if declared and state.relation_name and declared != state.relation_name:
            self._violation(
                "conflict-acceptance",
                f"lock refusal at {obj!r} cites relation {declared!r} but "
                f"the object declared {state.relation_name!r}",
                obj=obj,
                transaction=requester,
            )
            return
        held_repr = data.get("held")
        held_ops = state.held.get(holder, [])
        if held_repr is not None and not any(
            str(op) == held_repr for op in held_ops
        ):
            self._violation(
                "conflict-acceptance",
                f"lock refusal at {obj!r} claims {holder!r} holds "
                f"{held_repr}, but no such intention is outstanding",
                obj=obj,
                transaction=requester,
            )

    # -- family 2: hybrid atomicity -------------------------------------

    def _on_commit(self, data: Dict[str, Any]) -> None:
        name = data.get("transaction")
        if name is None:
            return
        txn = self._txn(name)
        ts = data.get("timestamp")
        key = _ts_key(ts)
        objects = data.get("objects")
        read_only = bool(data.get("read_only")) or txn.read_only
        if txn.status == "committed":
            # Per-site delivery fan-out after a coordinator decision:
            # tolerated, but only at the decided timestamp.
            if key != txn.commit_key:
                self._violation(
                    "commit-timestamp",
                    f"{name!r} re-committed with timestamp {ts!r} after "
                    f"committing at {txn.commit_ts!r}",
                    transaction=name,
                )
                return
            if objects:
                for obj in objects:
                    self._deliver(obj, txn)
            return
        if txn.status == "aborted":
            self._violation(
                "well-formedness",
                f"{name!r} committed after aborting",
                transaction=name,
            )
            return
        if txn.pending:
            unanswered = sorted(txn.pending)
            self._violation(
                "well-formedness",
                f"{name!r} committed with unanswered invocation(s) at "
                f"{', '.join(repr(o) for o in unanswered)}",
                obj=unanswered[0],
                transaction=name,
            )
            txn.pending.clear()
        if key is None:
            if any(txn.ops.values()):
                self._violation(
                    "commit-timestamp",
                    f"{name!r} committed operations without a timestamp",
                    transaction=name,
                )
            txn.status = "committed"
            return
        owner = self._ts_index.get(key)
        if owner is not None and owner != name:
            self._violation(
                "commit-timestamp",
                f"commit timestamp {ts!r} of {name!r} duplicates "
                f"{owner!r}'s (timestamps must be unique)",
                transaction=name,
            )
        else:
            self._ts_index[key] = name
        if read_only:
            if txn.start_key is not None and key != txn.start_key:
                self._violation(
                    "commit-timestamp",
                    f"read-only {name!r} committed at {ts!r} instead of "
                    "its start timestamp (§7.1 multiversion reads "
                    "validate at start)",
                    transaction=name,
                )
        elif txn.bound_key is not None and not _lt(txn.bound_key, key):
            self._violation(
                "commit-timestamp",
                f"{name!r} committed at {ts!r}, but it had already "
                f"observed a commit at timestamp-key {txn.bound_key!r} "
                f"at {txn.bound_obj!r} — §3.3 requires the later "
                "timestamp to dominate",
                obj=txn.bound_obj,
                transaction=name,
            )
        txn.status = "committed"
        txn.commit_ts = ts
        txn.commit_key = key
        replayed_key = self._replayed.get(name)
        if replayed_key is not None and replayed_key != key:
            self._violation(
                "recovery",
                f"{name!r} committed at {ts!r} but recovery had replayed "
                "it at a different timestamp",
                transaction=name,
            )
        for obj, ops in txn.ops.items():
            if ops:
                self._insert_entry(self._object(obj), key, ts, name, tuple(ops))
        if objects is not None:
            # A commit that names its objects *is* the delivery (sim and
            # replicated managers, per-site distributed deliveries).  A
            # coordinator decision without ``objects`` raises no
            # watermark: its sites have not seen the commit yet.
            for obj in objects:
                self._deliver(obj, txn)

    def _deliver(self, obj: str, txn: _TxnState) -> None:
        state = self._object(obj)
        if txn.commit_key is not None and _lt(
            state.watermark_key, txn.commit_key
        ):
            state.watermark_key = txn.commit_key
        state.held.pop(txn.name, None)

    def _insert_entry(
        self, state: _ObjectState, key: Any, ts: Any, name: str, ops: Tuple
    ) -> None:
        """Splice a committed entry into the object's timestamp order and
        re-check serial legality (family 2's core)."""
        if name in state.committed_txns:
            return
        state.committed_txns.add(name)
        if state.spec is None:
            return
        keys = state.entry_keys
        position = len(keys)
        while position > 0 and _lt(key, keys[position - 1]):
            position -= 1
        spec = state.spec
        if position == len(keys):
            next_states = spec.run_from(state.states, ops)
            if not next_states:
                self._violation(
                    "serial-order",
                    f"committed operations at {state.name!r} are illegal "
                    f"in commit-timestamp order: appending {name!r}'s "
                    f"{', '.join(str(op) for op in ops)} at timestamp "
                    f"{ts!r} leaves no legal serial state",
                    obj=state.name,
                    transaction=name,
                )
                return
            keys.append(key)
            state.entries.append((key, ts, name, ops))
            state.states = next_states
            return
        # A commit landed *inside* the established order (a read-only
        # transaction validating at its start timestamp): replay the
        # whole sequence from the recorded initial states.
        candidate = list(state.entries)
        candidate.insert(position, (key, ts, name, ops))
        states = state.initial
        for entry_key, entry_ts, entry_name, entry_ops in candidate:
            next_states = spec.run_from(states, entry_ops)
            if not next_states:
                self._violation(
                    "serial-order",
                    f"inserting {name!r} at timestamp {ts!r} makes the "
                    f"committed sequence at {state.name!r} illegal at "
                    f"{entry_name!r}'s "
                    f"{', '.join(str(op) for op in entry_ops)}",
                    obj=state.name,
                    transaction=name,
                )
                return
            states = next_states
        state.entries = candidate
        state.entry_keys = [entry[0] for entry in candidate]
        state.states = states

    def _on_abort(self, data: Dict[str, Any]) -> None:
        name = data.get("transaction")
        if name is None:
            return
        txn = self._txn(name)
        objects = data.get("objects")
        # Locks are freed exactly where the abort is *delivered*: an
        # abort decision without an ``objects`` payload (a distributed
        # coordinator's verdict) releases nothing yet — each site still
        # legitimately refuses conflicting operations until its own
        # delivery (which arrives with the objects it released).
        if objects is not None:
            for obj in objects:
                state = self._objects.get(obj)
                if state is not None:
                    state.held.pop(name, None)
                txn.pending.pop(obj, None)
        if txn.status == "aborted":
            return  # per-site delivery fan-out of one abort decision
        if txn.status == "committed":
            self._violation(
                "well-formedness",
                f"{name!r} aborted after committing",
                transaction=name,
            )
            return
        txn.status = "aborted"

    # -- family 4: compaction / recovery safety -------------------------

    def _on_compaction(self, data: Dict[str, Any]) -> None:
        obj = data.get("obj")
        if obj is None:
            return
        old_key = _ts_key(data.get("old_horizon"))
        new_key = _ts_key(data.get("new_horizon"))
        if _lt(new_key, old_key):
            self._violation(
                "compaction",
                f"horizon at {obj!r} rewound from "
                f"{data.get('old_horizon')!r} to "
                f"{data.get('new_horizon')!r} (Lemma 18: horizons only "
                "advance)",
                obj=obj,
            )
        for name in data.get("forgotten") or ():
            txn = self._txns.get(name)
            committed = (
                txn is not None and txn.status == "committed"
            ) or name in self._replayed
            if not committed:
                self._violation(
                    "compaction",
                    f"compaction at {obj!r} folded {name!r} into the "
                    "version, but that transaction never committed "
                    "(an uncommitted intention was collapsed)",
                    obj=obj,
                    transaction=name,
                )
                continue
            commit_key = (
                txn.commit_key if txn is not None and txn.commit_key is not None
                else self._replayed.get(name)
            )
            if commit_key is not None and _lt(new_key, commit_key):
                self._violation(
                    "compaction",
                    f"compaction at {obj!r} folded {name!r} (committed at "
                    f"key {commit_key!r}) but only advanced the horizon "
                    f"to {data.get('new_horizon')!r}",
                    obj=obj,
                    transaction=name,
                )

    def _on_replay(self, data: Dict[str, Any]) -> None:
        if data.get("record") != "commit":
            return
        name = data.get("transaction")
        key = _ts_key(data.get("timestamp"))
        if name is None or key is None:
            return
        txn = self._txns.get(name)
        if (
            txn is not None
            and txn.status == "committed"
            and txn.commit_key is not None
            and txn.commit_key != key
        ):
            self._violation(
                "recovery",
                f"recovery replayed {name!r} at {data.get('timestamp')!r}, "
                f"but the pre-crash trace committed it at "
                f"{txn.commit_ts!r}",
                transaction=name,
            )
        if _lt(key, self._replay_last_key):
            self._violation(
                "recovery",
                f"recovery replayed {name!r} out of timestamp order",
                transaction=name,
            )
        else:
            self._replay_last_key = key
        self._replayed[name] = key

    def _on_site_crash(self, data: Dict[str, Any]) -> None:
        site = data.get("site")
        if data.get("hard"):
            # Full volatile loss: every intentions list homed at the site
            # is destroyed, with no per-transaction events — release all
            # holds there (prepared transactions re-acquire their locks
            # via wal.replay / site.recover, outside family 3's view).
            self._replay_last_key = None
            for state in self._objects.values():
                if state.site is None or site is None or state.site == site:
                    for name in list(state.held):
                        if (site, name) in self._prepared:
                            continue  # stable: locks survive and recover
                        state.held.pop(name, None)
                        txn = self._txns.get(name)
                        if txn is not None:
                            txn.pending.pop(state.name, None)
            return
        for name in data.get("victims") or ():
            txn = self._txns.get(name)
            if txn is None or txn.status != "active":
                continue
            # The site freed the victims' locks without per-transaction
            # abort events; mirror that release (at this site's objects).
            for state in self._objects.values():
                if state.site is None or site is None or state.site == site:
                    state.held.pop(name, None)
                    txn.pending.pop(state.name, None)

    # -- violation plumbing ---------------------------------------------

    def _violation(
        self,
        rule: str,
        message: str,
        obj: Optional[str] = None,
        transaction: Optional[str] = None,
    ) -> None:
        signature = (rule, obj, transaction)
        for existing in self.violations:
            if existing.signature() == signature:
                self.suppressed += 1
                return
        violation = Violation(
            rule=rule,
            message=message,
            obj=obj,
            transaction=transaction,
            index=len(self._events) - 1,
        )
        if self._minimize:
            violation.witness = self._witness_for(signature)
        self.violations.append(violation)
        if self._emit_to is not None:
            self._emit_to.emit(
                "check.violation",
                rule=rule,
                message=message,
                obj=obj,
                txn=transaction,
                witness_events=len(violation.witness),
            )

    def _witness_for(self, signature: Tuple) -> Tuple[TraceEvent, ...]:
        rule, obj, transaction = signature

        def reproduces(candidate) -> bool:
            sub = AtomicityChecker(
                minimize=False,
                specs=self._specs,
                relations=self._relations,
            )
            for event in candidate:
                sub.check_event(event)
            return any(v.signature() == signature for v in sub.violations)

        base: List[TraceEvent] = self._events
        if len(base) > self._max_witness_events:
            filtered = [
                event
                for event in base
                if event.kind == "obj.create"
                or event.transaction == transaction
                or event.data.get("obj") == obj
                or (obj is not None and obj in (event.data.get("objects") or ()))
            ]
            if len(filtered) <= self._max_witness_events and reproduces(filtered):
                base = filtered
            else:
                return ()  # too large to minimize online
        return minimize_witness(base, reproduces)
