"""Flight recorder: an always-on event ring that dumps on anomalies.

A live server cannot afford a full JSONL trace of every request, but
when something goes wrong the *recent* history is exactly what a
postmortem needs.  The :class:`FlightRecorder` is the standard
compromise: it retains the last ``capacity`` events in a bounded ring
(:class:`~repro.obs.sinks.RingBufferSink`) at all times, and when an
anomaly trigger fires it snapshots the ring to a tagged-codec JSONL
file that :func:`~repro.obs.sinks.read_jsonl` replays — through the
:class:`~repro.obs.checker.AtomicityChecker`, the span builder, or
``repro analyze``.

Triggers (each names the ``reason`` tag in the dump file):

=====================  =============================================
reason                 fires when
=====================  =============================================
``violation``          the atomicity checker refuted the run
                       (``check.violation`` observed)
``deadlock``           a waits-for cycle was refused
                       (``lock.deadlock``)
``busy``               the server shed load (``server.busy``)
``queue-high-water``   a ``server.request`` was admitted at or above
                       ``queue_high_water`` depth
``drain``              graceful shutdown completed (``server.drain``)
                       — the terminal snapshot of the run
``p99-breach``         the recorder's own latency histogram crossed
                       ``latency_threshold`` at p99 (needs at least
                       ``min_latency_samples`` completed transactions)
=====================  =============================================

Dump files are named deterministically — ``flight-<NNN>-<reason>.jsonl``
with a per-recorder sequence number, no wall clock — and begin with a
synthetic ``flight.dump`` event recording the trigger, the retained
window size, and how far the ring's window was exceeded (``dropped``),
so a replayed dump is honest about its own truncation.

A ``cooldown_events`` budget separates consecutive dumps: once a dump
fires, the recorder stays quiet until that many new events arrive, so a
sustained anomaly (every request BUSY) yields a bounded number of
snapshots rather than one per event.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional

from .codec import encode_value
from .events import TraceEvent
from .registry import DEFAULT_LATENCY_BUCKETS, Histogram
from .sinks import RingBufferSink

__all__ = ["FlightRecorder"]

_REASON_SAFE = re.compile(r"[^a-zA-Z0-9_-]+")

#: Event kinds that unconditionally trigger a dump, mapped to reasons.
_TRIGGER_KINDS = {
    "check.violation": "violation",
    "lock.deadlock": "deadlock",
    "server.busy": "busy",
    "server.drain": "drain",
}


class FlightRecorder:
    """Bounded ring of recent events with anomaly-triggered dumps.

    Parameters
    ----------
    directory:
        Where dump files go (created on first dump).
    capacity:
        Ring size in events; older events are evicted (and counted).
    queue_high_water:
        When set, a ``server.request`` admitted at ``queue_depth >=``
        this value triggers a ``queue-high-water`` dump.
    latency_threshold:
        When set, completed-transaction latency (``txn.begin`` →
        terminal event, bus clock units) feeds an internal histogram;
        a p99 above this value triggers a ``p99-breach`` dump.
    min_latency_samples:
        Completed transactions required before the p99 trigger arms.
    cooldown_events:
        Events that must arrive between consecutive dumps.
    emit_to:
        Optional :class:`~repro.obs.bus.TraceBus` to announce dumps on
        (a ``flight.dump`` event).  The recorder ignores incoming
        ``flight.dump`` events, so subscribing it to the same bus it
        announces on cannot recurse.
    profiler:
        Optional :class:`~repro.obs.prof.SamplingProfiler`.  A
        ``p99-breach`` dump then also snapshots the sampler's
        collapsed stacks to ``flight-<NNN>-p99-breach.folded`` — the
        flamegraph of *what the process was doing* when the tail blew
        out, next to the event history of *what happened*.
    """

    def __init__(
        self,
        directory: str,
        capacity: int = 2048,
        queue_high_water: Optional[int] = None,
        latency_threshold: Optional[float] = None,
        min_latency_samples: int = 50,
        cooldown_events: int = 256,
        emit_to: Optional[Any] = None,
        profiler: Optional[Any] = None,
    ):
        self.directory = directory
        self.ring = RingBufferSink(capacity)
        self.queue_high_water = queue_high_water
        self.latency_threshold = latency_threshold
        self.min_latency_samples = min_latency_samples
        self.cooldown_events = cooldown_events
        self._emit_to = emit_to
        self.profiler = profiler
        #: Paths of every dump written, in order.
        self.dumps: List[str] = []
        #: Paths of every ``.folded`` profile snapshot, in order.
        self.profile_snapshots: List[str] = []
        self.last_reason: Optional[str] = None
        self._seq = 0
        self._events_since_dump: Optional[int] = None  # None: never dumped
        self._latency = Histogram("flight.latency", DEFAULT_LATENCY_BUCKETS)
        self._begin_ts: Dict[str, float] = {}

    # -- bus sink ------------------------------------------------------

    def __call__(self, event: TraceEvent) -> None:
        if event.kind == "flight.dump":
            # Our own announcement echoed back through a shared bus.
            return
        self.ring(event)
        if self._events_since_dump is not None:
            self._events_since_dump += 1
        reason = self._trigger(event)
        if reason is not None:
            self.dump(reason, ts=event.ts)

    def _trigger(self, event: TraceEvent) -> Optional[str]:
        """The dump reason this event fires, if any."""
        kind = event.kind
        reason = _TRIGGER_KINDS.get(kind)
        if reason is not None:
            return reason
        if (
            kind == "server.request"
            and self.queue_high_water is not None
            and (event.data.get("queue_depth") or 0) >= self.queue_high_water
        ):
            return "queue-high-water"
        if self.latency_threshold is not None:
            transaction = event.data.get("transaction")
            if transaction is not None:
                if kind == "txn.begin":
                    self._begin_ts[transaction] = event.ts
                elif kind in ("txn.commit", "txn.abort"):
                    begin = self._begin_ts.pop(transaction, None)
                    if begin is not None:
                        self._latency.observe(max(0.0, event.ts - begin))
                        if (
                            self._latency.total >= self.min_latency_samples
                            and self._latency.quantile(0.99)
                            > self.latency_threshold
                        ):
                            return "p99-breach"
        return None

    # -- dumping -------------------------------------------------------

    def dump(self, reason: str, ts: float = 0.0) -> Optional[str]:
        """Snapshot the ring to a JSONL file; returns the path.

        Honors the cooldown (returns ``None`` when still cooling
        down).  Callable directly for operator-initiated snapshots.
        """
        since = self._events_since_dump
        if since is not None and since < self.cooldown_events:
            return None
        events = self.ring.events()
        safe_reason = _REASON_SAFE.sub("-", reason) or "manual"
        self._seq += 1
        name = f"flight-{self._seq:03d}-{safe_reason}.jsonl"
        path = os.path.join(self.directory, name)
        os.makedirs(self.directory, exist_ok=True)
        header = {
            "ts": ts,
            "kind": "flight.dump",
            "reason": reason,
            "events": len(events),
            "dropped": self.ring.dropped,
            "seen": self.ring.seen,
            "path": name,
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, default=repr) + "\n")
            for event in events:
                record: Dict[str, Any] = {"ts": event.ts, "kind": event.kind}
                for key, value in event.data.items():
                    record[key] = encode_value(value)
                handle.write(json.dumps(record, default=repr) + "\n")
        self.dumps.append(path)
        self.last_reason = reason
        self._events_since_dump = 0
        if reason == "p99-breach" and self.profiler is not None:
            folded_path = os.path.join(
                self.directory, f"flight-{self._seq:03d}-{safe_reason}.folded"
            )
            with open(folded_path, "w", encoding="utf-8") as handle:
                handle.write(self.profiler.folded())
            self.profile_snapshots.append(folded_path)
        emit_to = self._emit_to
        if emit_to is not None:
            emit_to.emit(
                "flight.dump",
                reason=reason,
                events=len(events),
                dropped=self.ring.dropped,
                seen=self.ring.seen,
                path=path,
            )
        return path

    # -- introspection -------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """JSON-friendly summary for the ``stats`` protocol op."""
        return {
            "dumps": len(self.dumps),
            "last_reason": self.last_reason,
            "last_path": self.dumps[-1] if self.dumps else None,
            "retained": len(self.ring),
            "seen": self.ring.seen,
            "dropped_events": self.ring.dropped,
            "profile_snapshots": len(self.profile_snapshots),
        }
