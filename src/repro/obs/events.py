"""Typed trace events — the vocabulary of the observability layer.

The paper's interesting quantities are *invisible* in an end-of-run
metrics row: which operation pair a lock refusal named (Section 5's
conflict relation at work), how far the horizon let intentions be
compacted (Section 6, Lemmas 18-23), which messages a 2PC round cost.
Trace events make each of those a first-class, timestamped record.

Event taxonomy (the ``kind`` field):

=====================  =============================================
kind                   emitted when / payload highlights
=====================  =============================================
``txn.begin``          a transaction starts (``transaction``,
                       ``read_only``)
``txn.invoke``         an invocation is accepted by a LOCK machine
                       (``transaction``, ``obj``, ``operation``,
                       ``args``)
``txn.respond``        a response is accepted (``transaction``,
                       ``obj``, ``result``)
``txn.commit``         a commit event is delivered (``transaction``,
                       ``timestamp``, ``objects`` or ``site``)
``txn.abort``          an abort event is delivered (``transaction``)
``lock.conflict``      a lock refusal: the requested operation, the
                       held operation it conflicts with, the holder,
                       and the *relation that refused it*
``lock.block``         a partial operation had no legal outcome in
                       the view (``WouldBlock``)
``lock.wait``          a transaction blocks on a holder (block
                       wait-policy)
``lock.deadlock``      a waits-for cycle was refused (victim aborts)
``compaction.advance`` ``forget()`` folded intentions into the
                       version: old/new horizon, collapsed-prefix
                       length, forgotten transactions
``wal.append``         a record hit the write-ahead log (``record``
                       names the record kind, ``transaction`` when
                       it has one)
``wal.replay``         recovery replayed a logged transaction
``net.send``           a message entered the simulated network
``net.deliver``        a message reached its destination
``site.crash``         fail-stop injected (``hard`` distinguishes
                       volatile-loss crashes)
``site.recover``       checkpoint + WAL replay rebuilt a site or
                       manager
``obj.create``         an object registered with a manager or site
                       (``obj``, ``adt``, ``protocol``, ``relation``,
                       ``initial`` serial states) — the checker reads
                       its spec and conflict relation from this
``validation.begin``   an optimistic commit entered certification
                       (``transaction``, ``obj``, ``start``)
``validation.success`` certification passed (``path`` says whether the
                       fast path or a dependency replay decided it)
``validation.invalidated``  certification failed, naming the committed
                       transaction whose operation invalidated the
                       view (``invalidated_by``, ``operation``)
``quorum.assemble``    a replica quorum was chosen (``obj``, ``kind``
                       initial/final, ``replicas``, ``size``)
``quorum.deny``        a quorum could not be formed — too many
                       replicas down, or a quorum-intersection rule
                       violated at assignment validation
``replica.read``       one replica served its log to a view
``replica.write``      one replica absorbed committed intentions
``check.violation``    the atomicity checker refuted a property of
                       the run (``rule``, ``txn``, ``obj``,
                       ``witness_events``)
``server.connect``     a client connection was accepted by the wire
                       tier (``session``, ``peer``)
``server.disconnect``  a connection closed; any transactions it still
                       held were aborted (``session``, ``requests``,
                       ``aborted``)
``server.request``     a request was admitted to a worker queue
                       (``session``, ``action``, ``queue_depth``,
                       ``shard``, and the client's ``trace`` id)
``server.busy``        a request was refused with BUSY — the bounded
                       work queue was past its high-water mark
``server.decode``      a complete request was decoded off the wire;
                       carries the client's trace context (``trace``
                       id and ``sent`` timestamp), so the client→server
                       leg of an end-to-end span is measurable
``server.respond``     a worker-executed request was answered; carries
                       the per-phase latency split (``queued`` in the
                       shard queue, ``executing`` against the manager,
                       ``respond`` writing the reply) plus the trace id
``server.drain``       graceful shutdown finished: accepted requests
                       all answered, in-flight transactions resolved
                       (``sessions``, ``finished``, ``aborted``)
``flight.dump``        the flight recorder tripped an anomaly trigger
                       and dumped its ring to a JSONL snapshot
                       (``reason``, ``events``, ``dropped``, ``path``)
=====================  =============================================

Events are deliberately plain: a frozen dataclass of ``(ts, kind,
data)`` where ``data`` is a small dict.  Everything downstream — spans,
metric registries, JSONL files — is a fold over the event stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Mapping

__all__ = ["TraceEvent", "EVENT_KINDS", "EVENT_PAYLOADS"]

#: The closed set of event kinds the instrumentation emits.  Sinks must
#: tolerate unknown kinds (forward compatibility), but the CLI and the
#: docs enumerate exactly these.
EVENT_KINDS = frozenset(
    {
        "txn.begin",
        "txn.invoke",
        "txn.respond",
        "txn.commit",
        "txn.abort",
        "lock.conflict",
        "lock.block",
        "lock.wait",
        "lock.deadlock",
        "compaction.advance",
        "wal.append",
        "wal.replay",
        "net.send",
        "net.deliver",
        "site.crash",
        "site.recover",
        "obj.create",
        "validation.begin",
        "validation.success",
        "validation.invalidated",
        "quorum.assemble",
        "quorum.deny",
        "replica.read",
        "replica.write",
        "check.violation",
        "server.connect",
        "server.disconnect",
        "server.request",
        "server.busy",
        "server.decode",
        "server.respond",
        "server.drain",
        "flight.dump",
    }
)

#: The declared payload vocabulary per kind — the contract between the
#: emit sites and the consumers (the checker's handlers, the span
#: builder, the registry sink).  ``repro lint`` (REP101) statically
#: checks every ``tracer.emit(...)`` keyword against this map, and
#: cross-references it against the keys :mod:`repro.obs.checker`
#: actually reads, so a mistyped key can neither be emitted nor
#: silently dropped by the oracle.  Keys must be string literals here;
#: the lint rule reads this file without importing it.
EVENT_PAYLOADS: Mapping[str, FrozenSet[str]] = {
    "txn.begin": frozenset({"transaction", "read_only", "timestamp"}),
    "txn.invoke": frozenset(
        {"transaction", "obj", "operation", "args", "read_only"}
    ),
    "txn.respond": frozenset({"transaction", "obj", "result", "read_only"}),
    "txn.commit": frozenset(
        {"transaction", "timestamp", "objects", "site", "read_only"}
    ),
    "txn.abort": frozenset({"transaction", "objects", "site", "read_only"}),
    "lock.conflict": frozenset(
        {"transaction", "obj", "operation", "holder", "held", "relation"}
    ),
    "lock.block": frozenset({"transaction", "obj", "operation"}),
    "lock.wait": frozenset({"transaction", "holder"}),
    "lock.deadlock": frozenset({"transaction", "holder", "cycle"}),
    "compaction.advance": frozenset(
        {
            "obj",
            "old_horizon",
            "new_horizon",
            "collapsed",
            "forgotten",
            "retained",
        }
    ),
    "wal.append": frozenset({"record", "transaction", "obj", "site"}),
    "wal.replay": frozenset({"record", "transaction", "timestamp"}),
    "net.send": frozenset({"label"}),
    "net.deliver": frozenset({"label"}),
    "site.crash": frozenset({"site", "hard", "victims"}),
    "site.recover": frozenset(
        {
            "site",
            "objects",
            "replayed_records",
            "replayed_operations",
            "prepared",
            "discarded",
            "from_checkpoint",
        }
    ),
    "obj.create": frozenset(
        {
            "obj",
            "adt",
            "protocol",
            "relation",
            "initial",
            "site",
            "replicas",
            "recovered",
        }
    ),
    "validation.begin": frozenset({"transaction", "obj", "start", "new_commits"}),
    "validation.success": frozenset({"transaction", "obj", "path"}),
    "validation.invalidated": frozenset(
        {"transaction", "obj", "invalidated_by", "operation"}
    ),
    "quorum.assemble": frozenset(
        {"obj", "kind", "quorum", "members", "live", "size", "replicas"}
    ),
    "quorum.deny": frozenset(
        {
            "obj",
            "quorum",
            "live",
            "needed",
            "replicas",
            "initial",
            "final",
            "dependent",
            "depended",
        }
    ),
    "replica.read": frozenset({"obj", "replica", "entries"}),
    "replica.write": frozenset({"obj", "replica", "entries"}),
    "check.violation": frozenset(
        {"rule", "txn", "obj", "message", "witness_events"}
    ),
    "server.connect": frozenset({"session", "peer"}),
    "server.disconnect": frozenset({"session", "requests", "aborted"}),
    "server.request": frozenset(
        {"session", "action", "queue_depth", "shard", "trace"}
    ),
    "server.busy": frozenset(
        {"session", "action", "queue_depth", "shard", "trace"}
    ),
    "server.decode": frozenset(
        {"session", "action", "trace", "sent", "transaction"}
    ),
    "server.respond": frozenset(
        {
            "session",
            "action",
            "trace",
            "transaction",
            "shard",
            "queued",
            "executing",
            "respond",
        }
    ),
    "server.drain": frozenset({"sessions", "finished", "aborted"}),
    "flight.dump": frozenset(
        {"reason", "events", "dropped", "seen", "path"}
    ),
}


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped observation.

    ``ts`` is whatever clock the emitting :class:`~repro.obs.bus.TraceBus`
    was configured with — simulated time inside the discrete-event
    harness, wall-clock seconds elsewhere.  ``data`` holds the
    kind-specific payload.
    """

    ts: float
    kind: str
    data: Mapping[str, Any] = field(default_factory=dict)

    @property
    def transaction(self) -> Any:
        """The transaction this event concerns, if any."""
        return self.data.get("transaction")

    def to_dict(self) -> Dict[str, Any]:
        """Flatten to a JSON-friendly dict (payload keys at top level)."""
        record: Dict[str, Any] = {"ts": self.ts, "kind": self.kind}
        for key, value in self.data.items():
            record[key] = value
        return record

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = " ".join(f"{k}={v!r}" for k, v in self.data.items())
        return f"[{self.ts:12.4f}] {self.kind:20s} {body}"
