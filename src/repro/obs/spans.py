"""Per-transaction spans: begin→completion aggregation of trace events.

A *span* is the transaction-level rollup of the event stream: when the
transaction began, how it ended, which objects it touched, and where its
latency went.  The latency breakdown follows the classic queued /
blocked / executing split:

* **executing** — intervals that end in an accepted ``txn.invoke`` /
  ``txn.respond`` (the machine did work);
* **blocked** — intervals that end in a ``lock.conflict``,
  ``lock.block``, ``lock.wait`` or ``lock.deadlock`` (the transaction
  paid for concurrency control);
* **queued** — everything else (scheduling delay, think time inside the
  transaction, commit processing).

:class:`SpanBuilder` is a bus sink: subscribe it to a
:class:`~repro.obs.bus.TraceBus` and read ``builder.spans`` afterwards.
Every committed or aborted transaction yields exactly one span; events
arriving after completion (e.g. per-site commit deliveries in the
distributed runtime) are tallied as ``extra_events`` rather than
reopening the span.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from .events import TraceEvent

__all__ = [
    "Span",
    "SpanBuilder",
    "WIRE_SPAN_KINDS",
    "SPAN_IRRELEVANT_KINDS",
]

#: Event kinds that end a "blocked" interval.
_BLOCKED_KINDS = frozenset(
    {"lock.conflict", "lock.block", "lock.wait", "lock.deadlock"}
)
#: Event kinds that end an "executing" interval.
_EXECUTING_KINDS = frozenset({"txn.invoke", "txn.respond"})
#: Event kinds that complete a span.
_TERMINAL_KINDS = frozenset({"txn.commit", "txn.abort"})

#: Serving-tier kinds the span builder *consumes*: they carry the
#: client's trace context and the per-request phase split, and are
#: folded into the owning transaction's wire phases (never into the
#: kinds list — they are wire bookkeeping, not history events).
WIRE_SPAN_KINDS = frozenset({"server.decode", "server.respond"})

#: Kinds the span builder deliberately ignores: connection-scoped or
#: server-scoped, with no single owning transaction.  The trace-
#: completeness test asserts every ``server.*``/``flight.*`` kind in
#: ``EVENT_KINDS`` appears either here or in :data:`WIRE_SPAN_KINDS`,
#: so a new serving-tier kind cannot silently fall through the builder.
SPAN_IRRELEVANT_KINDS = frozenset(
    {
        "server.connect",
        "server.disconnect",
        "server.request",
        "server.busy",
        "server.drain",
        "flight.dump",
    }
)


@dataclass
class Span:
    """One transaction's aggregated trace."""

    transaction: str
    begin_ts: Optional[float] = None
    end_ts: Optional[float] = None
    #: ``"committed"`` / ``"aborted"`` / None while open.
    outcome: Optional[str] = None
    #: Commit timestamp (the protocol's, not the clock's), if committed.
    timestamp: Any = None
    read_only: bool = False
    invokes: int = 0
    responds: int = 0
    conflicts: int = 0
    blocks: int = 0
    objects: Set[str] = field(default_factory=set)
    #: Latency breakdown (same clock units as the bus).
    queued: float = 0.0
    blocked: float = 0.0
    executing: float = 0.0
    #: Events observed after the span completed (distributed fan-out).
    extra_events: int = 0
    #: The raw event kinds, in arrival order (for well-formedness checks).
    kinds: List[str] = field(default_factory=list)
    #: The originating client's trace id, when the transaction was
    #: served over the wire (``server.decode``/``server.respond``).
    trace: Optional[str] = None
    #: End-to-end wire phases, accumulated across the transaction's
    #: requests: ``client`` (send→decode), ``queue`` (shard queue),
    #: ``execute`` (machine work), ``respond`` (reply write).
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def latency(self) -> Optional[float]:
        """Begin-to-completion time, if both ends were observed."""
        if self.begin_ts is None or self.end_ts is None:
            return None
        return self.end_ts - self.begin_ts

    @property
    def wire_latency(self) -> Optional[float]:
        """Total measured wire time (sum of phases), when served."""
        if not self.phases:
            return None
        return sum(self.phases.values())

    def violations(self) -> List[str]:
        """Well-formedness defects (empty list == well formed).

        A well-formed span saw its begin first, its terminal last,
        every invoke matched by a response in between, and monotone
        breakdown totals that add up to the observed latency.
        """
        problems: List[str] = []
        if self.begin_ts is None:
            problems.append("no txn.begin observed")
        if self.outcome is None:
            problems.append("no terminal event observed")
        if self.kinds and self.kinds[0] != "txn.begin":
            problems.append(f"first event was {self.kinds[0]}, not txn.begin")
        if self.kinds and self.outcome and self.kinds[-1] not in _TERMINAL_KINDS:
            problems.append(f"last event was {self.kinds[-1]}, not terminal")
        if self.invokes != self.responds:
            problems.append(
                f"{self.invokes} invokes vs {self.responds} responses"
            )
        latency = self.latency
        if latency is not None:
            total = self.queued + self.blocked + self.executing
            if total - latency > 1e-9:
                problems.append("breakdown exceeds observed latency")
        return problems

    @property
    def well_formed(self) -> bool:
        """True when :meth:`violations` finds nothing."""
        return not self.violations()


class SpanBuilder:
    """Bus sink folding transaction events into :class:`Span` objects.

    ``pending_limit`` bounds the pre-begin stash: a decoded request
    whose transaction never opens (refused handle, malformed follow-up)
    would otherwise sit in ``_pending`` forever.  When the stash is
    full, the oldest entry is evicted FIFO and ``pending_evicted``
    counts the loss — an evicted transaction that *does* later open
    merely loses its wire phases, never its machine events.
    """

    def __init__(self, pending_limit: int = 512):
        #: Completed spans, in completion order.
        self.spans: List[Span] = []
        #: Still-open spans by transaction name.
        self.open: Dict[str, Span] = {}
        #: Completed spans by transaction name (latest wins).
        self._done: Dict[str, Span] = {}
        #: Last event timestamp per open transaction (interval anchor).
        self._last_ts: Dict[str, float] = {}
        #: Wire context seen before the machine's ``txn.begin`` — the
        #: serving tier decodes a request (and stamps its trace) before
        #: the manager opens the transaction, so the first
        #: ``server.decode`` predates the span.  Stashed here and
        #: promoted to the real span when it opens, evicted FIFO past
        #: ``pending_limit`` entries.
        self._pending: Dict[str, Span] = {}
        self.pending_limit = pending_limit
        #: Pre-begin spans dropped because the stash was full.
        self.pending_evicted = 0

    def _fold_wire(self, event: TraceEvent) -> None:
        """Fold a ``server.decode``/``server.respond`` into its span.

        Wire events bracket the machine's own event window: the first
        decode arrives before ``txn.begin``, the commit's respond after
        ``txn.commit``.  They therefore fold into whichever span exists
        — open, already completed, or a pre-begin stash — rather than
        participating in the queued/blocked/executing interval split.
        """
        transaction = event.data.get("transaction")
        if transaction is None:
            return
        span = self.open.get(transaction) or self._done.get(transaction)
        if span is None:
            span = self._pending.get(transaction)
            if span is None:
                span = Span(transaction=transaction)
                while len(self._pending) >= self.pending_limit:
                    self._pending.pop(next(iter(self._pending)))
                    self.pending_evicted += 1
                self._pending[transaction] = span
        trace = event.data.get("trace")
        if trace is not None:
            span.trace = trace
        if event.kind == "server.decode":
            sent = event.data.get("sent")
            if sent is not None:
                span.phases["client"] = span.phases.get("client", 0.0) + max(
                    0.0, event.ts - sent
                )
        else:  # server.respond
            for payload_key, phase in (
                ("queued", "queue"),
                ("executing", "execute"),
                ("respond", "respond"),
            ):
                value = event.data.get(payload_key)
                if value is not None:
                    span.phases[phase] = span.phases.get(phase, 0.0) + value

    def __call__(self, event: TraceEvent) -> None:
        if event.kind in WIRE_SPAN_KINDS:
            self._fold_wire(event)
            return
        if event.kind in SPAN_IRRELEVANT_KINDS:
            return
        transaction = event.data.get("transaction")
        if transaction is None or event.kind.startswith(("wal.", "net.")):
            return
        done = self._done.get(transaction)
        if done is not None:
            done.extra_events += 1
            return
        span = self.open.get(transaction)
        if span is None:
            span = self._pending.pop(transaction, None)
            if span is None:
                span = Span(transaction=transaction)
            self.open[transaction] = span
        if event.kind == "txn.begin":
            span.begin_ts = event.ts
            span.read_only = bool(event.data.get("read_only"))
        else:
            anchor = self._last_ts.get(
                transaction, span.begin_ts if span.begin_ts is not None else event.ts
            )
            interval = max(0.0, event.ts - anchor)
            if event.kind in _EXECUTING_KINDS:
                span.executing += interval
            elif event.kind in _BLOCKED_KINDS:
                span.blocked += interval
            else:
                span.queued += interval
        self._last_ts[transaction] = event.ts
        span.kinds.append(event.kind)
        if event.kind == "txn.invoke":
            span.invokes += 1
            obj = event.data.get("obj")
            if obj is not None:
                span.objects.add(obj)
        elif event.kind == "txn.respond":
            span.responds += 1
        elif event.kind == "lock.conflict":
            span.conflicts += 1
        elif event.kind in ("lock.block", "lock.wait"):
            span.blocks += 1
        elif event.kind in _TERMINAL_KINDS:
            span.end_ts = event.ts
            span.outcome = (
                "committed" if event.kind == "txn.commit" else "aborted"
            )
            span.timestamp = event.data.get("timestamp")
            self.spans.append(span)
            self._done[transaction] = span
            del self.open[transaction]
            self._last_ts.pop(transaction, None)

    def committed(self) -> List[Span]:
        """Completed spans that ended in a commit."""
        return [span for span in self.spans if span.outcome == "committed"]

    def aborted(self) -> List[Span]:
        """Completed spans that ended in an abort."""
        return [span for span in self.spans if span.outcome == "aborted"]
