"""Offline trace postmortems: ``repro analyze TRACE.jsonl``.

A server trace (or a flight-recorder dump) is a flat JSONL stream; the
questions an operator asks of it are aggregates: *where did the latency
go, which operation pairs fought, were the shards balanced, how deep
did the queues get, which transactions were slowest?*  This module
folds a replayed event stream into one JSON-friendly report
(:func:`analyze_trace`) and renders it as a readable postmortem
(:func:`render_postmortem`).

Everything here is a pure fold over :class:`~repro.obs.events.TraceEvent`
records — no sockets, no clocks — so the same report comes out of a
live capture, a bench trace, or a flight dump replayed years later.
"""

from __future__ import annotations

import statistics
from collections import Counter as _Counter
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .events import TraceEvent
from .prof import (
    contention_profile,
    critical_path,
    render_contention,
    render_critical_path,
)
from .spans import Span, SpanBuilder

__all__ = ["analyze_trace", "render_postmortem"]

#: Wire + machine phases, in end-to-end order, for breakdowns.
_PHASE_ORDER = ("client", "queue", "execute", "respond")
_MACHINE_ORDER = ("queued", "blocked", "executing")


def _median(values: Sequence[float]) -> Optional[float]:
    return statistics.median(values) if values else None


def _phase_stats(spans: Sequence[Span]) -> Dict[str, Any]:
    """Median per-phase latencies over the given spans."""
    wire: Dict[str, List[float]] = {phase: [] for phase in _PHASE_ORDER}
    machine: Dict[str, List[float]] = {key: [] for key in _MACHINE_ORDER}
    for span in spans:
        for phase, value in span.phases.items():
            wire.setdefault(phase, []).append(value)
        machine["queued"].append(span.queued)
        machine["blocked"].append(span.blocked)
        machine["executing"].append(span.executing)
    return {
        "wire": {
            phase: _median(values) for phase, values in wire.items() if values
        },
        "machine": {
            key: _median(values) for key, values in machine.items() if values
        },
    }


def _waterfall(span: Span) -> Dict[str, float]:
    """One span's end-to-end breakdown, phases in wall order."""
    row: Dict[str, float] = {}
    for phase in _PHASE_ORDER:
        if phase in span.phases:
            row[phase] = span.phases[phase]
    for key in _MACHINE_ORDER:
        row[f"machine.{key}"] = getattr(span, key)
    return row


def _queue_timeline(
    events: Sequence[TraceEvent], buckets: int = 20
) -> List[Dict[str, Any]]:
    """Max/mean admitted queue depth over ``buckets`` time slices."""
    samples = [
        (event.ts, event.data.get("queue_depth") or 0)
        for event in events
        if event.kind == "server.request"
    ]
    if not samples:
        return []
    start = min(ts for ts, _ in samples)
    end = max(ts for ts, _ in samples)
    width = (end - start) / buckets if end > start else 1.0
    slices: List[List[int]] = [[] for _ in range(buckets)]
    for ts, depth in samples:
        index = min(buckets - 1, int((ts - start) / width))
        slices[index].append(depth)
    timeline = []
    for index, depths in enumerate(slices):
        if not depths:
            continue
        timeline.append(
            {
                "t": start + index * width,
                "samples": len(depths),
                "max_depth": max(depths),
                "mean_depth": sum(depths) / len(depths),
            }
        )
    return timeline


def analyze_trace(
    events: Iterable[TraceEvent], slowest: int = 5
) -> Dict[str, Any]:
    """Fold a replayed event stream into a postmortem report."""
    events = list(events)
    builder = SpanBuilder()
    kind_counts: _Counter = _Counter()
    conflict_pairs: _Counter = _Counter()
    pair_relations: Dict[str, str] = {}
    shard_requests: _Counter = _Counter()
    violations: List[Dict[str, Any]] = []
    flight_dumps: List[Dict[str, Any]] = []
    busy = 0
    for event in events:
        kind_counts[event.kind] += 1
        builder(event)
        if event.kind == "lock.conflict":
            pair = (
                f"{event.data.get('operation')}/{event.data.get('held')}"
            )
            conflict_pairs[pair] += 1
            relation = event.data.get("relation")
            if relation is not None:
                pair_relations[pair] = relation
        elif event.kind == "server.respond":
            shard = event.data.get("shard")
            if shard is not None:
                shard_requests[f"shard{shard}"] += 1
        elif event.kind == "server.busy":
            busy += 1
        elif event.kind == "check.violation":
            violations.append(dict(event.data))
        elif event.kind == "flight.dump":
            flight_dumps.append(dict(event.data))

    committed = builder.committed()
    aborted = builder.aborted()
    completed = builder.spans
    latencies = [
        span.latency for span in completed if span.latency is not None
    ]
    shard_counts = list(shard_requests.values())
    imbalance = (
        max(shard_counts) / (sum(shard_counts) / len(shard_counts))
        if shard_counts
        else None
    )
    slowest_spans = sorted(
        (span for span in completed if span.latency is not None),
        key=lambda span: span.latency,
        reverse=True,
    )[:slowest]
    return {
        "events": len(events),
        "kinds": dict(kind_counts),
        "transactions": {
            "completed": len(completed),
            "committed": len(committed),
            "aborted": len(aborted),
            "open": len(builder.open),
            "median_latency": _median(latencies),
            "max_latency": max(latencies) if latencies else None,
        },
        "phases": _phase_stats(committed or completed),
        "conflicts": {
            "total": sum(conflict_pairs.values()),
            "pairs": [
                {
                    "pair": pair,
                    "count": count,
                    "relation": pair_relations.get(pair),
                }
                for pair, count in conflict_pairs.most_common(10)
            ],
        },
        "shards": {
            "requests": dict(shard_requests),
            "imbalance": imbalance,
        },
        "queue_timeline": _queue_timeline(events),
        "busy_rejections": busy,
        "slowest": [
            {
                "transaction": span.transaction,
                "trace": span.trace,
                "outcome": span.outcome,
                "latency": span.latency,
                "waterfall": _waterfall(span),
            }
            for span in slowest_spans
        ],
        "violations": violations,
        "flight_dumps": flight_dumps,
        "critical_path": critical_path(committed or completed),
        "contention": contention_profile(events),
    }


def _fmt(value: Optional[float], scale: float = 1000.0) -> str:
    """Milliseconds with sub-ms precision; ``-`` for missing."""
    if value is None:
        return "-"
    return f"{value * scale:.3f}ms"


def render_postmortem(report: Dict[str, Any]) -> str:
    """Human-readable postmortem from an :func:`analyze_trace` report."""
    lines: List[str] = []
    txn = report["transactions"]
    lines.append("== postmortem ==")
    lines.append(
        f"events: {report['events']}  transactions: {txn['completed']} "
        f"({txn['committed']} committed, {txn['aborted']} aborted, "
        f"{txn['open']} still open)"
    )
    lines.append(
        f"latency: median {_fmt(txn['median_latency'])} "
        f"max {_fmt(txn['max_latency'])}  "
        f"busy rejections: {report['busy_rejections']}"
    )

    phases = report["phases"]
    if phases.get("wire"):
        parts = [
            f"{phase} {_fmt(phases['wire'][phase])}"
            for phase in _PHASE_ORDER
            if phase in phases["wire"]
        ]
        lines.append("wire phases (median): " + "  ".join(parts))
    if phases.get("machine"):
        parts = [
            f"{key} {_fmt(phases['machine'][key])}"
            for key in _MACHINE_ORDER
            if key in phases["machine"]
        ]
        lines.append("machine phases (median): " + "  ".join(parts))

    critical = report.get("critical_path")
    if critical and critical.get("spans"):
        lines.append("")
        # analyze_trace builds the report in bus-clock seconds.
        lines.append(render_critical_path(critical, scale_to_ms=1e3))
    contention = report.get("contention")
    if contention is not None:
        lines.append("")
        lines.append(render_contention(contention))

    conflicts = report["conflicts"]
    lines.append(f"\nconflicts: {conflicts['total']}")
    for row in conflicts["pairs"]:
        relation = f"  [{row['relation']}]" if row.get("relation") else ""
        lines.append(f"  {row['count']:>6d}  {row['pair']}{relation}")

    shards = report["shards"]
    if shards["requests"]:
        total = sum(shards["requests"].values())
        lines.append(
            f"\nshard requests (imbalance x{shards['imbalance']:.2f}):"
        )
        for shard in sorted(shards["requests"]):
            count = shards["requests"][shard]
            lines.append(
                f"  {shard:>8s}  {count:>8d}  ({100.0 * count / total:.1f}%)"
            )

    timeline = report["queue_timeline"]
    if timeline:
        peak = max(row["max_depth"] for row in timeline) or 1
        lines.append("\nqueue depth timeline (admitted requests):")
        for row in timeline:
            bar = "#" * round(20 * row["max_depth"] / peak) if peak else ""
            lines.append(
                f"  t={row['t']:.3f}  max={row['max_depth']:>4d} "
                f"mean={row['mean_depth']:>7.2f}  {bar}"
            )

    if report["slowest"]:
        lines.append("\nslowest transactions:")
        for row in report["slowest"]:
            trace = f" trace={row['trace']}" if row.get("trace") else ""
            lines.append(
                f"  {row['transaction']}  {row['outcome'] or 'open'} "
                f"{_fmt(row['latency'])}{trace}"
            )
            waterfall = row["waterfall"]
            if waterfall:
                parts = [
                    f"{phase}={_fmt(value)}"
                    for phase, value in waterfall.items()
                ]
                lines.append("    " + "  ".join(parts))

    for violation in report["violations"]:
        lines.append(
            f"\nVIOLATION: {violation.get('rule')} "
            f"txn={violation.get('txn')} obj={violation.get('obj')} "
            f"{violation.get('message', '')}"
        )
    for dump in report["flight_dumps"]:
        lines.append(
            f"flight dump: {dump.get('reason')} -> {dump.get('path')} "
            f"({dump.get('events')} events, {dump.get('dropped')} beyond "
            "window)"
        )
    if not report["violations"]:
        lines.append("\nno checker violations in trace")
    return "\n".join(lines) + "\n"
