"""Stock sinks and renderers for the trace bus.

Three consumption styles:

* :class:`RingBufferSink` — keep the last N events in memory (flight
  recorder; attach permanently, inspect on failure);
* :class:`JSONLSink` — append one JSON object per event to a file; the
  log replays with :func:`read_jsonl`;
* the ``render_*`` helpers — human-readable tables for the CLI.
"""

from __future__ import annotations

import json
from collections import Counter as _Counter
from collections import deque
from typing import IO, Any, Dict, Iterable, List, Optional, Sequence, Union

from .codec import decode_value, encode_value
from .events import TraceEvent
from .registry import Histogram
from .spans import Span

__all__ = [
    "RingBufferSink",
    "JSONLSink",
    "read_jsonl",
    "render_events",
    "render_spans",
    "render_histogram",
    "render_kind_summary",
    "spans_as_dicts",
]


class RingBufferSink:
    """Keep the most recent ``capacity`` events (all of them when None).

    The ring is honest about its window: ``dropped`` counts every event
    the bounded deque evicted, so a consumer (the flight recorder, a
    postmortem report) can state "the window was exceeded by N events"
    instead of silently presenting a truncated history as complete.
    """

    def __init__(self, capacity: Optional[int] = None):
        self._events: deque = deque(maxlen=capacity)
        #: Count of every event seen, including ones the ring dropped.
        self.seen = 0
        #: Events evicted oldest-first because the ring was full.
        self.dropped = 0

    def __call__(self, event: TraceEvent) -> None:
        maxlen = self._events.maxlen
        if maxlen is not None and len(self._events) == maxlen:
            self.dropped += 1
        self._events.append(event)
        self.seen += 1

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        """Drop the retained events (``seen``/``dropped`` keep counting)."""
        self._events.clear()


class JSONLSink:
    """Write each event as one JSON line to a path or open file.

    Payload values go through :func:`repro.obs.codec.encode_value`, so
    tuples, state-set frozensets, fractions, and the ``-∞`` horizon
    sentinel survive the file round trip; :func:`read_jsonl` restores
    the original Python values.
    """

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            # The sink owns the handle for its whole lifetime: close()
            # and __exit__ release it, so no `with` block can scope it.
            self._file: IO[str] = open(  # repro: noqa[REP105]
                target, "w", encoding="utf-8"
            )
            self._owns = True
        else:
            self._file = target
            self._owns = False
        self.written = 0

    def __call__(self, event: TraceEvent) -> None:
        record: Dict[str, Any] = {"ts": event.ts, "kind": event.kind}
        for key, value in event.data.items():
            record[key] = encode_value(value)
        self._file.write(json.dumps(record, default=repr) + "\n")
        self.written += 1

    def flush(self) -> None:
        """Push buffered lines to the OS (crash-tolerant tracing: a
        process killed after flushing loses no acknowledged events)."""
        self._file.flush()

    def close(self) -> None:
        """Flush and (when this sink opened the file) close it."""
        self._file.flush()
        if self._owns:
            self._file.close()

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_jsonl(path: str) -> List[TraceEvent]:
    """Replay a JSONL trace file back into :class:`TraceEvent` objects."""
    events: List[TraceEvent] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            ts = record.pop("ts")
            kind = record.pop("kind")
            data = {key: decode_value(value) for key, value in record.items()}
            events.append(TraceEvent(ts, kind, data))
    return events


# ----------------------------------------------------------------------
# Human-readable renderers
# ----------------------------------------------------------------------


def render_events(events: Iterable[TraceEvent], limit: Optional[int] = None) -> str:
    """One line per event; the last ``limit`` events when given."""
    rows = list(events)
    if limit is not None:
        rows = rows[-limit:]
    lines = []
    for event in rows:
        body = " ".join(f"{k}={v}" for k, v in event.data.items())
        lines.append(f"{event.ts:12.4f}  {event.kind:20s} {body}")
    return "\n".join(lines)


def render_kind_summary(events: Iterable[TraceEvent]) -> str:
    """Event counts by kind, most frequent first."""
    counts = _Counter(event.kind for event in events)
    width = max((len(kind) for kind in counts), default=4)
    lines = [f"{kind:{width}s}  {count:>8d}" for kind, count in counts.most_common()]
    return "\n".join(lines)


def render_spans(spans: Sequence[Span], limit: Optional[int] = None) -> str:
    """An aligned table of spans: outcome, latency, breakdown, counts."""
    rows = list(spans)
    if limit is not None:
        rows = rows[:limit]
    header = (
        f"{'transaction':14s}{'outcome':>10s}{'latency':>10s}"
        f"{'queued':>10s}{'blocked':>10s}{'executing':>10s}"
        f"{'ops':>6s}{'cfl':>6s}{'objects':>14s}"
    )
    lines = [header, "-" * len(header)]
    for span in rows:
        latency = span.latency
        lines.append(
            f"{span.transaction:14s}"
            f"{span.outcome or 'open':>10s}"
            f"{latency if latency is not None else float('nan'):>10.3f}"
            f"{span.queued:>10.3f}{span.blocked:>10.3f}{span.executing:>10.3f}"
            f"{span.invokes:>6d}{span.conflicts:>6d}"
            f"{','.join(sorted(span.objects)):>14s}"
        )
    return "\n".join(lines)


def render_histogram(histogram: Histogram, width: int = 40) -> str:
    """ASCII bar-chart of a histogram's cumulative buckets."""
    lines = [
        f"{histogram.name}: n={histogram.total} mean={histogram.mean:.3f}"
        f" p50~{histogram.quantile(0.5):g} p95~{histogram.quantile(0.95):g}"
    ]
    peak = max(histogram.counts) if histogram.total else 1
    labels = [f"<= {b:g}" for b in histogram.boundaries] + ["+inf"]
    for label, count in zip(labels, histogram.counts):
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(f"  {label:>10s} {count:>8d} {bar}")
    return "\n".join(lines)


def spans_as_dicts(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """JSON-friendly span rows (for machine-readable artifacts)."""
    rows = []
    for span in spans:
        rows.append(
            {
                "transaction": span.transaction,
                "outcome": span.outcome,
                "begin_ts": span.begin_ts,
                "end_ts": span.end_ts,
                "latency": span.latency,
                "queued": span.queued,
                "blocked": span.blocked,
                "executing": span.executing,
                "invokes": span.invokes,
                "conflicts": span.conflicts,
                "blocks": span.blocks,
                "objects": sorted(span.objects),
                "read_only": span.read_only,
                "trace": span.trace,
                "phases": dict(span.phases),
            }
        )
    return rows
