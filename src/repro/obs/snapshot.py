"""Point-in-time introspection: lock tables and waits-for graphs.

The LOCK machine holds no explicit lock table — "locks are implicit in
the intentions lists" (Section 5.1) — so the lock-table snapshot *is*
the map from active transactions to the operations whose locks they
hold.  The waits-for snapshot reads the simulator's
:class:`~repro.sim.waiting.WaitRegistry` edges (block wait-policy only;
the retry policy never records a wait).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "lock_table_snapshot",
    "manager_lock_tables",
    "waits_for_edges",
    "render_lock_tables",
    "render_waits_for",
]


def lock_table_snapshot(machine: Any) -> Dict[str, List[str]]:
    """Active transaction → held-operation strings for one LOCK machine.

    Every operation in an active transaction's intentions list is a held
    lock; completed transactions hold nothing.
    """
    return {
        transaction: [str(operation) for operation in operations]
        for transaction, operations in machine.active_intentions().items()
    }


def manager_lock_tables(manager: Any) -> Dict[str, Dict[str, List[str]]]:
    """Object name → lock-table snapshot across a transaction manager."""
    return {
        name: lock_table_snapshot(managed.machine)
        for name, managed in sorted(manager.objects.items())
    }


def waits_for_edges(registry: Optional[Any]) -> Dict[str, str]:
    """Waiter → holder edges from a :class:`WaitRegistry` (empty if None)."""
    if registry is None:
        return {}
    return registry.edges()


def render_lock_tables(tables: Mapping[str, Mapping[str, List[str]]]) -> str:
    """Human-readable lock-table dump (objects with no holders elided)."""
    lines: List[str] = []
    for obj, table in tables.items():
        if not table:
            continue
        lines.append(f"{obj}:")
        for transaction in sorted(table):
            held = ", ".join(table[transaction]) or "(no locks yet)"
            lines.append(f"  {transaction:12s} holds {held}")
    if not lines:
        return "(no active transactions hold locks)"
    return "\n".join(lines)


def render_waits_for(edges: Mapping[str, str]) -> str:
    """Human-readable waits-for edge list."""
    if not edges:
        return "(no blocked transactions)"
    return "\n".join(
        f"  {waiter} -> {holder}" for waiter, holder in sorted(edges.items())
    )
