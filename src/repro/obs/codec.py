"""Tagged JSON codec for trace-event payloads.

``JSONLSink`` originally serialised awkward payload values (operation
tuples, ``-inf`` horizons, state-set frozensets) through ``repr``, which
made the log one-way: ``read_jsonl`` handed back strings where the live
event carried tuples.  This codec makes the round trip exact.  Values
that JSON represents natively pass through untouched; containers and the
few special scalars are wrapped in single-key tag objects, mirroring the
write-ahead log's encoding (:mod:`repro.recovery.wal`):

========================  =========================================
tag                       value
========================  =========================================
``{"__t__": [...]}``      tuple (e.g. distributed commit timestamps)
``{"__l__": [...]}``      list
``{"__s__": [...]}``      set (elements in canonical-key order)
``{"__fs__": [...]}``     frozenset (state sets; canonical-key order)
``{"__d__": [[k,v],..]}``  dict (pairs, so non-string keys survive)
``{"__fr__": [n, d]}``    :class:`fractions.Fraction`
``{"__neginf__": true}``  the ``NEG_INFINITY`` horizon sentinel
``{"__r__": "..."}``      anything else, by ``repr`` (lossy fallback)
========================  =========================================

``decode_value`` passes unrecognised dicts through unchanged, so traces
written before this codec existed still replay (with their old, lossy
string payloads).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

from ..core.canon import canonical_key
from ..core.compaction import NEG_INFINITY

__all__ = ["encode_value", "decode_value"]


def encode_value(value: Any) -> Any:
    """Encode one payload value into JSON-representable form."""
    if value is NEG_INFINITY:
        return {"__neginf__": True}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Fraction):
        return {"__fr__": [value.numerator, value.denominator]}
    if isinstance(value, tuple):
        return {"__t__": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"__l__": [encode_value(item) for item in value]}
    # Set elements are ordered by their canonical encoding, not repr:
    # repr order follows hash iteration, which is seed-dependent, and
    # trace files should be byte-identical across runs.
    if isinstance(value, frozenset):
        return {
            "__fs__": [encode_value(item) for item in sorted(value, key=canonical_key)]
        }
    if isinstance(value, set):
        return {
            "__s__": [encode_value(item) for item in sorted(value, key=canonical_key)]
        }
    if isinstance(value, dict):
        return {
            "__d__": [
                [encode_value(key), encode_value(item)]
                for key, item in value.items()
            ]
        }
    return {"__r__": repr(value)}


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`; tolerate untagged legacy payloads."""
    if isinstance(value, dict):
        if "__t__" in value:
            return tuple(decode_value(item) for item in value["__t__"])
        if "__l__" in value:
            return [decode_value(item) for item in value["__l__"]]
        if "__fs__" in value:
            return frozenset(decode_value(item) for item in value["__fs__"])
        if "__s__" in value:
            return set(decode_value(item) for item in value["__s__"])
        if "__d__" in value:
            return {
                decode_value(key): decode_value(item)
                for key, item in value["__d__"]
            }
        if "__fr__" in value:
            numerator, denominator = value["__fr__"]
            return Fraction(numerator, denominator)
        if "__neginf__" in value:
            return NEG_INFINITY
        if "__r__" in value:
            return value["__r__"]
        return value  # pre-codec trace: an untagged payload dict
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value
